"""Ablation — DFA vs NFA regular-expression representation (paper §3).

"DFA solutions suffer from memory explosion especially when combining a few
expressions into a single data structure, while the NFA solutions suffer
from lower performance."  Both halves are measured here on the same
expressions: combined-DFA state counts grow superlinearly with the number
of expressions, while the NFA's size grows linearly but its per-byte scan
cost is far higher.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table
from repro.core.nfa import RegexNFA
from repro.core.regex_dfa import RegexDFA, StateExplosionError

from benchmarks.conftest import run_once

#: Snort-style expressions with counted gaps — the classic DFA exploders.
EXPRESSIONS = [
    rb"cmd=a.{8}run",
    rb"usr=b.{8}end",
    rb"pwd=c.{8}try",
    rb"key=d.{8}fin",
]


def test_ablation_regex_representation(benchmark):
    def experiment():
        payload = (b"benign filler text " * 40) + b"cmd=aXXXXXXXXrun"
        table = Table(
            "Ablation: combined-DFA explosion vs NFA (paper Section 3)",
            ["expressions", "DFA states", "DFA MB", "NFA states", "DFA/NFA time"],
        )
        rows = []
        for count in range(1, len(EXPRESSIONS) + 1):
            subset = EXPRESSIONS[:count]
            nfas = [RegexNFA(p) for p in subset]
            nfa_states = sum(n.num_states for n in nfas)
            try:
                dfa = RegexDFA(subset, max_states=200_000)
            except StateExplosionError:
                table.add_row(count, ">200000", "-", nfa_states, "-")
                rows.append((count, None, nfa_states, None))
                continue

            started = time.perf_counter()
            for _ in range(5):
                dfa.scan(payload)
            dfa_seconds = time.perf_counter() - started
            started = time.perf_counter()
            for _ in range(5):
                for nfa in nfas:
                    nfa.match_ends(payload)
            nfa_seconds = time.perf_counter() - started
            table.add_row(
                count,
                dfa.num_states,
                dfa.memory_bytes / 2**20,
                nfa_states,
                dfa_seconds / nfa_seconds,
            )
            rows.append((count, dfa.num_states, nfa_states, dfa_seconds / nfa_seconds))
        table.print()
        return rows

    rows = run_once(benchmark, experiment)
    built = [(count, dfa_states) for count, dfa_states, *_ in rows if dfa_states]
    assert len(built) >= 2, "need at least two buildable points"
    # Memory explosion: DFA states grow superlinearly in expression count.
    (count_a, states_a), (count_b, states_b) = built[0], built[-1]
    growth = (states_b / states_a) / (count_b / count_a)
    assert growth > 2.0, f"DFA growth factor {growth:.1f} not superlinear"
    # NFA size grows only linearly.
    nfa_sizes = [nfa_states for _c, _d, nfa_states, _r in rows]
    assert nfa_sizes[-1] <= nfa_sizes[0] * (len(rows) + 1)
    # Performance: the DFA scans faster than the NFA set.
    ratios = [ratio for *_x, ratio in rows if ratio is not None]
    assert all(ratio < 1.0 for ratio in ratios), ratios
