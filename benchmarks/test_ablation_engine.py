"""Ablation — Aho-Corasick vs Wu-Manber as the string-matching engine.

The paper (Section 2.2) names both as the classic exact multi-string
matchers for DPI.  Wu-Manber's skip loop makes it fast when the minimum
pattern length is large, while AC's per-byte cost is flat; with the paper's
>= 8-byte Snort patterns the engines trade places depending on the traffic's
match density.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table
from repro.core.aho_corasick import AhoCorasick
from repro.core.wu_manber import WuManber
from repro.workloads.attacks import match_flood_payload

from benchmarks.conftest import run_once


def test_ablation_engine_choice(benchmark, snort_corpus, http_trace):
    def experiment():
        patterns = snort_corpus[:2000]
        engines = {
            "aho-corasick (full)": AhoCorasick(patterns, layout="full"),
            "aho-corasick (sparse)": AhoCorasick(patterns, layout="sparse"),
            "wu-manber": WuManber(patterns),
        }
        flood = [match_flood_payload(patterns, 1400, seed=s) for s in range(20)]
        workloads = {"benign trace": http_trace.payloads, "match flood": flood}

        timings = {}
        for workload_name, payloads in workloads.items():
            for engine_name, engine in engines.items():
                for payload in payloads[:5]:
                    engine.count_matches(payload)
                started = time.perf_counter()
                for _ in range(2):
                    for payload in payloads:
                        engine.count_matches(payload)
                timings[(engine_name, workload_name)] = (
                    time.perf_counter() - started
                )

        table = Table(
            "Ablation: string-matching engine (2000 Snort-like patterns)",
            ["engine", "benign trace [s]", "match flood [s]"],
        )
        for engine_name in engines:
            table.add_row(
                engine_name,
                timings[(engine_name, "benign trace")],
                timings[(engine_name, "match flood")],
            )
        table.print()

        # Correctness cross-check on a sample payload.
        sample = http_trace.payloads[0]
        ac_matches = sorted(engines["aho-corasick (full)"].scan(sample)[0])
        wm_matches = engines["wu-manber"].scan(sample)
        assert ac_matches == wm_matches
        return timings

    timings = run_once(benchmark, experiment)
    # Wu-Manber's skip loop wins on benign traffic (long min pattern, few
    # matches)...
    assert (
        timings[("wu-manber", "benign trace")]
        < timings[("aho-corasick (sparse)", "benign trace")]
    )
    # ... but loses its advantage on match-dense traffic, where windows
    # shift by one and verification dominates.
    benign_ratio = (
        timings[("aho-corasick (full)", "benign trace")]
        / timings[("wu-manber", "benign trace")]
    )
    flood_ratio = (
        timings[("aho-corasick (full)", "match flood")]
        / timings[("wu-manber", "match flood")]
    )
    assert flood_ratio < benign_ratio
