"""Ablation — anchor pre-filtering vs always running the regex engine.

Section 5.3's design: extract anchors from each regular expression, string-
match them, and invoke the full engine only when every anchor of an
expression appeared.  The alternative runs every compiled regex on every
packet.  Snort's numbers motivate the design (99.7 % of regex rules invoke
PCRE only after their anchors matched); this benchmark shows the same
effect on synthetic expressions.
"""

from __future__ import annotations

import re
import time

from repro.bench.harness import Table
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern, PatternKind
from repro.core.scanner import MiddleboxProfile
from repro.workloads.traffic import TrafficGenerator

from benchmarks.conftest import run_once

CHAIN = 100


def _synthetic_regexes(count):
    """Anchored regexes in the style of Snort rules."""
    sources = []
    for index in range(count):
        sources.append(
            rb"mal-cmd-%04d\s+arg=\d+;token-%04d" % (index, index)
        )
    return sources


def test_ablation_anchor_prefilter(benchmark):
    def experiment():
        regex_sources = _synthetic_regexes(200)
        patterns = [
            Pattern(pattern_id=index, data=source, kind=PatternKind.REGEX)
            for index, source in enumerate(regex_sources)
        ]
        instance = DPIServiceInstance(
            InstanceConfig(
                pattern_sets={1: patterns},
                profiles={1: MiddleboxProfile(1, name="l7fw")},
                chain_map={CHAIN: (1,)},
            )
        )
        compiled = [re.compile(source, re.DOTALL) for source in regex_sources]
        generator = TrafficGenerator(seed=21)
        trace = generator.trace(30)
        # Make one packet actually match one expression end to end.
        payloads = list(trace.payloads)
        payloads[7] = payloads[7] + b" mal-cmd-0007 arg=42;token-0007"

        def run_prefiltered():
            hits = 0
            for payload in payloads:
                output = instance.inspect(payload, chain_id=CHAIN)
                hits += len(output.matches[1])
            return hits

        def run_always_regex():
            hits = 0
            for payload in payloads:
                for expression in compiled:
                    for _match in expression.finditer(payload):
                        hits += 1
            return hits

        prefilter_hits = run_prefiltered()
        always_hits = run_always_regex()
        assert prefilter_hits == always_hits  # same detections

        started = time.perf_counter()
        for _ in range(3):
            run_prefiltered()
        prefilter_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(3):
            run_always_regex()
        always_seconds = time.perf_counter() - started

        stats = instance.prefilter.stats
        table = Table(
            "Ablation: anchor pre-filter vs always-run-regex (200 regexes)",
            ["variant", "seconds (3 passes)", "full-engine invocations"],
        )
        table.add_row(
            "anchor pre-filter",
            prefilter_seconds,
            stats.confirmations_invoked,
        )
        table.add_row(
            "always run regex",
            always_seconds,
            len(payloads) * len(compiled) * 4,  # 4 runs incl. hit counting
        )
        table.print()
        return prefilter_seconds, always_seconds, stats

    prefilter_seconds, always_seconds, stats = run_once(benchmark, experiment)
    # The pre-filter invokes the engine rarely and wins overall.
    assert prefilter_seconds < always_seconds
    assert stats.fallback_regexes == 0  # all 200 expressions had anchors
