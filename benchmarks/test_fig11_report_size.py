"""Figure 11 — cumulative distribution of non-empty match-report sizes.

The paper runs the campus trace through the service with 6-byte match
records and reports: more than 90 % of packets have no matches at all; among
the non-empty reports the average size is 34 bytes, most reports are smaller
than the average, and only ~1 % exceed 120 bytes.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.scanner import MiddleboxProfile
from repro.workloads.patterns import random_split, to_pattern_list

from benchmarks.conftest import run_once

CHAIN = 100


def _build_instance(snort_corpus):
    set_a, set_b = random_split(snort_corpus, parts=2, seed=4)
    return DPIServiceInstance(
        InstanceConfig(
            pattern_sets={1: to_pattern_list(set_a), 2: to_pattern_list(set_b)},
            profiles={
                1: MiddleboxProfile(1, name="ids"),
                2: MiddleboxProfile(2, name="av"),
            },
            chain_map={CHAIN: (1, 2)},
            layout="full",
        )
    )


def test_fig11_match_report_size_distribution(benchmark, snort_corpus, campus_trace):
    def experiment():
        instance = _build_instance(snort_corpus)
        report_sizes = []
        empty = 0
        for payload in campus_trace.payloads:
            output = instance.inspect(payload, chain_id=CHAIN)
            if output.report.is_empty:
                empty += 1
            else:
                report_sizes.append(output.report.size_bytes())
        report_sizes.sort()
        return empty, report_sizes

    empty, report_sizes = run_once(benchmark, experiment)
    total_packets = empty + len(report_sizes)
    assert report_sizes, "trace produced no matches at all"

    mean_size = sum(report_sizes) / len(report_sizes)
    table = Table(
        "Figure 11: non-empty match report size per packet",
        ["percentile", "report size [bytes]"],
    )
    for percentile in (10, 25, 50, 75, 90, 99):
        index = min(
            len(report_sizes) - 1, int(len(report_sizes) * percentile / 100)
        )
        table.add_row(f"p{percentile}", report_sizes[index])
    table.add_row("mean", mean_size)
    table.add_row("matchless packets %", 100.0 * empty / total_packets)
    table.print()

    # Paper: >90 % of packets carry no matches.
    assert empty / total_packets > 0.85
    # Reports are small: the mean sits in the tens of bytes...
    assert mean_size < 150.0
    # ... most reports are below the mean (a light-tailed bulk) ...
    below_mean = sum(1 for size in report_sizes if size <= mean_size)
    assert below_mean / len(report_sizes) >= 0.5
    # ... and only a small tail is large (paper: ~1 % above 120 bytes;
    # allow up to 15 % above 4x the median for the synthetic trace).
    median = report_sizes[len(report_sizes) // 2]
    heavy_tail = sum(1 for size in report_sizes if size > 4 * median)
    assert heavy_tail / len(report_sizes) < 0.15
