"""Telemetry overhead guard.

The telemetry hot path (four counter incs, one histogram observe, one span
record) must stay in the noise next to an actual DPI scan.  This benchmark
inspects the same trace through three identically configured flat-kernel
instances — telemetry off, metrics only, metrics + tracing — interleaved
round-robin so machine drift hits all three equally, asserts the outputs
are byte-identical, and writes ``BENCH_telemetry.json`` at the repo root.

Target: < 5 % overhead for metrics (the always-on production mode — the
controller's default hub runs with tracing off); per-packet span recording
typically adds ~10 %, which is why tracing is opt-in.  The assertion allows
25 % so a noisy CI runner cannot flake the suite; the measured figures are
what the JSON records.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.telemetry import TelemetryHub
from repro.workloads.traffic import TrafficGenerator

from benchmarks.conftest import run_once

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

CHAIN = 100
PATTERN_COUNT = 2000
PACKETS = 50
ROUNDS = 5
OVERHEAD_CEILING = 0.25  # CI-noise tolerance; the target is 0.05


def build_instance(patterns, telemetry=None):
    config = InstanceConfig(
        pattern_sets={
            1: [Pattern(i, data) for i, data in enumerate(patterns)]
        },
        profiles={1: MiddleboxProfile(middlebox_id=1, name="ids", stateful=True)},
        chain_map={CHAIN: (1,)},
        kernel="flat",
    )
    return DPIServiceInstance(config, name="bench", telemetry=telemetry)


def test_telemetry_overhead(benchmark, snort_corpus):
    patterns = snort_corpus[:PATTERN_COUNT]
    trace = TrafficGenerator(seed=7, style="http").trace(
        PACKETS, patterns=patterns, match_rate=0.08
    )
    payloads = trace.payloads

    def experiment():
        variants = {
            "off": (build_instance(patterns), None),
            "metrics": (
                build_instance(patterns, TelemetryHub(tracing=False)),
                None,
            ),
        }
        traced_hub = TelemetryHub()
        traced = build_instance(patterns, traced_hub)
        root = traced_hub.tracer.start_span("bench")
        variants["traced"] = (traced, root.context)

        # Byte-identical results regardless of telemetry.
        reference = [
            build_instance(patterns).inspect(p, chain_id=CHAIN).matches
            for p in payloads
        ]
        for instance, parent in variants.values():
            outputs = [
                instance.inspect(p, chain_id=CHAIN, trace_parent=parent).matches
                for p in payloads
            ]
            assert outputs == reference

        # Interleaved best-of-rounds throughput.
        samples = {name: [] for name in variants}
        for _ in range(ROUNDS):
            for name, (instance, parent) in variants.items():
                inspect = instance.inspect
                started = time.perf_counter()
                for payload in payloads:
                    inspect(payload, CHAIN, trace_parent=parent)
                elapsed = time.perf_counter() - started
                samples[name].append(
                    trace.total_bytes * 8 / elapsed / 1e6
                )
        mbps = {name: max(values) for name, values in samples.items()}
        overhead = {
            name: mbps["off"] / mbps[name] - 1.0
            for name in ("metrics", "traced")
        }
        results = {
            "benchmark": "telemetry-overhead",
            "kernel": "flat",
            "patterns": PATTERN_COUNT,
            "packets": PACKETS,
            "trace_bytes": trace.total_bytes,
            "rounds": ROUNDS,
            "mbps": mbps,
            "overhead": overhead,
            "target_overhead": 0.05,
        }
        RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print()
        for name in ("off", "metrics", "traced"):
            extra = (
                "" if name == "off"
                else f"  (+{overhead[name] * 100:.1f}% vs off)"
            )
            print(f"  {name:8} {mbps[name]:8.2f} Mbps{extra}")
        return results

    results = run_once(benchmark, experiment)
    assert results["overhead"]["metrics"] < OVERHEAD_CEILING
    assert results["overhead"]["traced"] < OVERHEAD_CEILING
