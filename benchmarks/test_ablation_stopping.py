"""Ablation — stopping conditions (paper Section 5.1, footnote 5).

Middleboxes that only care about application-layer headers declare a
stopping condition; the scanner uses the *most conservative* one to
truncate the scan.  This benchmark measures the saving when every
middlebox on the chain is header-only versus scanning full payloads.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table, percent_less
from repro.core.combined import CombinedAutomaton
from repro.core.scanner import MiddleboxProfile, VirtualScanner
from repro.workloads.patterns import to_pattern_list

from benchmarks.conftest import run_once

CHAIN = 1


def _scanner(patterns, stopping_condition):
    automaton = CombinedAutomaton({0: to_pattern_list(patterns)}, layout="full")
    profiles = {
        0: MiddleboxProfile(0, stopping_condition=stopping_condition)
    }
    return VirtualScanner(automaton, profiles, {CHAIN: (0,)})


def test_ablation_stopping_condition(benchmark, snort_corpus, http_trace):
    def experiment():
        patterns = snort_corpus[:2000]
        variants = {
            "unbounded": _scanner(patterns, None),
            "stop at 256 B": _scanner(patterns, 256),
            "stop at 64 B": _scanner(patterns, 64),
        }
        timings = {}
        scanned = {}
        for name, scanner in variants.items():
            for payload in http_trace.payloads[:10]:
                scanner.scan_packet(payload, CHAIN)
            started = time.perf_counter()
            bytes_scanned = 0
            for _ in range(3):
                for payload in http_trace.payloads:
                    result = scanner.scan_packet(payload, CHAIN)
                    bytes_scanned += result.bytes_scanned
            timings[name] = time.perf_counter() - started
            scanned[name] = bytes_scanned
        table = Table(
            "Ablation: stopping conditions (header-only middleboxes)",
            ["variant", "seconds (3 passes)", "bytes scanned"],
        )
        for name in variants:
            table.add_row(name, timings[name], scanned[name])
        table.print()
        return timings, scanned

    timings, scanned = run_once(benchmark, experiment)
    # The scan is truncated, so both bytes and time shrink monotonically.
    assert scanned["stop at 64 B"] < scanned["stop at 256 B"] < scanned["unbounded"]
    assert timings["stop at 64 B"] < timings["unbounded"]
    saving = percent_less(timings["stop at 64 B"], timings["unbounded"])
    assert saving > 30.0, f"only {saving:.1f}% saved by the 64-byte stop"
