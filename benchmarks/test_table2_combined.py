"""Table 2 — two separate middleboxes (Snort1, Snort2) vs one virtual DPI
instance with the combined pattern set.

The paper splits Snort's exact-match patterns randomly into two halves and
reports, per configuration: number of patterns, space (full-table AC), and
throughput.  The headline: the combined machine's throughput is **just 12 %
less** than each separate machine's, while one combined automaton replaces
two.
"""

from __future__ import annotations

from repro.bench.harness import Table, percent_less
from repro.bench.throughput import measure_scan_throughput
from repro.bench.virtualization import CacheModel
from repro.core.combined import CombinedAutomaton
from repro.workloads.patterns import random_split, to_pattern_list

from benchmarks.conftest import run_once


def _full_table_bytes(automaton):
    """Space of the full-table AC representation (Table 2's unit)."""
    return automaton.num_states * 256 * 4


def _measure_interleaved(automata, trace, cache, rounds=3):
    """Measure several automata round-robin so that CPU frequency drift
    hits every configuration equally; report the per-config best round."""
    samples = {name: [] for name in automata}
    for name, automaton in automata.items():  # warmup pass
        for payload in trace.payloads[:20]:
            automaton.scan(payload)
    for _ in range(rounds):
        for name, automaton in automata.items():
            scan = automaton.scan
            result = measure_scan_throughput(
                lambda p, scan=scan: scan(p), trace.payloads, repeat=2
            )
            samples[name].append(result.mbps)
    return {
        name: cache.effective_mbps(
            max(values), _full_table_bytes(automata[name])
        )
        for name, values in samples.items()
    }


def test_table2_combined_vs_separate(benchmark, snort_corpus, http_trace):
    def experiment():
        cache = CacheModel()
        snort1, snort2 = random_split(snort_corpus, parts=2, seed=4)
        automaton1 = CombinedAutomaton({1: to_pattern_list(snort1)}, layout="full")
        automaton2 = CombinedAutomaton({2: to_pattern_list(snort2)}, layout="full")
        combined = CombinedAutomaton(
            {1: to_pattern_list(snort1), 2: to_pattern_list(snort2)},
            layout="full",
        )
        automata = {
            "Snort1": automaton1,
            "Snort2": automaton2,
            "Snort1+Snort2": combined,
        }
        throughputs = _measure_interleaved(automata, http_trace, cache)
        rows = {
            "Snort1": (
                len(snort1),
                _full_table_bytes(automaton1) / 2**20,
                throughputs["Snort1"],
            ),
            "Snort2": (
                len(snort2),
                _full_table_bytes(automaton2) / 2**20,
                throughputs["Snort2"],
            ),
            "Snort1+Snort2": (
                combined.num_distinct_patterns,
                _full_table_bytes(combined) / 2**20,
                throughputs["Snort1+Snort2"],
            ),
        }
        table = Table(
            "Table 2: separate middleboxes vs one virtual DPI",
            ["Sets", "Patterns", "Space [MB]", "Throughput [Mbps]"],
        )
        for name, (patterns, space, mbps) in rows.items():
            table.add_row(name, patterns, space, mbps)
        table.print()
        return rows

    rows = run_once(benchmark, experiment)
    patterns1, space1, mbps1 = rows["Snort1"]
    patterns2, space2, mbps2 = rows["Snort2"]
    patterns_c, space_c, mbps_c = rows["Snort1+Snort2"]

    # The halves partition the corpus; the combined automaton holds all.
    assert patterns1 + patterns2 == 4356
    assert patterns_c == 4356

    # Space: one combined automaton is smaller than two separate ones
    # (shared states), but bigger than either half.
    assert space_c < space1 + space2
    assert space_c > max(space1, space2)

    # Throughput: the combined engine loses moderately to each half — the
    # paper measures 12 % less; accept anything below 35 %, and require a
    # real loss (the doubled working set cannot be free).
    for separate in (mbps1, mbps2):
        loss = percent_less(mbps_c, separate)
        assert 3.0 < loss < 35.0, f"combined lost {loss:.1f}% (paper: ~12%)"
