"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  Absolute throughput is pure-Python
(orders of magnitude below the paper's C engine on real hardware); the
*shape* — who wins, by what factor, where crossovers fall — is what each
benchmark asserts.

Scale: the Snort-like corpus uses the paper's full 4,356 patterns.  The
ClamAV-like corpus defaults to 8,000 patterns (the full 31,827 make the
sparse automaton build take ~30 s); set ``REPRO_FULL_SCALE=1`` to run the
published sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads.patterns import (
    CLAMAV_PATTERN_COUNT,
    SNORT_PATTERN_COUNT,
    generate_clamav_like,
    generate_snort_like,
)
from repro.workloads.traffic import TrafficGenerator

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE") == "1"
CLAMAV_BENCH_COUNT = CLAMAV_PATTERN_COUNT if FULL_SCALE else 8000


@pytest.fixture(scope="session")
def snort_corpus():
    """The full Snort-like exact-match corpus (4,356 patterns)."""
    return generate_snort_like(SNORT_PATTERN_COUNT, seed=1)


@pytest.fixture(scope="session")
def clamav_corpus():
    """The ClamAV-like corpus (scaled; see module docstring)."""
    return generate_clamav_like(CLAMAV_BENCH_COUNT, seed=2)


@pytest.fixture(scope="session")
def http_trace(snort_corpus):
    """An HTTP-crawl-like trace (the paper's 'popular websites' trace)."""
    generator = TrafficGenerator(seed=7, style="http")
    return generator.trace(60, patterns=snort_corpus, match_rate=0.08)


@pytest.fixture(scope="session")
def campus_trace(snort_corpus):
    """A campus-like mixed trace (the paper's 9 GB wireless tap)."""
    generator = TrafficGenerator(seed=8, style="campus")
    return generator.trace(400, patterns=snort_corpus, match_rate=0.08)


def interleaved_throughput(automata, payloads, rounds=4, repeat=2, warmup=20):
    """Raw scan throughput (Mbps) per named automaton, measured round-robin.

    Interleaving the configurations makes CPU-frequency drift and cache
    pollution hit all of them equally; the per-config best round filters
    transient dips.  Returns ``{name: mbps}``.
    """
    from repro.bench.throughput import measure_scan_throughput

    samples = {name: [] for name in automata}
    for automaton in automata.values():
        for payload in payloads[:warmup]:
            automaton.scan(payload)
    for _ in range(rounds):
        for name, automaton in automata.items():
            scan = automaton.scan
            result = measure_scan_throughput(
                lambda p, scan=scan: scan(p), payloads, repeat=repeat
            )
            samples[name].append(result.mbps)
    return {name: max(values) for name, values in samples.items()}


def run_once(benchmark, experiment):
    """Run *experiment* exactly once under pytest-benchmark accounting.

    The experiments are whole table/figure regenerations (seconds each), so
    statistical rounds are pointless; pedantic mode keeps them visible to
    ``--benchmark-only`` without re-running them.
    """
    return benchmark.pedantic(experiment, rounds=1, iterations=1, warmup_rounds=0)
