"""Ablation — full-table vs sparse (failure-link) DFA layout.

DESIGN.md calls out the layout as a deliberate choice: the full table costs
``states * 256`` entries but scans with one lookup per byte; the sparse
layout stores only trie edges but walks failure chains.  This benchmark
quantifies the trade on the Snort-scale corpus.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.bench.throughput import measure_scan_throughput
from repro.core.aho_corasick import AhoCorasick

from benchmarks.conftest import run_once


def test_ablation_dfa_layout(benchmark, snort_corpus, http_trace):
    def experiment():
        patterns = snort_corpus[:2000]
        results = {}
        for layout in ("sparse", "full"):
            automaton = AhoCorasick(patterns, layout=layout)
            measured = measure_scan_throughput(
                automaton.count_matches,
                http_trace.payloads,
                repeat=2,
                warmup_packets=10,
            )
            results[layout] = (measured.mbps, automaton.stats.memory_bytes)
        table = Table(
            "Ablation: DFA layout (2000 Snort-like patterns)",
            ["layout", "throughput [Mbps]", "memory [MB]"],
        )
        for layout, (mbps, memory) in results.items():
            table.add_row(layout, mbps, memory / 2**20)
        table.print()
        return results

    results = run_once(benchmark, experiment)
    sparse_mbps, sparse_memory = results["sparse"]
    full_mbps, full_memory = results["full"]
    # The trade: the full table is faster per byte but pays for it in
    # memory by an order of magnitude.
    assert full_mbps > sparse_mbps
    assert full_memory > sparse_memory * 5
