"""Ablation — the per-state middlebox bitmap (Section 5.1).

The combined automaton marks each accepting state with a bitmap of the
middleboxes that registered its patterns, so one AND decides whether the
match table must be consulted.  The alternative resolves the match table on
every accepting state and filters afterwards.

The bitmap's value shows when a packet's policy chain activates only a small
subset of the middleboxes whose patterns dominate the traffic's matches.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table
from repro.core.combined import CombinedAutomaton
from repro.workloads.patterns import random_split, to_pattern_list

from benchmarks.conftest import run_once


def _scan_with_post_filter(automaton, payload, active_bitmap):
    """The no-bitmap variant: report every accepting state, filter later."""
    result = automaton.scan(payload)  # all middleboxes active
    kept = []
    for state, cnt in result.raw_matches:
        for pair, length in automaton.resolve(state, active_bitmap):
            kept.append((pair, cnt))
    return kept


def test_ablation_accept_bitmap(benchmark, snort_corpus):
    def experiment():
        set_a, set_b = random_split(snort_corpus[:2000], parts=2, seed=4)
        automaton = CombinedAutomaton(
            {1: to_pattern_list(set_a), 2: to_pattern_list(set_b)},
            layout="full",
        )
        # Match-dense traffic built from middlebox 2's patterns, scanned for
        # a chain that only includes middlebox 1: every accepting state hit
        # is irrelevant, which is exactly what the bitmap filters out.
        from repro.workloads.attacks import match_flood_payload

        payloads = [
            match_flood_payload(set_b, 1400, seed=seed) for seed in range(40)
        ]
        only_1 = automaton.bitmask_of([1])

        for payload in payloads[:10]:
            automaton.scan(payload, active_bitmap=only_1)
            _scan_with_post_filter(automaton, payload, only_1)

        started = time.perf_counter()
        for _ in range(3):
            for payload in payloads:
                automaton.scan(payload, active_bitmap=only_1)
        bitmap_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(3):
            for payload in payloads:
                _scan_with_post_filter(automaton, payload, only_1)
        post_filter_seconds = time.perf_counter() - started

        table = Table(
            "Ablation: accept bitmap vs post-filtering",
            ["variant", "seconds (3 passes)"],
        )
        table.add_row("bitmap AND during scan", bitmap_seconds)
        table.add_row("resolve-then-filter", post_filter_seconds)
        table.print()
        return bitmap_seconds, post_filter_seconds

    bitmap_seconds, post_filter_seconds = run_once(benchmark, experiment)
    # Skipping irrelevant accepting states during the scan must not lose to
    # resolving every one of them.
    assert bitmap_seconds < post_filter_seconds


def test_bitmap_filter_correctness(snort_corpus):
    """Both variants agree on the reported matches (run without
    ``--benchmark-only``)."""
    set_a, set_b = random_split(snort_corpus[:400], parts=2, seed=4)
    automaton = CombinedAutomaton(
        {1: to_pattern_list(set_a), 2: to_pattern_list(set_b)}
    )
    from repro.workloads.traffic import TrafficGenerator

    generator = TrafficGenerator(seed=12)
    trace = generator.trace(20, patterns=snort_corpus[:400], match_rate=0.5)
    only_1 = automaton.bitmask_of([1])
    for payload in trace.payloads:
        fast = automaton.scan(payload, active_bitmap=only_1)
        fast_pairs = sorted(
            (pair, cnt)
            for state, cnt in fast.raw_matches
            for pair, _len in automaton.resolve(state, only_1)
        )
        slow_pairs = sorted(_scan_with_post_filter(automaton, payload, only_1))
        assert fast_pairs == slow_pairs
