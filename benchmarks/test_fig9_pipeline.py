"""Figure 9 — pipelined middleboxes vs two virtual-DPI instances.

Scenario (paper Figure 2): traffic must traverse middlebox A (pattern set
P_A) and middlebox B (pattern set P_B), one machine each.

* **Baseline**: each machine scans with its own set; every packet passes
  both, so the pipeline runs at the *slower* machine's rate.
* **Virtual DPI**: both machines run the *combined* automaton; each packet
  is scanned once on either machine, so capacity is the *sum* of the two.

The paper reports the virtual DPI at least **86 % faster** for the
Snort1/Snort2 split (Figure 9(a)) and at least **67 % faster** for full
Snort + ClamAV (Figure 9(b)).
"""

from __future__ import annotations

from repro.bench.harness import Series, Table, percent_faster
from repro.bench.throughput import pipeline_throughput, replicated_throughput
from repro.bench.virtualization import CacheModel
from repro.core.combined import CombinedAutomaton
from repro.workloads.patterns import random_split, to_pattern_list

from benchmarks.conftest import (
    CLAMAV_BENCH_COUNT,
    interleaved_throughput,
    run_once,
)

SNORT_SWEEP = [500, 1000, 2000, 4356]
MIXED_SWEEP_FRACTIONS = [0.25, 0.5, 1.0]


def _compare(set_a, set_b, trace, cache, layout):
    """(pipeline Mbps, virtual-DPI Mbps) for one pattern-set pair."""
    automata = {
        "a": CombinedAutomaton({1: to_pattern_list(set_a)}, layout=layout),
        "b": CombinedAutomaton({2: to_pattern_list(set_b)}, layout=layout),
        "combined": CombinedAutomaton(
            {1: to_pattern_list(set_a), 2: to_pattern_list(set_b)},
            layout=layout,
        ),
    }
    raw = interleaved_throughput(automata, trace.payloads)
    modeled = {
        name: cache.effective_mbps(
            raw[name], automata[name].num_states * 256 * 4
        )
        for name in automata
    }
    baseline = pipeline_throughput([modeled["a"], modeled["b"]])
    virtual = replicated_throughput(modeled["combined"], instances=2)
    return baseline, virtual


def test_fig9a_snort_split(benchmark, snort_corpus, http_trace):
    def experiment():
        cache = CacheModel()
        baseline_series = Series("Two separate middleboxes")
        virtual_series = Series("Two virtual DPI instances")
        for total in SNORT_SWEEP:
            set_a, set_b = random_split(snort_corpus[:total], parts=2, seed=4)
            baseline, virtual = _compare(
                set_a, set_b, http_trace, cache, layout="full"
            )
            baseline_series.append(total, baseline)
            virtual_series.append(total, virtual)
        table = Table(
            "Figure 9(a): Snort1/Snort2 pipeline vs virtual DPI [Mbps]",
            ["total patterns", "separate (pipeline)", "virtual DPI", "gain %"],
        )
        for index, total in enumerate(SNORT_SWEEP):
            table.add_row(
                total,
                baseline_series.ys[index],
                virtual_series.ys[index],
                percent_faster(
                    virtual_series.ys[index], baseline_series.ys[index]
                ),
            )
        table.print()
        from repro.bench.harness import plot_series_together

        print()
        print(plot_series_together([baseline_series, virtual_series]))
        return baseline_series, virtual_series

    baseline_series, virtual_series = run_once(benchmark, experiment)
    for baseline, virtual in zip(baseline_series.ys, virtual_series.ys):
        gain = percent_faster(virtual, baseline)
        # Paper: at least 86 % faster; allow measurement slack down to 45 %.
        assert gain > 45.0, f"virtual DPI only {gain:.1f}% faster"
    # At small pattern counts the combined set is nearly free, so the gain
    # approaches the full 2x (100 %) somewhere along the sweep.
    best_gain = max(
        percent_faster(virtual, baseline)
        for baseline, virtual in zip(baseline_series.ys, virtual_series.ys)
    )
    assert best_gain > 70.0


def test_fig9b_snort_plus_clamav(benchmark, snort_corpus, clamav_corpus, http_trace):
    def experiment():
        cache = CacheModel()
        baseline_series = Series("Two separate middleboxes")
        virtual_series = Series("Two virtual DPI instances")
        totals = []
        for fraction in MIXED_SWEEP_FRACTIONS:
            snort_part = snort_corpus[: int(len(snort_corpus) * fraction)]
            clam_part = clamav_corpus[: int(len(clamav_corpus) * fraction)]
            totals.append(len(snort_part) + len(clam_part))
            baseline, virtual = _compare(
                snort_part, clam_part, http_trace, cache, layout="sparse"
            )
            baseline_series.append(totals[-1], baseline)
            virtual_series.append(totals[-1], virtual)
        table = Table(
            "Figure 9(b): full Snort + ClamAV pipeline vs virtual DPI [Mbps]"
            + (
                ""
                if CLAMAV_BENCH_COUNT == 31827
                else f"  (ClamAV scaled to {CLAMAV_BENCH_COUNT} patterns)"
            ),
            ["total patterns", "separate (pipeline)", "virtual DPI", "gain %"],
        )
        for index, total in enumerate(totals):
            table.add_row(
                total,
                baseline_series.ys[index],
                virtual_series.ys[index],
                percent_faster(
                    virtual_series.ys[index], baseline_series.ys[index]
                ),
            )
        table.print()
        return baseline_series, virtual_series

    baseline_series, virtual_series = run_once(benchmark, experiment)
    for baseline, virtual in zip(baseline_series.ys, virtual_series.ys):
        gain = percent_faster(virtual, baseline)
        # Paper: more than 67 % faster; allow slack down to 40 %.
        assert gain > 40.0, f"virtual DPI only {gain:.1f}% faster"
