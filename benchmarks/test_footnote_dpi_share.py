"""Section 1, footnote 1 — "DPI slows packet processing by a factor of at
least 2.9" (measured by the authors on Snort).

We compare a legacy middlebox doing its own scan + rule evaluation against
the same middlebox's rule evaluation alone (what remains once the DPI
service supplies the matches via the results plugin).  The ratio between the
two is the share the paper's footnote attributes to DPI.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table
from repro.core.reports import MatchReport
from repro.middleboxes.legacy import LegacyDPIMiddlebox
from repro.middleboxes.plugin import DPIResultsPlugin
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet

from benchmarks.conftest import run_once


def _build_middlebox(patterns):
    middlebox = LegacyDPIMiddlebox(middlebox_id=1, name="snort", layout="full")
    for rule_id, pattern in enumerate(patterns):
        middlebox.add_literal_rule(rule_id, pattern)
    middlebox.build_engine()
    return middlebox


def _packets(trace):
    packets = []
    for payload in trace.payloads:
        packets.append(
            make_tcp_packet(
                MACAddress.from_index(0),
                MACAddress.from_index(1),
                IPv4Address("10.0.0.1"),
                IPv4Address("10.0.0.2"),
                1234,
                80,
                payload=payload,
            )
        )
    return packets


def test_footnote_dpi_processing_share(benchmark, snort_corpus, http_trace):
    def experiment():
        patterns = snort_corpus[:2000]
        with_dpi = _build_middlebox(patterns)
        plugin_host = _build_middlebox(patterns)
        plugin = DPIResultsPlugin(plugin_host)
        packets = _packets(http_trace)

        # Precompute the service's reports (the DPI service does this once,
        # outside the middlebox).
        reports = []
        for packet in packets:
            matches = plugin_host.scan(packet.payload)
            reports.append(MatchReport.from_matches({1: matches}))
        plugin_host.stats.packets_processed = 0  # reset after precompute

        def run_with_dpi():
            for packet in packets:
                with_dpi.process_packet(packet)

        def run_plugin():
            for packet, report in zip(packets, reports):
                plugin.consume_report(packet, report)

        run_with_dpi()  # warmup
        run_plugin()

        started = time.perf_counter()
        for _ in range(3):
            run_with_dpi()
        dpi_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(3):
            run_plugin()
        plugin_seconds = time.perf_counter() - started

        factor = dpi_seconds / plugin_seconds
        table = Table(
            "Footnote 1: middlebox processing time with vs without DPI",
            ["configuration", "seconds (3 passes)", "slowdown"],
        )
        table.add_row("rule evaluation only (DPI as a service)", plugin_seconds, 1.0)
        table.add_row("embedded DPI + rule evaluation", dpi_seconds, factor)
        table.print()
        return factor

    factor = run_once(benchmark, experiment)
    # Paper: at least 2.9x. Require a clear multi-x slowdown.
    assert factor > 2.0, f"DPI slowdown factor only {factor:.2f}"
