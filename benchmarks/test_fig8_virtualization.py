"""Figure 8 — the effect of virtualization and of the number of patterns on
AC throughput.

The paper runs the original AC algorithm (a) on a stand-alone machine,
(b) in a single VM, (c) in four co-resident VMs, for growing pattern counts,
and finds that virtualization has a **minor** impact while pattern count has
a **major** one.

We measure native pure-Python AC throughput per pattern count and layer two
calibrated hardware models on top (substitutions documented in DESIGN.md):

* :class:`~repro.bench.virtualization.CacheModel` — the DFA-working-set
  cache pressure that makes pattern count matter (the CPython interpreter
  masks cache misses, so this effect cannot be measured directly);
* :class:`~repro.bench.virtualization.VirtualizationModel` — the hypervisor
  penalty and the shared-L3 contention of co-resident VMs.
"""

from __future__ import annotations

from repro.bench.harness import Series, Table, percent_less
from repro.bench.virtualization import CacheModel, VirtualizationModel
from repro.core.aho_corasick import AhoCorasick

from benchmarks.conftest import interleaved_throughput, run_once

PATTERN_COUNTS = [500, 1000, 2000, 4356]


def test_fig8_virtualization_and_pattern_count(benchmark, snort_corpus, http_trace):
    def experiment():
        cache = CacheModel()
        vm = VirtualizationModel()
        automata = {
            count: AhoCorasick(snort_corpus[:count], layout="full")
            for count in PATTERN_COUNTS
        }
        raw = interleaved_throughput(automata, http_trace.payloads)
        series = {
            "stand-alone": Series("Stand alone machine"),
            "single-vm": Series("Single VM"),
            "four-vms": Series("4 VMs (average)"),
        }
        for count in PATTERN_COUNTS:
            working_set = automata[count].stats.memory_bytes
            standalone = cache.effective_mbps(raw[count], working_set)
            series["stand-alone"].append(count, standalone)
            series["single-vm"].append(
                count, vm.effective_mbps(standalone, 1, working_set)
            )
            series["four-vms"].append(
                count, vm.effective_mbps(standalone, 4, working_set)
            )
        table = Table(
            "Figure 8: AC throughput vs number of patterns [Mbps]",
            ["patterns", "DFA MB", "stand-alone", "single VM", "4 VMs (avg)"],
        )
        for index, count in enumerate(PATTERN_COUNTS):
            working_set_mb = automata[count].stats.memory_bytes / 2**20
            table.add_row(
                count,
                working_set_mb,
                series["stand-alone"].ys[index],
                series["single-vm"].ys[index],
                series["four-vms"].ys[index],
            )
        table.print()
        from repro.bench.harness import plot_series_together

        print()
        print(plot_series_together(list(series.values())))
        return series

    series = run_once(benchmark, experiment)

    for index in range(len(PATTERN_COUNTS)):
        standalone = series["stand-alone"].ys[index]
        single_vm = series["single-vm"].ys[index]
        four_vms = series["four-vms"].ys[index]
        # Virtualization has a minor impact (single digits to ~15 %)...
        assert percent_less(single_vm, standalone) < 15.0
        assert percent_less(four_vms, standalone) < 20.0
        # ... and the ordering is stand-alone >= 1 VM >= 4 VMs.
        assert standalone >= single_vm >= four_vms

    # The number of patterns has a major impact: the full corpus runs at
    # least 25 % below the smallest one (the paper's curves drop steeply).
    first = series["stand-alone"].ys[0]
    last = series["stand-alone"].ys[-1]
    assert percent_less(last, first) > 25.0
