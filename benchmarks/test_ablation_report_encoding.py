"""Ablation — match-report encoding (Section 6.5's design choice).

The paper uses uniform 6-byte records so that *range* reports (one pattern
matching at a run of consecutive positions — the repeated-character case)
cost a single record.  The alternative is a 4-byte single-match record with
no range form.  On ordinary traffic the 4-byte form is smaller; on
repeated-character payloads the range form wins by orders of magnitude —
which is exactly why the paper pays the 2 extra bytes.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile

from benchmarks.conftest import run_once

CHAIN = 100


def _instance(snort_corpus):
    from repro.workloads.patterns import to_pattern_list

    patterns = to_pattern_list(snort_corpus[:2000])
    # Add a repeated-character pattern: the range-report trigger.
    patterns.append(Pattern(pattern_id=5000, data=b"A" * 8))
    return DPIServiceInstance(
        InstanceConfig(
            pattern_sets={1: patterns},
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={CHAIN: (1,)},
            layout="full",
        )
    )


def test_ablation_report_encoding(benchmark, snort_corpus, campus_trace):
    def experiment():
        instance = _instance(snort_corpus)
        ordinary_range = 0
        ordinary_compact = 0
        for payload in campus_trace.payloads:
            output = instance.inspect(payload, chain_id=CHAIN)
            if output.report.is_empty:
                continue
            ordinary_range += len(output.report.encode())
            ordinary_compact += len(output.report.encode_compact())

        # The repeated-character payload: one pattern, hundreds of
        # consecutive match positions.
        run_payload = b"A" * 600
        output = instance.inspect(run_payload, chain_id=CHAIN)
        run_range = len(output.report.encode())
        run_compact = len(output.report.encode_compact())

        table = Table(
            "Ablation: report encoding (6B records + ranges vs 4B singles)",
            ["workload", "6B + ranges [bytes]", "4B singles [bytes]"],
        )
        table.add_row("campus trace (all matched packets)", ordinary_range, ordinary_compact)
        table.add_row("repeated-character payload", run_range, run_compact)
        table.print()
        return ordinary_range, ordinary_compact, run_range, run_compact

    ordinary_range, ordinary_compact, run_range, run_compact = run_once(
        benchmark, experiment
    )
    # Ordinary traffic: singles are (moderately) smaller per record.
    assert ordinary_compact <= ordinary_range
    # Repeated characters: range records collapse hundreds of matches.
    assert run_range < run_compact / 20
