"""Figure 10 — achievable-throughput regions: separate rectangle vs
virtual-DPI triangle.

Scenario (paper Figure 3): two traffic classes, one middlebox each (pattern
sets A and B), two machines.  Dedicated machines yield the rectangle
``[0, T_A] x [0, T_B]``; two virtual-DPI machines running the combined set
yield the triangle ``x + y <= 2 * T_combined``.  The paper's point: inside
the triangle but outside the rectangle, one class *exceeds 100 % of its
dedicated capacity* by borrowing the other's idle resources.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.bench.regions import region_report
from repro.bench.virtualization import CacheModel
from repro.core.combined import CombinedAutomaton
from repro.workloads.patterns import random_split, to_pattern_list

from benchmarks.conftest import (
    CLAMAV_BENCH_COUNT,
    interleaved_throughput,
    run_once,
)


def _region(set_a, set_b, trace, layout):
    cache = CacheModel()
    automata = {
        "a": CombinedAutomaton({1: to_pattern_list(set_a)}, layout=layout),
        "b": CombinedAutomaton({2: to_pattern_list(set_b)}, layout=layout),
        "combined": CombinedAutomaton(
            {1: to_pattern_list(set_a), 2: to_pattern_list(set_b)},
            layout=layout,
        ),
    }
    raw = interleaved_throughput(automata, trace.payloads)
    modeled = {
        name: cache.effective_mbps(
            raw[name], automata[name].num_states * 256 * 4
        )
        for name in automata
    }
    return region_report(
        modeled["a"], modeled["b"], modeled["combined"], machines=2
    )


def _print_report(title, report):
    table = Table(
        title,
        ["quantity", "value"],
    )
    table.add_row("separate max A [Mbps]", report.rectangle.max_a_mbps)
    table.add_row("separate max B [Mbps]", report.rectangle.max_b_mbps)
    table.add_row("combined total [Mbps]", report.triangle.total_mbps)
    table.add_row("peak gain class A", report.peak_a_gain)
    table.add_row("peak gain class B", report.peak_b_gain)
    table.add_row("rectangle area", report.rectangle.area)
    table.add_row("triangle area", report.triangle.area)
    table.print()


def test_fig10a_snort_split_region(benchmark, snort_corpus, http_trace):
    def experiment():
        set_a, set_b = random_split(snort_corpus, parts=2, seed=4)
        report = _region(set_a, set_b, http_trace, layout="full")
        _print_report("Figure 10(a): Snort1 vs Snort2 throughput regions", report)
        return report

    report = run_once(benchmark, experiment)
    # Each class can exceed 100 % of its dedicated-machine capacity when the
    # other is idle — the area above/right of the rectangle.
    assert report.peak_a_gain > 1.0
    assert report.peak_b_gain > 1.0
    assert report.gain_examples
    # The triangle's corners escape the rectangle along both axes.
    total = report.triangle.total_mbps
    assert not report.rectangle.contains(total, 0.0)
    assert not report.rectangle.contains(0.0, total)


def test_fig10b_snort_vs_clamav_region(
    benchmark, snort_corpus, clamav_corpus, http_trace
):
    def experiment():
        report = _region(snort_corpus, clamav_corpus, http_trace, layout="sparse")
        _print_report(
            "Figure 10(b): Snort vs ClamAV throughput regions"
            + (
                ""
                if CLAMAV_BENCH_COUNT == 31827
                else f" (ClamAV scaled to {CLAMAV_BENCH_COUNT})"
            ),
            report,
        )
        return report

    report = run_once(benchmark, experiment)
    # The paper's worked example: Clam-AV under high load "could actually
    # exceed 100 % of its original capacity" with virtual DPI.  ClamAV is
    # class B here — its dedicated machine is slower (bigger set), so its
    # borrow-gain is the larger of the two.
    assert report.peak_b_gain > 1.0
    assert report.peak_b_gain > report.peak_a_gain * 0.9
    # But the combined machines cannot serve both classes at their maxima
    # simultaneously (the triangle is not a superset of the rectangle).
    corner_a = report.rectangle.max_a_mbps
    corner_b = report.rectangle.max_b_mbps
    assert not report.triangle.contains(corner_a, corner_b) or (
        report.triangle.total_mbps >= corner_a + corner_b
    )
