"""Ablation — the three result-passing modes of Section 4.2.

For the same scanned trace, compare the bytes each mode puts on the wire
beyond the original packets:

* dedicated result packets (the paper's prototype): a full extra packet per
  matched data packet;
* NSH metadata: the encoded report plus the 8-byte NSH base header,
  carried on the data packet itself;
* tag encoding: 4 bytes per encoded record, silently capped (the "messy"
  option).

The paper also notes that since >90 % of packets have no matches, all modes
cost nothing for most traffic.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.core.instance import DPIServiceFunction, DPIServiceInstance, InstanceConfig
from repro.core.scanner import MiddleboxProfile
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import VlanTag, make_tcp_packet
from repro.workloads.patterns import to_pattern_list

from benchmarks.conftest import run_once

CHAIN = 100


def _make_function(snort_corpus, mode):
    instance = DPIServiceInstance(
        InstanceConfig(
            pattern_sets={1: to_pattern_list(snort_corpus[:2000])},
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={CHAIN: (1,)},
            layout="full",
        )
    )
    return DPIServiceFunction(instance, result_mode=mode)


def _packets(trace):
    packets = []
    for payload in trace.payloads:
        packet = make_tcp_packet(
            MACAddress.from_index(0),
            MACAddress.from_index(1),
            IPv4Address("10.0.0.1"),
            IPv4Address("10.0.0.2"),
            1234,
            80,
            payload=payload,
        )
        packet.push_vlan(VlanTag(vid=CHAIN))
        packets.append(packet)
    return packets


def test_ablation_result_modes(benchmark, snort_corpus, campus_trace):
    def experiment():
        baseline_bytes = sum(
            packet.wire_length for packet in _packets(campus_trace)
        )
        overheads = {}
        matched = {}
        for mode in ("result_packet", "nsh", "tags"):
            function = _make_function(snort_corpus, mode)
            total = 0
            matched_packets = 0
            for packet in _packets(campus_trace):
                outputs = function.process(packet)
                total += sum(p.wire_length for p in outputs)
                if packet.is_marked_matched:
                    matched_packets += 1
            overheads[mode] = total - baseline_bytes
            matched[mode] = matched_packets
        table = Table(
            "Ablation: result-passing modes (bytes beyond the data packets)",
            ["mode", "overhead [bytes]", "matched packets"],
        )
        for mode, overhead in overheads.items():
            table.add_row(mode, overhead, matched[mode])
        table.print()
        return overheads, matched, len(campus_trace.payloads)

    overheads, matched, total_packets = run_once(benchmark, experiment)

    # All modes agree on which packets matched.
    assert len(set(matched.values())) == 1
    matched_count = next(iter(matched.values()))
    # Most packets are matchless, so overhead exists but is bounded.
    assert matched_count < total_packets * 0.2

    # A dedicated packet repeats all headers; NSH carries only the report
    # plus a small header; tags are the smallest but lossy.
    assert overheads["result_packet"] > overheads["nsh"] > overheads["tags"]
    # Per matched packet, the dedicated-packet overhead is at least the
    # fixed header stack (Ethernet + VLAN + IP + TCP = 58 bytes).
    assert overheads["result_packet"] >= matched_count * 58
