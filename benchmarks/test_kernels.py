"""Ablation — scan kernels (flat-table, regex-prefilter, reference).

Runs :func:`repro.bench.kernels.run_kernel_benchmark` on both synthetic
corpora, writes ``BENCH_kernels.json`` at the repo root, and asserts the
speedup floors the kernels were built to clear:

* flat-table >= 2x reference on the token-dense snort-like corpus, where
  every kernel has to walk the DFA byte by byte;
* regex-prefilter >= 10x reference on the high-entropy clamav-like corpus,
  where signature anchor bytes are rare in web traffic and whole payloads
  are dismissed inside the C regex engine.

The two corpora deliberately bracket the regex kernel's operating range —
on snort-like content it rides its flat-table fallback (the density
bail-out), so it is asserted only to stay at flat-fallback speed there.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.kernels import (
    build_workload,
    format_results,
    run_kernel_benchmark,
    write_results,
)

from benchmarks.conftest import run_once

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def test_kernel_ablation(benchmark):
    def experiment():
        results = run_kernel_benchmark(
            pattern_count=2000, packets=60, rounds=3
        )
        print()
        print(format_results(results))
        write_results(results, RESULTS_PATH)
        return results

    results = run_once(benchmark, experiment)
    snort = results["corpora"]["snort-like"]["kernels"]
    clamav = results["corpora"]["clamav-like"]["kernels"]
    # The acceptance floors (see DESIGN.md, "Scan kernels").
    assert snort["flat"]["speedup_vs_reference"] >= 2.0
    assert clamav["regex"]["speedup_vs_reference"] >= 10.0
    # The regex kernel's density bail-out keeps it at flat-fallback speed
    # on token-dense content rather than collapsing below the reference.
    assert snort["regex"]["mbps"] >= snort["reference"]["mbps"]
    # The cache-hit pass short-circuits the scan entirely.
    cache = results["corpora"]["snort-like"]["cache"]
    assert cache["hit_pass_mbps"] > snort["flat"]["mbps"]


def test_kernels_agree_on_benchmark_workload(benchmark):
    """Differential sample at benchmark scale: all kernels, same matches."""

    def experiment():
        workload = build_workload("snort-like", pattern_count=400, packets=20)
        automaton = workload.automaton
        outputs = {}
        for name in ("reference", "flat", "regex"):
            automaton.select_kernel(name)
            outputs[name] = [
                (scan.raw_matches, scan.end_state)
                for scan in map(automaton.scan, workload.payloads)
            ]
        return outputs

    outputs = run_once(benchmark, experiment)
    assert outputs["flat"] == outputs["reference"]
    assert outputs["regex"] == outputs["reference"]
