"""Unit tests for the sharded scan-worker pool (plan, kernel, backends).

The equivalence contract lives in ``test_sharding_properties.py``; this
file pins the deterministic plan construction, the merge ordering, the
backend lifecycle (pool reuse, drain-and-fall-back on failure, shutdown
without orphans), configuration validation, and the telemetry binding.
"""

import multiprocessing

import pytest

from repro.core.combined import CombinedAutomaton
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern, PatternKind
from repro.core.scanner import MiddleboxProfile
from repro.core.sharding import (
    ShardedAutomaton,
    ShardPlan,
    estimate_scan_cost,
)
from repro.core.workers import (
    ProcessBackend,
    SerialBackend,
    automaton_from_spec,
    make_backend,
    make_shard_spec,
)
from repro.telemetry import TelemetryHub

PATTERN_SETS = {
    1: [Pattern(0, b"attack"), Pattern(1, b"worm"), Pattern(2, b"ab")],
    3: [Pattern(0, b"worm"), Pattern(1, b"bad"), Pattern(2, b"aba")],
}


def make_instance_config(**overrides):
    defaults = dict(
        pattern_sets={1: [Pattern(0, b"attack")]},
        profiles={1: MiddleboxProfile(1, name="ids")},
        chain_map={100: (1,)},
    )
    defaults.update(overrides)
    return InstanceConfig(**defaults)


class TestShardPlan:
    def test_same_inputs_same_plan(self):
        first = ShardPlan.build(PATTERN_SETS, 3, seed=5)
        second = ShardPlan.build(PATTERN_SETS, 3, seed=5)
        assert first == second

    def test_partition_is_disjoint_and_complete(self):
        plan = ShardPlan.build(PATTERN_SETS, 3)
        assigned = [data for shard in plan.assignments for data in shard]
        distinct = {
            pattern.data
            for patterns in PATTERN_SETS.values()
            for pattern in patterns
        }
        assert sorted(assigned) == sorted(distinct)
        assert len(assigned) == len(set(assigned))

    def test_cost_strategy_balances_estimates(self):
        plan = ShardPlan.build(PATTERN_SETS, 2, strategy="cost")
        costs = plan.shard_costs()
        total = sum(
            estimate_scan_cost(data)
            for shard in plan.assignments
            for data in shard
        )
        assert sum(costs) == total
        assert plan.balance_ratio() < 1.5

    def test_size_strategy_balances_counts(self):
        plan = ShardPlan.build(PATTERN_SETS, 2, strategy="size")
        sizes = sorted(len(shard) for shard in plan.assignments)
        assert sizes == [2, 3]

    def test_more_shards_than_patterns_leaves_empty_shards(self):
        plan = ShardPlan.build({1: [Pattern(0, b"one")]}, 4)
        assert plan.num_shards == 4
        assert sum(len(shard) for shard in plan.assignments) == 1

    def test_shard_of(self):
        plan = ShardPlan.build(PATTERN_SETS, 3)
        assert plan.assignments[plan.shard_of(b"attack")] == tuple(
            sorted(plan.assignments[plan.shard_of(b"attack")])
        )
        with pytest.raises(KeyError):
            plan.shard_of(b"missing")

    def test_from_assignments(self):
        plan = ShardPlan.from_assignments([[b"worm"], [b"attack", b"ab"]])
        assert plan.strategy == "explicit"
        assert plan.shard_of(b"worm") == 0
        assert plan.shard_of(b"ab") == 1

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(ValueError, match="assigned twice"):
            ShardPlan(
                num_shards=2,
                strategy="explicit",
                seed=0,
                assignments=((b"x",), (b"x",)),
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            ShardPlan.build(PATTERN_SETS, 0)
        with pytest.raises(ValueError, match="strategy"):
            ShardPlan.build(PATTERN_SETS, 2, strategy="vibes")
        with pytest.raises(ValueError, match="literal"):
            ShardPlan.build(
                {1: [Pattern(0, b"a+", kind=PatternKind.REGEX)]}, 2
            )

    def test_direct_construction_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ShardPlan(num_shards=0, strategy="explicit", seed=0, assignments=())
        with pytest.raises(ValueError, match="assignments for"):
            ShardPlan(
                num_shards=2,
                strategy="explicit",
                seed=0,
                assignments=((b"x",),),
            )

    def test_balance_ratio_of_all_empty_plan_is_one(self):
        plan = ShardPlan.from_assignments([[], []])
        assert plan.shard_costs() == [0, 0]
        assert plan.balance_ratio() == 1.0

    def test_subset_pattern_sets_carry_every_middlebox(self):
        plan = ShardPlan.build(PATTERN_SETS, 3)
        subsets = plan.subset_pattern_sets(PATTERN_SETS)
        assert len(subsets) == 3
        for subset in subsets:
            assert sorted(subset) == [1, 3]


class TestShardedAutomaton:
    def test_merge_order_is_cnt_then_global_state(self):
        # "ab" and "aba"/"worm" land in different shards; a payload hitting
        # several shards at interleaved positions must come back sorted by
        # (cnt, global accepting state).
        sharded = ShardedAutomaton(PATTERN_SETS, 3)
        result = sharded.scan(b"abawormattack")
        keys = [(cnt, state) for state, cnt in result.raw_matches]
        assert keys == sorted(keys)
        assert len(result.raw_matches) >= 3

    def test_accept_state_bookkeeping_matches_shards(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 3)
        mono = CombinedAutomaton(PATTERN_SETS)
        assert sharded.num_accepting == mono.num_accepting
        assert sharded.num_distinct_patterns == mono.num_distinct_patterns
        seen = set()
        for state in range(sharded.num_accepting):
            entry = sharded.match_entry(state)
            assert entry
            assert sharded.bitmap_of_state(state)
            seen.update(entry)
        expected = {
            (middlebox_id, pattern.pattern_id)
            for middlebox_id, patterns in PATTERN_SETS.items()
            for pattern in patterns
        }
        assert seen == expected
        with pytest.raises(IndexError):
            sharded.match_entry(sharded.num_accepting)

    def test_bitmask_of_rejects_unknown_middlebox(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2)
        assert sharded.bitmask_of([1, 3]) == sharded.all_middleboxes_bitmap
        with pytest.raises(KeyError):
            sharded.bitmask_of([2])

    def test_scan_cache_returns_fresh_equal_results(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2, scan_cache_size=4)
        first = sharded.scan(b"abattack")
        second = sharded.scan(b"abattack")
        assert first.raw_matches == second.raw_matches
        assert first is not second
        assert sharded.scan_cache.hits == 1
        # Cached replay skips the backend entirely.
        assert sharded.shard_scan_counts == (1, 1)

    def test_select_kernel_rebuilds_shards(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2, shard_kernel="reference")
        before = sharded.scan(b"abawormattack")
        sharded.select_kernel("regex")
        assert sharded.shard_kernel_name == "regex"
        after = sharded.scan(b"abawormattack")
        assert after.raw_matches == before.raw_matches
        assert after.end_state == before.end_state
        sharded.select_kernel("sharded")  # no-op
        assert sharded.shard_kernel_name == "regex"
        with pytest.raises(ValueError, match="unknown kernel"):
            sharded.select_kernel("gpu")

    def test_accept_state_queries(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2)
        assert sharded.is_accepting(0)
        assert not sharded.is_accepting(sharded.num_accepting)
        for state in range(sharded.num_accepting):
            entry = sharded.match_entry(state)
            with_lengths = sharded.match_entry_with_lengths(state)
            assert [pair for pair, _ in with_lengths] == list(entry)
            assert all(length > 0 for _, length in with_lengths)

    def test_construction_rejects_bad_values(self):
        with pytest.raises(ValueError, match="negative middlebox id"):
            ShardedAutomaton({-1: [Pattern(0, b"x")]}, 2)
        with pytest.raises(ValueError, match="negative scan cache size"):
            ShardedAutomaton(PATTERN_SETS, 2, scan_cache_size=-1)

    def test_select_kernel_clears_scan_cache(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2, scan_cache_size=4)
        before = sharded.scan(b"abattack")
        sharded.select_kernel("regex")
        after = sharded.scan(b"abattack")
        assert after.raw_matches == before.raw_matches
        # The rebuilt kernel starts fresh and actually ran the scan — a
        # stale cache entry would have left its counters at zero.
        assert sharded.shard_scan_counts == (1, 1)

    def test_scan_accepts_buffer_payloads(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2)
        from_bytes = sharded.scan(b"abattack")
        from_buffer = sharded.scan(bytearray(b"abattack"))
        assert from_buffer.raw_matches == from_bytes.raw_matches
        assert from_buffer.end_state == from_bytes.end_state

    def test_scan_batch_matches_per_payload_scans(self):
        payloads = [b"abawormattack", b"", b"badab", bytearray(b"worm")]
        sharded = ShardedAutomaton(PATTERN_SETS, 3)
        batch = sharded.scan_batch(payloads)
        singles = [sharded.scan(bytes(payload)) for payload in payloads]
        def as_tuples(results):
            return [
                (r.raw_matches, r.end_state, r.bytes_scanned) for r in results
            ]
        assert as_tuples(batch) == as_tuples(singles)
        # Bitmap masking and limits ride through the batched path too.
        bitmap = sharded.bitmask_of([3])
        limited = sharded.scan_batch(payloads, bitmap, None, 4)
        limited_singles = [
            sharded.scan(bytes(payload), bitmap, None, 4)
            for payload in payloads
        ]
        assert as_tuples(limited) == as_tuples(limited_singles)

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="shard kernel"):
            ShardedAutomaton(PATTERN_SETS, 2, shard_kernel="gpu")
        with pytest.raises(ValueError, match="shard backend"):
            ShardedAutomaton(PATTERN_SETS, 2, backend="threads")
        with pytest.raises(ValueError, match="num_shards or plan"):
            ShardedAutomaton(PATTERN_SETS)

    def test_explicit_plan(self):
        plan = ShardPlan.build(PATTERN_SETS, 2, seed=9)
        sharded = ShardedAutomaton(PATTERN_SETS, plan=plan)
        assert sharded.plan is plan
        assert len(sharded.shards) == 2

    def test_stats_aggregate_over_shards(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 3)
        stats = sharded.stats
        assert stats.num_patterns == sharded.num_distinct_patterns
        assert stats.num_states == sum(
            shard.num_states for shard in sharded.shards
        )
        assert stats.num_accepting_states == sharded.num_accepting


class TestBackends:
    def test_spec_round_trip(self):
        spec = make_shard_spec(PATTERN_SETS, "sparse", "flat")
        rebuilt = automaton_from_spec(spec)
        original = CombinedAutomaton(PATTERN_SETS, kernel="flat")
        payload = b"abawormattackbad"
        left = rebuilt.scan(payload)
        right = original.scan(payload)
        assert left.raw_matches == right.raw_matches
        assert left.end_state == right.end_state

    def test_make_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="shard backend"):
            make_backend("threads", automata=[], specs=())

    def test_every_backend_declares_the_protocol_surface(self):
        # The ShardBackend Protocol made explicit at runtime: name,
        # supports_pipelined, and the three methods — with the pipelined
        # capability advertised by flag, not hasattr.
        from repro.core.zerocopy import ZeroCopyBackend

        for cls, pipelined in (
            (SerialBackend, False),
            (ProcessBackend, False),
            (ZeroCopyBackend, True),
        ):
            assert cls.name in ("serial", "process", "zerocopy")
            assert cls.supports_pipelined is pipelined
            for method in ("scan_shards", "scan_shard_batches", "shutdown"):
                assert callable(getattr(cls, method)), (cls, method)
            assert pipelined == hasattr(cls, "scan_chunked_batches")

    def test_serial_backend_runs_in_task_order(self):
        automata = [
            CombinedAutomaton({1: [Pattern(0, b"aa")]}),
            CombinedAutomaton({1: [Pattern(0, b"ab")]}),
        ]
        backend = SerialBackend(automata)
        results = backend.scan_shards(
            [(0, b"aaab", 2, automata[0].root, None),
             (1, b"aaab", 2, automata[1].root, None)]
        )
        assert len(results) == 2
        assert results[0][0]  # "aa" matched in shard 0
        assert results[1][0]  # "ab" matched in shard 1
        backend.shutdown()  # no-op, must not raise

    def test_process_backend_reuses_pool_and_shuts_down_clean(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2, backend="process")
        sharded.scan(b"abattack")
        pool = sharded._kernel._backend._pool
        assert pool is not None
        sharded.scan(b"wormbad")
        assert sharded._kernel._backend._pool is pool
        sharded.shutdown()
        assert sharded._kernel._backend._pool is None
        assert multiprocessing.active_children() == []

    def test_process_backend_worker_count(self):
        backend = ProcessBackend(specs=(1, 2, 3))
        assert 1 <= backend.workers <= 3
        assert ProcessBackend(specs=(1, 2), workers=2).workers == 2
        with pytest.raises(ValueError, match="positive"):
            ProcessBackend(specs=(), workers=0)
        assert backend._chunksize(10) >= 1

    def test_worker_task_functions_match_serial_backend(self):
        # The exact functions pool children run, exercised in-process:
        # _init_worker builds the shard automata, the task functions must
        # agree with the serial backend on every raw tuple.
        import repro.core.workers as workers

        plan = ShardPlan.build(PATTERN_SETS, 2)
        subsets = plan.subset_pattern_sets(PATTERN_SETS)
        specs = tuple(
            make_shard_spec(subset, "sparse", "flat") for subset in subsets
        )
        automata = [automaton_from_spec(spec) for spec in specs]
        serial = SerialBackend(automata)
        saved = workers._WORKER_AUTOMATA
        try:
            workers._init_worker(specs)
            tasks = [
                (
                    index,
                    b"abawormattackbad",
                    automata[index].all_middleboxes_bitmap,
                    automata[index].root,
                    None,
                )
                for index in range(len(automata))
            ]
            assert [
                workers._scan_task(task) for task in tasks
            ] == serial.scan_shards(tasks)
            batch_tasks = [
                (
                    index,
                    (b"abattack", b"", b"worm"),
                    automata[index].all_middleboxes_bitmap,
                    automata[index].root,
                    None,
                )
                for index in range(len(automata))
            ]
            assert [
                workers._scan_batch_task(task) for task in batch_tasks
            ] == serial.scan_shard_batches(batch_tasks)
        finally:
            workers._WORKER_AUTOMATA = saved

    def test_process_batch_path_and_batch_fallback(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2, backend="process")
        payloads = [b"abawormattack", b"badab"]
        first = sharded.scan_batch(payloads)
        # Sabotage the pool: the batched path must drain and fall back too.
        pool = sharded._kernel._backend._pool
        pool.terminate()
        pool.join()
        recovered = sharded.scan_batch(payloads)
        assert [r.raw_matches for r in recovered] == [
            r.raw_matches for r in first
        ]
        assert sharded.active_backend_name == "serial"
        assert sharded.pool_fallbacks == 1
        sharded.shutdown()
        assert multiprocessing.active_children() == []

    def test_fallback_survives_failing_drain(self):
        sharded = ShardedAutomaton(PATTERN_SETS, 2, backend="process")

        class ExplodingBackend:
            def scan_shards(self, tasks):
                raise RuntimeError("boom")

            def shutdown(self):
                raise RuntimeError("already dead")

        sharded._kernel._backend = ExplodingBackend()
        result = sharded.scan(b"abattack")
        assert result.raw_matches
        assert sharded.active_backend_name == "serial"
        assert sharded.pool_fallbacks == 1
        sharded.shutdown()

    def test_pool_failure_falls_back_to_serial(self):
        hub = TelemetryHub(tracing=False)
        sharded = ShardedAutomaton(PATTERN_SETS, 2, backend="process")
        sharded.bind_telemetry(hub, "dpi-test")
        expected = sharded.scan(b"abawormattack")
        # Sabotage: kill the pool out from under the kernel.
        pool = sharded._kernel._backend._pool
        pool.terminate()
        pool.join()
        recovered = sharded.scan(b"abawormattack")
        assert recovered.raw_matches == expected.raw_matches
        assert recovered.end_state == expected.end_state
        assert sharded.active_backend_name == "serial"
        assert sharded.pool_fallbacks == 1
        assert multiprocessing.active_children() == []
        kinds = [(event.kind, event.phase) for event in hub.faults]
        assert ("shard_pool_failure", "recover") in kinds
        sharded.shutdown()


class TestInstanceWiring:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="shards >= 1"):
            make_instance_config(kernel="sharded")
        with pytest.raises(ValueError, match="requires kernel='sharded'"):
            make_instance_config(kernel="flat", shards=2)
        with pytest.raises(ValueError, match="shard backend"):
            make_instance_config(
                kernel="sharded", shards=2, shard_backend="threads"
            )
        with pytest.raises(ValueError, match="shard kernel"):
            make_instance_config(
                kernel="sharded", shards=2, shard_kernel="sharded"
            )
        config = make_instance_config(kernel="sharded", shards=2)
        assert config.shard_backend == "serial"

    def test_instance_builds_sharded_automaton(self):
        instance = DPIServiceInstance(
            make_instance_config(kernel="sharded", shards=3)
        )
        assert isinstance(instance.automaton, ShardedAutomaton)
        output = instance.inspect(b"xx attack xx", chain_id=100)
        assert output.matches == {1: [(0, 9)]}

    def test_crash_drains_worker_pool(self):
        instance = DPIServiceInstance(
            make_instance_config(
                kernel="sharded", shards=2, shard_backend="process"
            )
        )
        instance.inspect(b"the attack payload", chain_id=100)
        assert multiprocessing.active_children() != []
        instance.crash()
        assert multiprocessing.active_children() == []
        instance.restart()
        output = instance.inspect(b"the attack payload", chain_id=100)
        assert output.has_matches
        instance.crash()
        assert multiprocessing.active_children() == []

    def test_telemetry_binding_publishes_shard_metrics(self):
        hub = TelemetryHub(tracing=False)
        instance = DPIServiceInstance(
            make_instance_config(kernel="sharded", shards=2),
            name="dpi-shardy",
            telemetry=hub,
        )
        instance.inspect(b"an attack here", chain_id=100)
        instance.inspect(b"clean", chain_id=100)
        counters = hub.registry.collect_named("dpi_shard_scans_total")
        assert len(counters) == 2
        assert all(counter.value == 2 for counter in counters)
        histograms = hub.registry.collect_named("dpi_shard_merge_seconds")
        assert len(histograms) == 1
        assert histograms[0].count == 2


class TestLifecycleWiring:
    def build_controller(self):
        from repro.core.controller import DPIController
        from repro.core.messages import (
            AddPatternsMessage,
            RegisterMiddleboxMessage,
        )
        from repro.net.steering import PolicyChain

        controller = DPIController()
        controller.handle_message(RegisterMiddleboxMessage(1, "ids"))
        controller.handle_message(
            AddPatternsMessage(1, [Pattern(0, b"attack"), Pattern(1, b"worm")])
        )
        controller.policy_chains_changed(
            {"c": PolicyChain("c", ("ids",), chain_id=100)}
        )
        return controller

    def test_provision_and_refresh_keep_sharding_config(self):
        controller = self.build_controller()
        instance = controller.instances.provision(
            "dpi-sharded", kernel="sharded", shards=3, shard_kernel="regex"
        )
        assert instance.config.shards == 3
        assert isinstance(instance.automaton, ShardedAutomaton)
        controller.instances.refresh()
        refreshed = controller.instances["dpi-sharded"]
        assert refreshed.config.kernel == "sharded"
        assert refreshed.config.shards == 3
        assert refreshed.config.shard_kernel == "regex"
        assert isinstance(refreshed.automaton, ShardedAutomaton)

    def test_build_config_passes_sharding_fields(self):
        controller = self.build_controller()
        config = controller.instances.build_config(
            kernel="sharded", shards=2, shard_backend="process"
        )
        assert config.shards == 2
        assert config.shard_backend == "process"
