"""Unit and e2e tests for the flow-feature anomaly layer (repro.anomaly)."""

import pytest

from repro.anomaly import (
    FEATURE_NAMES,
    SIZE_BIN_BOUNDS,
    AnomalyClassifier,
    AnomalyDetectorMiddlebox,
    FeatureExtractor,
    features_digest,
    verdict_digest,
)
from repro.telemetry.registry import MetricsRegistry


def observe_rows(extractor, rows):
    for flow_key, chain_id, size, matches, now in rows:
        extractor.observe(
            flow_key, chain_id=chain_id, size=size, matches=matches, now=now
        )


#: The hand-computed fixture flow: three packets of 100/200/300 bytes at
#: t = 0, 1, 3 carrying 0/1/2 matches on chain 7.
FIXTURE_ROWS = [
    ("f", 7, 100, 0, 0.0),
    ("f", 7, 200, 1, 1.0),
    ("f", 7, 300, 2, 3.0),
]


class TestFeatureExtractor:
    def test_hand_computed_fixture(self):
        extractor = FeatureExtractor()
        observe_rows(extractor, FIXTURE_ROWS)
        row = extractor.features("f")
        assert row.packets == 3
        assert row.bytes == 600
        assert row.matches == 3
        assert row.chain_id == 7
        assert row.duration == 3.0
        # 3 packets / 3 seconds; 600 bytes / 3 seconds.
        assert row.pkt_rate == 1.0
        assert row.byte_rate == 200.0
        assert row.mean_size == 200.0
        # sizes 100/200/300: var = 46666.67 - 40000, std = 81.6497.
        assert row.size_cv == pytest.approx(81.649658 / 200.0)
        # inter-arrival gaps 1 and 2: mean 1.5, std 0.5.
        assert row.iat_mean == 1.5
        assert row.iat_cv == pytest.approx(1.0 / 3.0)
        assert row.match_density == 1.0
        assert row.matches_per_kb == pytest.approx(3.0 / (600.0 / 1024.0))
        # size bins (64, 128, 256, 512, 1024): 100 -> le128, 200 -> le256,
        # 300 -> le512.
        assert row.size_hist == (
            0.0, 1 / 3, 1 / 3, 1 / 3, 0.0, 0.0,
        )
        assert len(row.vector()) == len(FEATURE_NAMES)
        assert len(row.size_hist) == len(SIZE_BIN_BOUNDS) + 1

    def test_vector_follows_feature_name_order(self):
        extractor = FeatureExtractor()
        observe_rows(extractor, FIXTURE_ROWS)
        row = extractor.features("f")
        as_dict = row.to_dict()
        assert [as_dict[name] for name in FEATURE_NAMES] == list(row.vector())

    def test_single_packet_flow_rates_degrade_to_counts(self):
        extractor = FeatureExtractor()
        extractor.observe("solo", chain_id=1, size=500, matches=2, now=9.0)
        row = extractor.features("solo")
        assert row.duration == 0.0
        assert row.pkt_rate == 1.0
        assert row.byte_rate == 500.0
        assert row.iat_mean == 0.0
        assert row.iat_cv == 0.0

    def test_unknown_flow_raises(self):
        with pytest.raises(KeyError, match="unknown flow"):
            FeatureExtractor().features("ghost")

    def test_observe_batch_equals_loop(self):
        one = FeatureExtractor()
        observe_rows(one, FIXTURE_ROWS)
        other = FeatureExtractor()
        other.observe_batch(FIXTURE_ROWS)
        assert features_digest(one.features_map()) == features_digest(
            other.features_map()
        )

    def test_max_flows_bounds_admission(self):
        extractor = FeatureExtractor(max_flows=1)
        extractor.observe("a", chain_id=1, size=10, matches=0, now=0.0)
        extractor.observe("b", chain_id=1, size=10, matches=0, now=0.0)
        extractor.observe("a", chain_id=1, size=10, matches=0, now=1.0)
        assert len(extractor) == 1
        assert "a" in extractor and "b" not in extractor
        assert extractor.observations == 2
        assert extractor.evicted_observations == 1

    def test_max_flows_validation(self):
        with pytest.raises(ValueError):
            FeatureExtractor(max_flows=0)

    def test_observe_is_deferred_until_read(self):
        extractor = FeatureExtractor()
        observe_rows(extractor, FIXTURE_ROWS)
        # The hot path only records; folding happens on first read.
        assert extractor._pending
        assert extractor.observations == 3
        assert not extractor._pending

    def test_flow_keys_sorted_by_repr(self):
        extractor = FeatureExtractor()
        for key in (3, "b", 1, "a"):
            extractor.observe(key, chain_id=1, size=10, matches=0, now=0.0)
        assert extractor.flow_keys() == sorted([3, "b", 1, "a"], key=repr)
        assert [row.flow_key for row in extractor.iter_features()] == (
            extractor.flow_keys()
        )

    def test_digest_is_stable_and_data_sensitive(self):
        one = FeatureExtractor()
        observe_rows(one, FIXTURE_ROWS)
        two = FeatureExtractor()
        observe_rows(two, FIXTURE_ROWS)
        assert features_digest(one.features_map()) == features_digest(
            two.features_map()
        )
        two.observe("f", chain_id=7, size=64, matches=0, now=4.0)
        assert features_digest(one.features_map()) != features_digest(
            two.features_map()
        )


def benign_population(count=24, chain=100):
    """A small benign-looking population built through the extractor."""
    extractor = FeatureExtractor()
    for flow in range(count):
        for packet in range(4):
            extractor.observe(
                f"benign-{flow}",
                chain_id=chain,
                size=400 + (flow * 7 + packet * 13) % 80,
                matches=0,
                now=float(packet) * (1.0 + (flow % 5) * 0.05),
            )
    return extractor.features_map()


def with_outlier(features, packets=40, chain=200):
    extractor = FeatureExtractor()
    for packet in range(packets):
        extractor.observe(
            "attacker",
            chain_id=chain,
            size=80,
            matches=6,
            now=float(packet) * 0.01,
        )
    merged = dict(features)
    merged.update(extractor.features_map())
    return merged


class TestClassifier:
    def test_fit_and_flag_outlier(self):
        benign = benign_population()
        classifier = AnomalyClassifier(threshold=5.0)
        assert not classifier.fitted
        assert classifier.fit(benign) == len(benign)
        assert classifier.fitted
        population = with_outlier(benign)
        verdicts = classifier.classify_all(population)
        by_key = {verdict.flow_key: verdict for verdict in verdicts}
        assert by_key["attacker"].anomalous
        assert by_key["attacker"].score >= 5.0
        flagged = [v.flow_key for v in verdicts if v.anomalous]
        assert flagged == ["attacker"]

    def test_determinism_under_fixed_seed(self):
        benign = benign_population()
        population = with_outlier(benign)
        digests = set()
        baselines = set()
        for _ in range(2):
            classifier = AnomalyClassifier(threshold=5.0, seed=7)
            classifier.fit(benign)
            baselines.add(classifier.baseline_digest())
            digests.add(verdict_digest(classifier.classify_all(population)))
        assert len(digests) == 1
        assert len(baselines) == 1

    def test_min_packets_gates_flagging(self):
        benign = benign_population()
        classifier = AnomalyClassifier(threshold=5.0, min_packets=2)
        classifier.fit(benign)
        extractor = FeatureExtractor()
        extractor.observe(
            "one-shot", chain_id=200, size=80, matches=50, now=0.0
        )
        verdict = classifier.classify(extractor.features("one-shot"))
        assert verdict.score >= 5.0
        assert not verdict.anomalous

    def test_ewma_calibrate_tracks_population(self):
        classifier = AnomalyClassifier(mode="ewma", threshold=5.0)
        benign = benign_population()
        assert classifier.fit(benign) == len(benign)
        assert classifier.fitted
        population = with_outlier(benign)
        by_key = {
            verdict.flow_key: verdict
            for verdict in classifier.classify_all(population)
        }
        assert by_key["attacker"].anomalous

    def test_calibrate_requires_ewma_mode(self):
        classifier = AnomalyClassifier()
        with pytest.raises(TypeError, match="ewma"):
            classifier.calibrate(benign_population().values())

    def test_unfitted_classifier_raises_without_self_calibrate(self):
        classifier = AnomalyClassifier()
        with pytest.raises(RuntimeError, match="not fitted"):
            classifier.classify_all(benign_population())
        with pytest.raises(RuntimeError, match="not fitted"):
            classifier.score(next(iter(benign_population().values())))
        with pytest.raises(RuntimeError, match="not fitted"):
            classifier.baseline()
        with pytest.raises(RuntimeError, match="not fitted"):
            classifier.baseline_digest()

    def test_self_calibrate_does_not_store_baseline(self):
        classifier = AnomalyClassifier(threshold=5.0)
        # Self-calibration folds the outlier into its own baseline, which
        # caps the reachable z-score near sqrt(n) — use a population large
        # enough for the attacker to clear the threshold anyway.
        population = with_outlier(benign_population(count=100))
        verdicts = classifier.classify_all(population, self_calibrate=True)
        assert any(v.anomalous for v in verdicts)
        assert not classifier.fitted
        assert classifier.classify_all({}, self_calibrate=True) == []

    def test_baseline_view_has_all_features(self):
        classifier = AnomalyClassifier()
        classifier.fit(benign_population())
        baseline = classifier.baseline()
        assert set(baseline) == set(FEATURE_NAMES)
        for entry in baseline.values():
            assert entry["sigma"] > 0.0

    def test_fit_subsamples_large_populations_deterministically(self):
        population = benign_population(count=30)
        small = AnomalyClassifier(max_fit_flows=10, seed=3)
        assert small.fit(population) <= 10
        again = AnomalyClassifier(max_fit_flows=10, seed=3)
        again.fit(population)
        assert small.baseline_digest() == again.baseline_digest()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AnomalyClassifier(mode="nope")
        with pytest.raises(ValueError):
            AnomalyClassifier(threshold=0.0)
        with pytest.raises(ValueError):
            AnomalyClassifier(alpha=0.0)
        with pytest.raises(ValueError):
            AnomalyClassifier(max_fit_flows=0)
        with pytest.raises(ValueError):
            AnomalyClassifier().fit({})


def make_packet(payload=b"data"):
    from repro.net.addresses import IPv4Address, MACAddress
    from repro.net.packet import make_tcp_packet

    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1234,
        80,
        payload=payload,
    )


class TestMiddlebox:
    def test_registers_without_patterns(self):
        from repro.load.driver import build_load_controller

        controller = build_load_controller()
        middlebox = AnomalyDetectorMiddlebox(9, "anomaly")
        middlebox.register_with(controller)  # must not raise

    def test_chain_consumer_path_observes_packets(self):
        from repro.core.reports import MatchReport

        middlebox = AnomalyDetectorMiddlebox(9)
        packet = make_packet(b"payload-bytes")
        report = MatchReport.from_matches({1: [(0, 4)], 2: [(1, 9)]})
        middlebox.consume_report(packet, report)
        middlebox.consume_unmarked(make_packet(b"more-data"))
        features = middlebox.features_map()
        assert len(features) == 1  # same five-tuple, one flow
        row = next(iter(features.values()))
        assert row.packets == 2
        assert row.matches == 2  # report records; unmarked adds none

    def test_direct_path_and_observe_output(self):
        class FakeOutput:
            matches = {1: [(0, 4), (2, 9)], 2: [(5, 1)]}

        middlebox = AnomalyDetectorMiddlebox(9)
        middlebox.observe_output(
            "flow", chain_id=100, size=300, output=FakeOutput(), now=1.0
        )
        row = middlebox.features_map()["flow"]
        assert row.matches == 3
        assert row.bytes == 300

    def test_external_clock_supplies_observation_times(self):
        times = iter([10.0, 11.0, 14.0])
        middlebox = AnomalyDetectorMiddlebox(9, clock=lambda: next(times))
        for size in (100, 200, 300):
            middlebox.observe("flow", chain_id=1, size=size, matches=0)
        row = middlebox.features_map()["flow"]
        assert row.duration == 4.0
        assert row.iat_mean == 2.0

    def test_registration_rejection_raises(self):
        class RejectingController:
            def __init__(self, fail_on):
                self.fail_on = fail_on
                self.calls = 0

            def handle_message(self, _raw):
                self.calls += 1
                ok = self.calls < self.fail_on

                class Ack:
                    pass

                ack = Ack()
                ack.ok = ok
                ack.detail = "nope" if not ok else ""
                return ack

        middlebox = AnomalyDetectorMiddlebox(9)
        with pytest.raises(RuntimeError, match="registration rejected"):
            middlebox.register_with(RejectingController(fail_on=1))
        # With patterns present, a rejected upload must also raise.
        from repro.core.patterns import Pattern

        middlebox.patterns.append(Pattern(0, b"sig"))
        with pytest.raises(RuntimeError, match="pattern upload rejected"):
            middlebox.register_with(RejectingController(fail_on=2))

    def test_internal_tick_is_deterministic(self):
        one = AnomalyDetectorMiddlebox(9)
        two = AnomalyDetectorMiddlebox(9)
        for middlebox in (one, two):
            for index in range(3):
                middlebox.observe(
                    "flow", chain_id=1, size=100 + index, matches=0
                )
        assert one.digest() == two.digest()

    def test_metrics_are_aggregate_only(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        middlebox = AnomalyDetectorMiddlebox(9, registry=registry)
        for flow in range(3):
            for packet in range(4):
                middlebox.observe(
                    f"flow-{flow}",
                    chain_id=1,
                    size=200,
                    matches=8 if flow == 2 else 0,
                    now=float(packet),
                )
        verdicts = middlebox.verdicts()
        assert registry.value("anomaly_observations_total") == 12
        assert registry.value("anomaly_flows_tracked") == 3
        flagged = [v for v in verdicts if v.anomalous]
        assert registry.value("anomaly_flows_flagged_total") == len(flagged)
        # Re-classifying must not double-count already-flagged flows.
        middlebox.verdicts()
        assert registry.value("anomaly_flows_flagged_total") == len(flagged)
        # No per-flow label cardinality anywhere.
        for metric in registry.snapshot()["metrics"]:
            assert "flow" not in metric["labels"]

    def test_anomalous_flows_pairs(self):
        classifier = AnomalyClassifier(threshold=5.0)
        classifier.fit(benign_population())
        middlebox = AnomalyDetectorMiddlebox(9, classifier=classifier)
        for flow in range(4):
            for packet in range(4):
                middlebox.observe(
                    f"flow-{flow}",
                    chain_id=300 if flow == 3 else 1,
                    size=2000 if flow == 3 else 200,
                    matches=9 if flow == 3 else 0,
                    now=float(packet),
                )
        pairs = middlebox.anomalous_flows()
        assert ("flow-3", 300) in pairs


def build_stateful_controller():
    """A controller whose middlebox keeps per-flow scan state (migratable)."""
    from repro.core.controller import DPIController
    from repro.core.messages import (
        AddPatternsMessage,
        RegisterMiddleboxMessage,
    )
    from repro.core.patterns import Pattern
    from repro.net.steering import PolicyChain

    controller = DPIController()
    controller.handle_message(
        RegisterMiddleboxMessage(middlebox_id=1, name="ids", stateful=True)
    )
    patterns = [Pattern(0, b"attack-sig"), Pattern(1, b"malware")]
    controller.handle_message(AddPatternsMessage(1, patterns))
    controller.policy_chains_changed(
        {"c": PolicyChain("c", ("ids",), chain_id=100)}
    )
    return controller


class TestStressMonitorSteering:
    def test_mitigate_anomalous_migrates_flows(self):
        from repro.core.mca2 import StressMonitor

        controller = build_stateful_controller()
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller)
        for index in range(6):
            instance.inspect(
                b"GET /index.html HTTP/1.1\r\n",
                chain_id=100,
                flow_key=f"flow-{index % 2}",
            )
        migrated = []
        monitor.on_flow_migrated = lambda flow, target: migrated.append(flow)
        action = monitor.mitigate_anomalous("dpi-1", ["flow-0", "flow-1"])
        assert action.dedicated_created
        assert set(action.migrated_flows) == {"flow-0", "flow-1"}
        assert set(migrated) == {"flow-0", "flow-1"}
        dedicated = controller.instances[action.dedicated_instance]
        for flow_key in action.migrated_flows:
            assert dedicated.export_flow(flow_key) is not None
        registry = controller.telemetry.registry
        assert (
            registry.value(
                "mca2_anomaly_mitigations_total", instance="dpi-1"
            )
            == 1
        )

    def test_mitigate_anomalous_skips_unknown_flows(self):
        from repro.core.mca2 import StressMonitor

        controller = build_stateful_controller()
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller)
        action = monitor.mitigate_anomalous("dpi-1", ["never-seen"])
        assert action.migrated_flows == ()


class TestLoadDriverEndToEnd:
    def test_detection_floor_on_seeded_mix(self):
        from repro.bench.anomaly import detection_quality

        quality = detection_quality(flows=150, epochs=6, seed=7)
        detection = quality["detection"]
        assert detection["true_anomalies"] > 0
        assert detection["precision"] >= 0.9
        assert detection["recall"] >= 0.9
        assert quality["reproducibility"]["digests_match"]

    def test_driver_summary_carries_anomaly_section(self):
        from repro.load.driver import LoadDriver
        from repro.load.profiles import LoadSpec

        spec = LoadSpec(profile_mix="web-flood", flows=60, epochs=3, seed=7)
        driver = LoadDriver(spec, anomaly=True)
        result = driver.run()
        section = result.summary()["anomaly"]
        assert section["tracked_flows"] > 0
        assert len(section["verdict_digest"]) == 64
        assert result.epochs[-1].to_dict()["anomalous_flows"] >= 0

        plain = LoadDriver(spec)
        assert plain.run().summary()["anomaly"] is None

    def test_flagged_flows_are_isolated_with_reason(self):
        from repro.anomaly import AnomalyClassifier
        from repro.load.driver import LoadDriver
        from repro.load.profiles import LoadSpec

        base = {"flows": 100, "epochs": 5, "seed": 7}
        calibration = LoadDriver(
            LoadSpec(profile_mix="benign-http", **base), anomaly=True
        )
        calibration.run()
        classifier = AnomalyClassifier(threshold=5.0, seed=7)
        classifier.fit(calibration.anomaly.features_map())

        driver = LoadDriver(
            LoadSpec(profile_mix="web-flood", **base),
            anomaly=True,
            anomaly_classifier=classifier,
            autoscale=True,
        )
        driver.run()
        events = driver.autoscaler.events
        isolations = [e for e in events if e.action == "isolate"]
        assert any("flagged anomalous" in e.reason for e in isolations)
        assert driver.autoscaler.pins
        # Pinned flows map to provisioned dedicated instances.
        for flow, instance in driver.autoscaler.pins.items():
            assert instance in driver.controller.instances


class TestAnomalyCli:
    def test_anomaly_text_and_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "anomaly.json"
        code = main(
            [
                "anomaly",
                "--flows", "60",
                "--epochs", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "classified" in text
        payload = json.loads(out.read_text())
        assert payload["scored_flows"] > 0
        assert len(payload["verdict_digest"]) == 64

        code = main(
            ["anomaly", "--flows", "60", "--epochs", "3", "--format", "json"]
        )
        assert code == 0
        streamed = json.loads(capsys.readouterr().out)
        assert streamed["verdict_digest"] == payload["verdict_digest"]

    def test_bench_anomaly_writes_schema_valid_report(
        self, tmp_path, capsys
    ):
        import json

        from repro.bench.anomaly import validate_anomaly_schema
        from repro.cli import main

        out = tmp_path / "BENCH_anomaly.json"
        code = main(
            [
                "bench-anomaly",
                "--flows", "120",
                "--epochs", "5",
                "--packets", "200",
                "--rounds", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert "meets floor" in capsys.readouterr().out
        results = json.loads(out.read_text())
        assert validate_anomaly_schema(results) == []
        assert results["detection"]["precision"] >= 0.9
        assert results["detection"]["recall"] >= 0.9
