"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.patterns import Pattern
from repro.workloads.patterns import generate_snort_like
from repro.workloads.traffic import TrafficGenerator

#: The paper's Figure 4 / Figure 7 example pattern sets.
PAPER_SET_0 = [b"E", b"BE", b"BD", b"BCD", b"BCAA", b"CDBCAB"]
PAPER_SET_1 = [b"EDAE", b"BE", b"CDBA", b"CBD"]


@pytest.fixture
def paper_pattern_sets():
    """``{middlebox id: [Pattern]}`` for the paper's running example."""
    return {
        0: [Pattern(i, data) for i, data in enumerate(PAPER_SET_0)],
        1: [Pattern(i, data) for i, data in enumerate(PAPER_SET_1)],
    }


@pytest.fixture(scope="session")
def snort_like_small():
    """A small Snort-like corpus, shared across the session for speed."""
    return generate_snort_like(count=300, seed=42)


@pytest.fixture(scope="session")
def http_trace(snort_like_small):
    """A small HTTP-like trace with some injected matches."""
    generator = TrafficGenerator(seed=5, style="http")
    return generator.trace(80, patterns=snort_like_small, match_rate=0.15)


def naive_find_all(patterns, text):
    """Oracle: all (end offset, pattern index) matches by brute force."""
    matches = []
    for index, pattern in enumerate(patterns):
        start = 0
        while True:
            found = text.find(pattern, start)
            if found == -1:
                break
            matches.append((found + len(pattern), index))
            start = found + 1
    return sorted(matches)
