"""Golden and structural tests for the CFG builder.

The goldens pin the exact block/edge shape (via ``CFG.describe()``) for
the control-flow forms the dataflow rules depend on: branches, loops
(including ``while True`` escape-only loops), ``try``/``except``,
``try``/``finally`` routing of abrupt jumps, and ``with``.  The
structural tests assert invariants that must hold for *any* function
body — every reachable non-exit block reaches an exit, protected
flags match try nesting, and building never crashes.
"""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg, function_cfgs


def cfg_of(source):
    function = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(function)


def describe(source):
    return cfg_of(source).describe()


# --- golden shapes ----------------------------------------------------------

def test_golden_if_else_merge():
    assert describe(
        """
        def f(x):
            a = 1
            if x:
                b = 2
            else:
                c = 3
            return a
        """
    ) == (
        "B0[entry]() -> next:B3\n"
        "B3(Assign,If) -> true:B5 false:B6\n"
        "B5(Assign) -> next:B4\n"
        "B4(Return) -> return:B1\n"
        "B1[exit]() ->\n"
        "B6(Assign) -> next:B4"
    )


def test_golden_for_loop_with_break():
    assert describe(
        """
        def f(items):
            total = 0
            for item in items:
                if item < 0:
                    break
                total += item
            return total
        """
    ) == (
        "B0[entry]() -> next:B3\n"
        "B3(Assign) -> next:B4\n"
        "B4(For) -> true:B6 false:B5\n"
        "B6(If) -> true:B8 false:B7\n"
        "B8(Break) -> break:B5\n"
        "B5(Return) -> return:B1\n"
        "B1[exit]() ->\n"
        "B7(AugAssign) -> loop:B4"
    )


def test_golden_while_true_has_no_false_edge():
    assert describe(
        """
        def f(q):
            while True:
                m = q.get()
                if m is None:
                    return m
        """
    ) == (
        "B0[entry]() -> next:B3\n"
        "B3() -> next:B4\n"
        "B4(While) -> true:B6\n"
        "B6(Assign,If) -> true:B8 false:B7\n"
        "B8(Return) -> return:B1\n"
        "B1[exit]() ->\n"
        "B7() -> loop:B4"
    )


def test_golden_try_finally_routes_return_and_raise():
    assert describe(
        """
        def f(path):
            fh = open(path)
            try:
                data = fh.read()
                return data
            finally:
                fh.close()
        """
    ) == (
        "B0[entry]() -> next:B3\n"
        "B3(Assign,Try) -> next:B6\n"
        "B6(Assign,Return) protected -> finally:B5 except:B5\n"
        "B5(Expr) -> return:B1 raise:B2\n"
        "B1[exit]() ->\n"
        "B2[raise]() ->"
    )


def test_golden_try_except_merges_handler():
    assert describe(
        """
        def f(x):
            try:
                y = risky(x)
            except ValueError:
                y = None
            return y
        """
    ) == (
        "B0[entry]() -> next:B3\n"
        "B3(Try) -> next:B5\n"
        "B5(Assign) protected -> except:B6 next:B4\n"
        "B6(ExceptHandler,Assign) -> next:B4\n"
        "B4(Return) -> return:B1\n"
        "B1[exit]() ->"
    )


def test_golden_with_is_linear():
    assert describe(
        """
        def f(path):
            with open(path) as fh:
                return fh.read()
        """
    ) == (
        "B0[entry]() -> next:B3\n"
        "B3(With) -> next:B4\n"
        "B4(Return) -> return:B1\n"
        "B1[exit]() ->"
    )


# --- structural invariants --------------------------------------------------

def edge_kinds(cfg):
    return {edge.kind for block in cfg.blocks for edge in block.edges}


def test_raise_reaches_raise_exit():
    cfg = cfg_of(
        """
        def f(x):
            if x:
                raise ValueError(x)
            return x
        """
    )
    raise_preds = [
        block
        for block in cfg.blocks
        for edge in block.edges
        if edge.dest is cfg.raise_exit
    ]
    assert raise_preds, "raise statement must reach raise_exit"


def test_continue_routes_through_inner_finally_only():
    cfg = cfg_of(
        """
        def f(items):
            opened = acquire()
            for item in items:
                try:
                    if item:
                        continue
                    use(item)
                finally:
                    note(item)
            opened.close()
        """
    )
    assert "continue" in edge_kinds(cfg)
    assert "finally" in edge_kinds(cfg)


def test_protected_marks_try_bodies_not_handlers():
    cfg = cfg_of(
        """
        def f():
            before = 1
            try:
                inside = 2
            except Exception:
                handled = 3
            after = 4
        """
    )
    by_stmt = {}
    for block in cfg.blocks:
        for statement in block.statements:
            for node in ast.walk(statement):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    by_stmt[node.id] = block.protected
    assert by_stmt == {
        "before": False,
        "inside": True,
        "handled": False,
        "after": False,
    }


def test_unreachable_code_is_parked_without_predecessors():
    cfg = cfg_of(
        """
        def f():
            return 1
            dead = 2
        """
    )
    reachable = {block.id for block in cfg.reachable_blocks()}
    dead_blocks = [
        block
        for block in cfg.blocks
        if block.statements and block.id not in reachable
    ]
    assert len(dead_blocks) == 1
    assert isinstance(dead_blocks[0].statements[0], ast.Assign)


@pytest.mark.parametrize(
    "source",
    [
        "def f():\n    pass\n",
        "def f():\n    while True:\n        break\n",
        "def f():\n    for i in x:\n        continue\n    else:\n        y = 1\n",
        "def f():\n    try:\n        a = 1\n    except A:\n        b = 2\n"
        "    except B:\n        c = 3\n    else:\n        d = 4\n"
        "    finally:\n        e = 5\n",
        "def f():\n    with a, b:\n        with c:\n            return d\n",
        "async def f():\n    async for i in x:\n        pass\n"
        "    async with y:\n        pass\n",
    ],
)
def test_every_reachable_block_flows_to_an_exit(source):
    cfg = cfg_of(source)
    exits = {cfg.exit.id, cfg.raise_exit.id}
    for block in cfg.reachable_blocks():
        if block.id in exits:
            continue
        # BFS: some exit must be reachable from every live block.
        seen, frontier = set(), [block]
        found = False
        while frontier and not found:
            node = frontier.pop()
            if node.id in exits:
                found = True
                break
            if node.id in seen:
                continue
            seen.add(node.id)
            frontier.extend(edge.dest for edge in node.edges)
        assert found, f"block B{block.id} cannot reach any exit"


def test_function_cfgs_builds_dotted_qualnames():
    tree = ast.parse(
        textwrap.dedent(
            """
            def top():
                def inner():
                    pass
            class Box:
                def method(self):
                    pass
            """
        )
    )
    cfgs = function_cfgs(tree)
    assert sorted(cfgs) == ["Box.method", "top", "top.inner"]
    assert cfgs["Box.method"].qualname == "Box.method"
