"""The forward dataflow engine: unit fixtures plus Hypothesis sweeps.

The unit tests drive a tiny assign/kill client through branch, loop and
exception shapes and check the fixpoint states at the exits.  The
Hypothesis tests generate random (but well-formed) function bodies full
of acquisitions, releases and control flow, then assert the resource
analysis neither crashes nor loses track: every acquisition in the
generated program is either released on all paths or reported by RES001.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    EMPTY_STATE,
    TransferClient,
    join_states,
    run_forward,
)
from repro.analysis.engine import lint_source


def cfg_of(source):
    return build_cfg(ast.parse(textwrap.dedent(source)).body[0])


class AssignTracker(TransferClient):
    """Toy client: records which names *may* have been assigned."""

    def transfer(self, statement, state):
        if isinstance(statement, ast.Assign):
            updated = dict(state)
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    updated[target.id] = frozenset(
                        (f"line{statement.lineno}",)
                    )
            return updated
        return state


def exit_state(source):
    cfg = cfg_of(source)
    states = run_forward(cfg, AssignTracker())
    return states.get(cfg.exit.id, EMPTY_STATE)


# --- joins and basic propagation --------------------------------------------

def test_join_states_unions_per_key():
    left = {"a": frozenset({"x"}), "b": frozenset({"y"})}
    right = {"b": frozenset({"z"})}
    joined = join_states(left, right)
    assert joined["a"] == {"x"}
    assert joined["b"] == {"y", "z"}
    assert join_states({}, right) == right
    assert join_states(left, {}) == left


def test_straight_line_propagation():
    state = exit_state(
        """
        def f():
            a = 1
            b = 2
        """
    )
    assert set(state) == {"a", "b"}


def test_branches_join_at_the_merge_point():
    state = exit_state(
        """
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            b = 3
        """
    )
    # Both branch facts survive the join (may-analysis).
    assert state["a"] == {"line4", "line6"}
    assert state["b"] == {"line7"}


def test_loop_reaches_fixpoint_with_carried_facts():
    state = exit_state(
        """
        def f(items):
            a = 1
            for i in items:
                a = 2
        """
    )
    assert state["a"] == {"line3", "line5"}


def test_except_edge_carries_intermediate_states():
    source = """
        def f(x):
            try:
                a = 1
                b = 2
            except Exception:
                c = 3
            return a
        """
    cfg = cfg_of(source)
    states = run_forward(cfg, AssignTracker())
    handler_entry = next(
        states[block.id]
        for block in cfg.blocks
        if block.statements
        and isinstance(block.statements[0], ast.ExceptHandler)
    )
    # The exception may fire before OR after `b = 2`: the handler must
    # see `a` assigned but `b` only possibly assigned — i.e. both appear
    # because the except edge joins every intermediate state.
    assert "a" in handler_entry and "b" in handler_entry


def test_non_convergence_guard_raises():
    class Hostile(TransferClient):
        def __init__(self):
            self.n = 0

        def transfer(self, statement, state):
            self.n += 1  # never stabilizes: a fresh fact every visit
            return {"x": frozenset((f"v{self.n}",))}

    cfg = cfg_of(
        """
        def f(items):
            for i in items:
                a = 1
        """
    )
    try:
        run_forward(cfg, Hostile(), max_iterations=50)
    except RuntimeError as error:
        assert "converge" in str(error)
    else:  # pragma: no cover - the guard must fire
        raise AssertionError("expected the non-convergence guard")


# --- Hypothesis: generated function bodies ----------------------------------

SIM_PATH = "repro/net/fake.py"

_release = st.sampled_from(["close", "unlink", "join", "shutdown"])

_plain_lines = st.sampled_from(
    [
        "x = x + 1",
        "log(x)",
        "if x:\n{i}    x = x - 1",
        "for _ in range(3):\n{i}    x = x + 2",
        "while x > 9:\n{i}    x = x - 9",
    ]
)


@st.composite
def function_sources(draw):
    """A function mixing acquisitions, releases and control flow.

    Returns ``(source, n_acquired, released_indices)`` where releases
    always follow their acquisition in straight line (so released
    resources are provably clean on every normal path).
    """
    lines = ["def f(x, log):"]
    body = []
    n_resources = draw(st.integers(min_value=0, max_value=3))
    released = []
    for index in range(n_resources):
        release = draw(st.booleans())
        body.append(f"r{index} = multiprocessing.Queue()")
        filler = draw(st.lists(_plain_lines, max_size=2))
        body.extend(filler)
        if release:
            verb = draw(_release)
            body.append(f"r{index}.{verb}()")
            released.append(index)
        body.extend(draw(st.lists(_plain_lines, max_size=1)))
    if not body:
        body = ["pass"]
    indent = "    "
    rendered = []
    for line in body:
        rendered.append(indent + line.format(i=indent))
    source = "import multiprocessing\n" + "\n".join(lines + rendered) + "\n"
    return source, n_resources, released


@settings(max_examples=60, deadline=None)
@given(function_sources())
def test_generated_bodies_never_crash_and_account_for_every_acquisition(case):
    source, acquired, released_indices = case
    findings = lint_source(source, path=SIM_PATH)
    res001 = [f for f in findings if f.code == "RES001"]
    mentioned = " ".join(f.message for f in res001)
    # Soundness: every acquisition with no release anywhere must be
    # flagged.  (A *released* resource may still draw a window finding —
    # a call between acquire and release outside try/finally is a real
    # raise-path leak — so only the unreleased set is asserted exactly.)
    for index in range(acquired):
        if index not in released_indices:
            assert f"'r{index}'" in mentioned, (
                f"unreleased r{index} not flagged for:\n{source}"
            )
    # At most one finding per resource, and none for phantom names.
    assert len(res001) <= acquired, f"over-reporting for:\n{source}"
    for finding in res001:
        assert any(f"'r{i}'" in finding.message for i in range(acquired))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            [
                "pass",
                "x = 1",
                "return x",
                "raise ValueError(x)",
                "if x:\n        x = 2",
                "while x:\n        break",
                "for i in (1, 2):\n        continue",
                "try:\n        x = 3\n    except Exception:\n        x = 4",
                "try:\n        x = 5\n    finally:\n        x = 6",
                "with log:\n        x = 7",
            ]
        ),
        min_size=1,
        max_size=6,
    )
)
def test_arbitrary_statement_mixes_build_and_analyze(statements):
    body = "\n    ".join(statements)
    source = f"def f(x, log):\n    {body}\n"
    tree = ast.parse(source)  # generated source must itself be valid
    cfg = build_cfg(tree.body[0])
    states = run_forward(cfg, AssignTracker())
    assert cfg.entry.id in states
    # And the full rule stack runs without crashing on it.
    lint_source(source, path=SIM_PATH)
