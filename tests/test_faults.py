"""Tests for the fault-injection and recovery subsystem (repro.faults).

Covers the plan format, the impairable control channel, the injector, the
heartbeat/failover recovery machinery and its edge cases, plus the net-
layer fault plumbing it relies on (event cancellation, link admin state,
TSA re-steering).
"""

import pytest

from repro.faults import (
    ControlChannel,
    FailoverCoordinator,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    HeartbeatConfig,
    HeartbeatMonitor,
    RetryPolicy,
)
from repro.net.simulator import Simulator
from repro.telemetry.scenario import build_figure5_system


def plan_of(*specs, seed=0):
    return FaultPlan.of(list(specs), seed=seed)


class TestFaultPlan:
    def test_round_trips_through_json(self, tmp_path):
        plan = plan_of(
            FaultSpec(0.5, FaultKind.INSTANCE_CRASH, "dpi3"),
            FaultSpec(
                0.2, FaultKind.CONTROL_DROP, "control",
                duration=0.1, value=0.5,
            ),
            seed=42,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_specs_sorted_by_time(self):
        plan = plan_of(
            FaultSpec(0.9, FaultKind.LINK_UP, "a|b"),
            FaultSpec(0.1, FaultKind.LINK_DOWN, "a|b"),
        )
        assert [spec.at for spec in plan] == [0.1, 0.9]

    def test_targeting_filters(self):
        plan = plan_of(
            FaultSpec(0.1, FaultKind.INSTANCE_CRASH, "a"),
            FaultSpec(0.2, FaultKind.INSTANCE_CRASH, "b"),
        )
        assert [spec.target for spec in plan.targeting("a")] == ["a"]

    def test_rejects_malformed_documents(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("not json")
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"no_faults": []}')
        with pytest.raises(ValueError):
            FaultPlan.from_json('{"faults": [{"at": 1}]}')
        with pytest.raises(ValueError):
            FaultPlan.from_json(
                '{"faults": [{"at": 1, "kind": "nope", "target": "x"}]}'
            )

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            FaultSpec(-1.0, FaultKind.INSTANCE_CRASH, "x")
        with pytest.raises(ValueError):
            FaultSpec(1.0, FaultKind.CONTROL_DROP, "x", duration=-0.5)


class TestSimulatorCancel:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        sim.cancel(event)
        sim.run()
        assert fired == ["kept"]

    def test_cancel_is_idempotent_and_preserves_order(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("a"))
        sim.cancel(event)
        sim.cancel(event)
        sim.schedule(1.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["b", "c"]


class TestLinkAdminState:
    def _topology(self):
        from repro.net.topology import Topology

        topo = Topology()
        topo.add_switch("s1")
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("s1", "h1")
        topo.add_link("s1", "h2")
        return topo

    def test_link_between_finds_the_link(self):
        topo = self._topology()
        link = topo.link_between("s1", "h1")
        assert link is topo.link_between("h1", "s1")
        with pytest.raises(KeyError):
            topo.link_between("h1", "h2")

    def test_downed_link_refuses_new_sends(self):
        topo = self._topology()
        link = topo.link_between("s1", "h1")
        link.set_admin(False)
        packet = _packet()
        assert topo.hosts["h1"].send(packet) is False
        topo.run()
        assert topo.switches["s1"].stats.packets_received == 0

    def test_in_flight_packets_still_arrive(self):
        topo = self._topology()
        topo.hosts["h1"].send(_packet(dst_index=2))
        # Down the first-hop link after the packet is already on the wire.
        topo.link_between("s1", "h1").set_admin(False)
        topo.run()
        assert topo.switches["s1"].stats.packets_received == 1

    def test_link_recovers_after_admin_up(self):
        topo = self._topology()
        link = topo.link_between("s1", "h1")
        link.set_admin(False)
        assert topo.hosts["h1"].send(_packet()) is False
        link.set_admin(True)
        assert topo.hosts["h1"].send(_packet()) is True


def _packet(payload=b"x", src_index=1, dst_index=2):
    from repro.net.addresses import IPv4Address, MACAddress
    from repro.net.packet import make_tcp_packet

    return make_tcp_packet(
        MACAddress.from_index(src_index),
        MACAddress.from_index(dst_index),
        IPv4Address.from_index(src_index),
        IPv4Address.from_index(dst_index),
        1000, 80, payload=payload,
    )


class TestControlChannel:
    def test_successful_rpc_delivers_result(self):
        sim = Simulator()
        channel = ControlChannel(sim, latency=0.01, timeout=0.05)
        results = []
        channel.rpc("ping", lambda: "pong", on_success=results.append)
        sim.run()
        assert results == ["pong"]
        assert channel.rpcs_ok == 1
        # The reply cancelled the timeout: nothing retried or failed.
        assert channel.retries == 0 and channel.rpcs_failed == 0

    def test_instance_exception_retries_then_fails(self):
        sim = Simulator()
        channel = ControlChannel(
            sim,
            latency=0.01,
            timeout=0.05,
            retry_policy=RetryPolicy(base_delay=0.02, max_attempts=3),
        )
        failures = []

        def explode():
            raise RuntimeError("boom")

        channel.rpc("bad", explode, on_failure=failures.append)
        sim.run()
        assert len(failures) == 1
        assert isinstance(failures[0], RuntimeError)
        assert channel.retries == 2  # 3 attempts = 2 retries
        assert channel.rpcs_failed == 1

    def test_retry_backoff_is_exponential(self):
        sim = Simulator()
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_attempts=3)
        channel = ControlChannel(
            sim, latency=0.001, timeout=0.05, retry_policy=policy
        )
        attempt_times = []

        def failing():
            attempt_times.append(sim.now)
            raise RuntimeError("down")

        channel.rpc("hb", failing)
        sim.run()
        assert len(attempt_times) == 3
        gap1 = attempt_times[1] - attempt_times[0]
        gap2 = attempt_times[2] - attempt_times[1]
        assert gap2 == pytest.approx(2 * gap1, rel=0.01)

    def test_full_drop_window_times_out(self):
        sim = Simulator()
        channel = ControlChannel(
            sim,
            latency=0.01,
            timeout=0.05,
            retry_policy=RetryPolicy(base_delay=0.01, max_attempts=2),
            seed=1,
        )
        channel.impair(drop_probability=1.0)
        failures = []
        channel.rpc("hb", lambda: "pong", on_failure=failures.append)
        sim.run()
        assert len(failures) == 1
        assert isinstance(failures[0], TimeoutError)
        assert channel.messages_dropped >= 2

    def test_clear_impairments_restores_delivery(self):
        sim = Simulator()
        channel = ControlChannel(sim, latency=0.01, timeout=0.05, seed=1)
        channel.impair(drop_probability=1.0, extra_delay=0.5)
        channel.clear_impairments()
        results = []
        channel.rpc("ping", lambda: "pong", on_success=results.append)
        sim.run()
        assert results == ["pong"]

    def test_same_seed_same_drop_pattern(self):
        outcomes = []
        for _ in range(2):
            sim = Simulator()
            channel = ControlChannel(
                sim,
                latency=0.001,
                timeout=0.01,
                retry_policy=RetryPolicy(base_delay=0.01, max_attempts=1),
                seed=7,
            )
            channel.impair(drop_probability=0.5)
            oks = []
            for index in range(20):
                channel.rpc(f"r{index}", lambda: 1, on_success=oks.append)
            sim.run()
            outcomes.append((len(oks), channel.messages_dropped))
        assert outcomes[0] == outcomes[1]

    def test_impairment_validation(self):
        channel = ControlChannel(Simulator())
        with pytest.raises(ValueError):
            channel.impair(drop_probability=1.5)
        with pytest.raises(ValueError):
            channel.impair(extra_delay=-1.0)


class TestFaultInjector:
    def _system(self):
        system = build_figure5_system(extra_hosts={"standby": "s3"})
        return system

    def test_crash_and_restart_via_plan(self):
        system = self._system()
        injector = FaultInjector(
            system.topology.simulator,
            instances=system.dpi_controller.instances,
            telemetry=system.hub,
        )
        injector.arm(plan_of(
            FaultSpec(0.1, FaultKind.INSTANCE_CRASH, "dpi3"),
            FaultSpec(0.2, FaultKind.INSTANCE_RESTART, "dpi3"),
        ))
        system.topology.run(until=0.15)
        assert system.instance.alive is False
        system.topology.run()
        assert system.instance.alive is True
        kinds = [event.kind for event in system.hub.faults]
        assert kinds == ["instance_crash", "instance_restart"]

    def test_link_faults_resolve_endpoint_pairs(self):
        system = self._system()
        injector = FaultInjector(
            system.topology.simulator, topology=system.topology
        )
        injector.arm(plan_of(
            FaultSpec(0.1, FaultKind.LINK_DOWN, "s2|dpi3"),
            FaultSpec(0.2, FaultKind.LINK_UP, "s2|dpi3"),
        ))
        link = system.topology.link_between("s2", "dpi3")
        system.topology.run(until=0.15)
        assert link.admin_up is False
        system.topology.run()
        assert link.admin_up is True

    def test_control_window_clears_after_duration(self):
        sim = Simulator()
        channel = ControlChannel(sim)
        injector = FaultInjector(sim, control=channel)
        injector.arm(plan_of(
            FaultSpec(
                0.1, FaultKind.CONTROL_DROP, "control",
                duration=0.2, value=0.8,
            ),
        ))
        sim.run(until=0.15)
        assert channel.drop_probability == pytest.approx(0.8)
        sim.run()
        assert channel.drop_probability == 0.0

    def test_result_corrupt_window_toggles_function(self):
        system = self._system()
        injector = FaultInjector(
            system.topology.simulator,
            dpi_functions={"dpi3": system.dpi_function},
        )
        injector.arm(plan_of(
            FaultSpec(
                0.1, FaultKind.RESULT_CORRUPT, "dpi3", duration=0.1
            ),
        ))
        system.topology.run(until=0.15)
        assert system.dpi_function.corrupt_results is True
        system.topology.run()
        assert system.dpi_function.corrupt_results is False

    def test_unknown_targets_raise(self):
        system = self._system()
        injector = FaultInjector(
            system.topology.simulator,
            instances=system.dpi_controller.instances,
            topology=system.topology,
        )
        with pytest.raises(KeyError):
            injector.inject(FaultSpec(0.0, FaultKind.INSTANCE_CRASH, "ghost"))
        with pytest.raises(ValueError):
            injector.inject(FaultSpec(0.0, FaultKind.LINK_DOWN, "not-a-pair"))


def _recovery_rig(
    *,
    spare_hosts=(),
    heartbeat=None,
    control_kwargs=None,
):
    """The figure-5 system wired with heartbeat + failover, not yet run."""
    system = build_figure5_system(extra_hosts={"standby": "s3"})
    topo = system.topology
    control = ControlChannel(
        topo.simulator, latency=0.002, timeout=0.02,
        **(control_kwargs or {}),
    )
    coordinator = FailoverCoordinator(
        system.dpi_controller,
        system.tsa,
        topo,
        instance_hosts={"dpi3": "dpi3"},
        dpi_functions={"dpi3": system.dpi_function},
        middlebox_functions=system.middlebox_functions,
        spare_hosts=list(spare_hosts),
        telemetry=system.hub,
    )
    monitor = HeartbeatMonitor(
        topo.simulator,
        control,
        system.dpi_controller.instances,
        config=heartbeat or HeartbeatConfig(),
        telemetry=system.hub,
        on_instance_down=coordinator.handle_instance_down,
        on_instance_up=coordinator.handle_instance_up,
    )
    monitor.start()
    return system, control, coordinator, monitor


class TestHeartbeatEdgeCases:
    def test_crash_detected_within_timeout_plus_probe(self):
        system, _, coordinator, monitor = _recovery_rig(
            spare_hosts=["standby"]
        )
        sim = system.topology.simulator
        sim.schedule_at(0.2, system.instance.crash)
        sim.run(until=2.0)
        monitor.stop()
        sim.run()
        assert monitor.is_down("dpi3")
        record = coordinator.records["dpi3"]
        # Detection: one silence window plus one failed probe RPC cycle.
        config = monitor.config
        budget = config.timeout + config.interval + 4 * 0.02 + 0.1
        assert record.detected_at - 0.2 <= budget

    def test_link_flap_shorter_than_timeout_no_spurious_failover(self):
        # Control-plane impairment briefer than the heartbeat timeout:
        # probes fail for a moment but proof-of-life is recent, so the
        # monitor must not declare the instance down.
        system, control, coordinator, monitor = _recovery_rig(
            control_kwargs={"seed": 3},
        )
        sim = system.topology.simulator
        flap = monitor.config.timeout / 3
        sim.schedule_at(0.2, lambda: control.impair(drop_probability=1.0))
        sim.schedule_at(0.2 + flap, control.clear_impairments)
        sim.run(until=1.0)
        monitor.stop()
        sim.run()
        assert not monitor.is_down("dpi3")
        assert coordinator.records == {}

    def test_double_crash_during_backoff(self):
        # The replacement instance crashes while the first failover is
        # barely done: the coordinator must fail over again rather than
        # wedge on the half-recovered state.
        system, _, coordinator, monitor = _recovery_rig(
            spare_hosts=["standby"]
        )
        sim = system.topology.simulator
        sim.schedule_at(0.2, system.instance.crash)

        def crash_replacement():
            name = coordinator.records["dpi3"].replacement
            assert name is not None
            coordinator.controller.instances[name].crash()

        sim.schedule_at(0.6, crash_replacement)
        sim.run(until=3.0)
        monitor.stop()
        sim.run()
        replacement = coordinator.records["dpi3"].replacement
        assert monitor.is_down(replacement)
        second = coordinator.records[replacement]
        # No instance left anywhere: the second failover degrades.
        assert second.mode == "degrade"
        assert second.recovered_at is not None

    def test_crash_mid_migration_fails_cleanly(self):
        # A flow migration whose source dies mid-way must surface the
        # failure to the caller and leave the target untouched, while the
        # heartbeat still detects and recovers the dead instance.
        from repro.core.instance import InstanceUnavailableError

        system, _, coordinator, monitor = _recovery_rig(
            spare_hosts=["standby"]
        )
        controller = system.dpi_controller
        controller.instances.provision("dpi-extra")
        coordinator.instance_hosts["dpi-extra"] = "standby"
        sim = system.topology.simulator
        chain_id = sorted(system.instance.scanner.chain_map)[0]
        system.instance.inspect(b"some data", chain_id=chain_id, flow_key="f1")

        def migrate_during_crash():
            system.instance.crash()
            with pytest.raises(InstanceUnavailableError):
                controller.migrate_flow("f1", "dpi3", "dpi-extra")

        sim.schedule_at(0.2, migrate_during_crash)
        sim.run(until=2.0)
        monitor.stop()
        sim.run()
        assert controller.instances["dpi-extra"].export_flow("f1") is None
        assert monitor.is_down("dpi3")
        assert coordinator.records["dpi3"].recovered_at is not None

    def test_restart_reattaches_chains(self):
        system, _, coordinator, monitor = _recovery_rig(
            spare_hosts=["standby"]
        )
        sim = system.topology.simulator
        original_hops = {
            name: realized.hop_hosts
            for name, realized in system.tsa.realized.items()
        }
        sim.schedule_at(0.2, system.instance.crash)
        sim.schedule_at(1.0, system.instance.restart)
        sim.run(until=2.0)
        monitor.stop()
        sim.run()
        assert not monitor.is_down("dpi3")
        record = coordinator.records["dpi3"]
        assert record.reattached_at is not None
        for name, hops in original_hops.items():
            assert system.tsa.realized[name].hop_hosts == hops


class TestFailoverCoordinator:
    def test_prefers_surviving_shared_instance(self):
        system, _, coordinator, _ = _recovery_rig()
        controller = system.dpi_controller
        from repro.core.instance import DPIServiceFunction

        extra = controller.instances.provision("dpi-extra")
        function = DPIServiceFunction(extra)
        system.topology.hosts["standby"].set_function(function)
        coordinator.instance_hosts["dpi-extra"] = "standby"
        coordinator.dpi_functions["dpi-extra"] = function
        system.instance.crash()
        record = coordinator.handle_instance_down("dpi3")
        assert record.mode == "resteer"
        assert record.replacement == "dpi-extra"
        for chain_name in record.chains:
            assert (
                "standby" in system.tsa.realized[chain_name].hop_hosts
            )

    def test_never_selects_dedicated_instances(self):
        system, _, coordinator, _ = _recovery_rig()
        controller = system.dpi_controller
        from repro.core.instance import DPIServiceFunction

        dedicated = controller.instances.provision(
            "dpi-dedicated", dedicated=True
        )
        function = DPIServiceFunction(dedicated)
        system.topology.hosts["standby"].set_function(function)
        coordinator.instance_hosts["dpi-dedicated"] = "standby"
        coordinator.dpi_functions["dpi-dedicated"] = function
        system.instance.crash()
        record = coordinator.handle_instance_down("dpi3")
        # The only other instance is dedicated: recovery must degrade
        # rather than hijack (or decommission) the MCA² engine.
        assert record.mode == "degrade"
        assert "dpi-dedicated" in controller.instances
        assert controller.instances["dpi-dedicated"].alive

    def test_degrade_releases_buffered_packets(self):
        system, _, coordinator, _ = _recovery_rig()
        ids1 = system.middlebox_functions["ids1"]
        data = _packet(payload=b"held back")
        data.mark_matched()
        assert ids1.process(data) == []  # buffered awaiting its result
        system.instance.crash()
        record = coordinator.handle_instance_down("dpi3")
        assert record.mode == "degrade"
        assert ids1._pending_data == {}
        assert ids1.packets_rescanned >= 1

    def test_degraded_chain_drops_dpi_hop(self):
        system, _, coordinator, _ = _recovery_rig()
        system.instance.crash()
        coordinator.handle_instance_down("dpi3")
        for realized in system.tsa.realized.values():
            assert "dpi3" not in realized.hop_hosts
