"""Unit and property tests for the Thompson-NFA regex engine."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfa import MAX_COUNTED_REPEATS, RegexNFA, RegexSyntaxError


def re_match_ends(pattern: bytes, data: bytes) -> list[int]:
    """Oracle: every end offset where some non-empty match of *pattern*
    ends, computed with the stdlib engine."""
    compiled = re.compile(rb"(?:" + pattern + rb")\Z", re.DOTALL)
    ends = []
    for end in range(1, len(data) + 1):
        prefix = data[:end]
        # Try every start; a match ending at `end` exists iff the anchored
        # pattern matches some suffix of the prefix (non-empty).
        if any(
            compiled.match(prefix, start) for start in range(end)
        ):
            ends.append(end)
    return ends


class TestBasics:
    def test_plain_literal(self):
        nfa = RegexNFA(rb"abc")
        assert nfa.match_ends(b"xxabcyyabc") == [5, 10]

    def test_no_match(self):
        assert not RegexNFA(rb"abc").search(b"xyz")

    def test_dot(self):
        assert RegexNFA(rb"a.c").match_ends(b"abc azc") == [3, 7]

    def test_alternation(self):
        nfa = RegexNFA(rb"cat|dog")
        assert nfa.match_ends(b"cat dog") == [3, 7]

    def test_groups(self):
        nfa = RegexNFA(rb"a(bc)+d")
        assert nfa.search(b"abcbcd")
        assert not nfa.search(b"ad")

    def test_non_capturing_group(self):
        assert RegexNFA(rb"(?:ab)+").search(b"abab")

    def test_named_group(self):
        assert RegexNFA(rb"(?P<name>ab)c").search(b"abc")

    def test_classes(self):
        nfa = RegexNFA(rb"[abc]x")
        assert nfa.match_ends(b"ax bx cx dx") == [2, 5, 8]

    def test_class_range(self):
        assert RegexNFA(rb"[a-f]+z").search(b"deadbeefz")

    def test_negated_class(self):
        nfa = RegexNFA(rb"a[^0-9]b")
        assert nfa.search(b"axb")
        assert not nfa.search(b"a5b")

    def test_escape_classes(self):
        assert RegexNFA(rb"\d{3}").search(b"abc123")
        assert RegexNFA(rb"\s\w").search(b"a b")
        assert not RegexNFA(rb"\d").search(b"abc")

    def test_hex_escape(self):
        assert RegexNFA(rb"\x00\xff").search(b"a\x00\xffb")

    def test_quantifiers(self):
        assert RegexNFA(rb"ab?c").match_ends(b"ac abc") == [2, 6]
        assert RegexNFA(rb"ab*c").search(b"abbbbc")
        assert RegexNFA(rb"ab+c").search(b"abc")
        assert not RegexNFA(rb"ab+c").search(b"ac")

    def test_counted_repeats(self):
        nfa = RegexNFA(rb"a{3}")
        assert nfa.match_ends(b"aaaa") == [3, 4]
        assert RegexNFA(rb"a{2,4}b").search(b"aaab")
        assert not RegexNFA(rb"a{2,4}b").search(b"ab")
        assert RegexNFA(rb"a{2,}b").search(b"aaaaaab")

    def test_lazy_quantifiers_same_ends(self):
        greedy = RegexNFA(rb"a.+b")
        lazy = RegexNFA(rb"a.+?b")
        data = b"a12b34b"
        assert greedy.match_ends(data) == lazy.match_ends(data)

    def test_overlapping_matches_all_reported(self):
        # Every end with *some* match ending there is reported.
        assert RegexNFA(rb"aa").match_ends(b"aaaa") == [2, 3, 4]

    def test_paper_example(self):
        nfa = RegexNFA(rb"regular\s*expression\s*\d+")
        assert nfa.search(b"regular  expression 42")
        # All-ends semantics: every extra digit extends a match
        # ("...4" ends at 20, "...42" at 21).
        assert nfa.match_ends(b"regular expression 42") == [20, 21]


class TestErrors:
    CASES = [
        rb"(unclosed",
        rb"closed)",
        rb"*dangling",
        rb"x{3,1}",
        rb"x{bad}",
        rb"x{",
        rb"[unclosed",
        rb"[z-a]",
        rb"(?=lookahead)x",
        rb"(a)\1",
        rb"^anchored",
        rb"tail$",
        rb"\bboundary",
        rb"a**",  # quantifier on quantifier... actually a* then * dangles
    ]

    @pytest.mark.parametrize("pattern", CASES)
    def test_rejected(self, pattern):
        with pytest.raises(RegexSyntaxError):
            RegexNFA(pattern)

    def test_empty_matching_pattern_rejected(self):
        with pytest.raises(RegexSyntaxError, match="empty string"):
            RegexNFA(rb"a*")

    def test_repeat_cap(self):
        with pytest.raises(RegexSyntaxError):
            RegexNFA(b"a{%d}" % (MAX_COUNTED_REPEATS + 1))

    def test_str_pattern_accepted(self):
        assert RegexNFA("abc").search(b"abc")


class TestAgainstStdlibOracle:
    CASES = [
        (rb"ab+c", b"xabcabbbc"),
        (rb"a(b|c)d", b"abd acd aed"),
        (rb"[0-9]{2}", b"year 2014!"),
        (rb"x.?y", b"xy xay xaay"),
        (rb"(ab|ba)+", b"ababba"),
        (rb"\w+@\w+", b"mail bob@example now"),
    ]

    @pytest.mark.parametrize("pattern,data", CASES)
    def test_all_ends_match_oracle(self, pattern, data):
        assert RegexNFA(pattern).match_ends(data) == re_match_ends(pattern, data)


# Random expressions over a tiny grammar, checked against the oracle.
_atom = st.sampled_from([b"a", b"b", b"c", b".", b"[ab]", b"[^a]", b"\\d"])
_quant = st.sampled_from([b"", b"?", b"*", b"+", b"{2}", b"{1,2}"])


@st.composite
def random_regex(draw):
    pieces = []
    for _ in range(draw(st.integers(1, 4))):
        atom = draw(_atom)
        quantifier = draw(_quant)
        pieces.append(atom + quantifier)
    pattern = b"".join(pieces)
    if draw(st.booleans()):
        other = b"".join(draw(_atom) for _ in range(draw(st.integers(1, 3))))
        pattern = pattern + b"|" + other
    return pattern


@given(
    pattern=random_regex(),
    data=st.binary(min_size=0, max_size=25).map(
        lambda raw: bytes(b % 4 + 0x61 for b in raw)  # a-d plus digits? a..d
    ),
)
@settings(max_examples=200, deadline=None)
def test_random_expressions_match_oracle(pattern, data):
    try:
        nfa = RegexNFA(pattern)
    except RegexSyntaxError:
        return  # e.g. the expression matches the empty string
    assert nfa.match_ends(data) == re_match_ends(pattern, data)
