"""Unit tests for flow tables, matches, actions and the switch."""

import pytest

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.links import Link
from repro.net.openflow import (
    ActionType,
    FlowAction,
    FlowEntry,
    FlowMatch,
    FlowTable,
)
from repro.net.packet import VlanTag, make_tcp_packet
from repro.net.simulator import Simulator
from repro.net.switch import Switch


def make_packet(payload=b"x", dst_index=1, dst_port=80):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(dst_index),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1234,
        dst_port,
        payload=payload,
    )


class TestFlowMatch:
    def test_wildcard_matches_everything(self):
        assert FlowMatch().matches(make_packet(), in_port=3)

    def test_in_port(self):
        match = FlowMatch(in_port=2)
        assert match.matches(make_packet(), 2)
        assert not match.matches(make_packet(), 3)

    def test_eth_fields(self):
        packet = make_packet()
        assert FlowMatch(eth_src=packet.eth.src).matches(packet, 1)
        assert not FlowMatch(eth_dst=MACAddress.from_index(9)).matches(packet, 1)

    def test_vlan_vid(self):
        packet = make_packet()
        assert FlowMatch(vlan_vid=FlowMatch.NO_VLAN).matches(packet, 1)
        assert not FlowMatch(vlan_vid=10).matches(packet, 1)
        packet.push_vlan(VlanTag(vid=10))
        assert FlowMatch(vlan_vid=10).matches(packet, 1)
        assert not FlowMatch(vlan_vid=FlowMatch.NO_VLAN).matches(packet, 1)

    def test_outer_vlan_matched(self):
        packet = make_packet()
        packet.push_vlan(VlanTag(vid=10))
        packet.push_vlan(VlanTag(vid=20))
        assert FlowMatch(vlan_vid=20).matches(packet, 1)
        assert not FlowMatch(vlan_vid=10).matches(packet, 1)

    def test_l3_l4_fields(self):
        packet = make_packet(dst_port=443)
        assert FlowMatch(
            ip_src=IPv4Address("10.0.0.1"), dst_port=443, ip_proto=6
        ).matches(packet, 1)
        assert not FlowMatch(dst_port=80).matches(packet, 1)

    def test_specificity(self):
        assert FlowMatch().specificity() == 0
        assert FlowMatch(in_port=1, vlan_vid=10).specificity() == 2


class TestFlowActions:
    def test_push_and_set_vlan(self):
        packet = make_packet()
        FlowAction.push_vlan(100).apply(packet)
        assert packet.outer_vlan.vid == 100
        FlowAction.set_vlan_vid(200).apply(packet)
        assert packet.outer_vlan.vid == 200

    def test_set_vlan_on_untagged_raises(self):
        with pytest.raises(ValueError):
            FlowAction.set_vlan_vid(5).apply(make_packet())

    def test_pop_vlan(self):
        packet = make_packet()
        packet.push_vlan(VlanTag(vid=1))
        FlowAction.pop_vlan().apply(packet)
        assert packet.outer_vlan is None

    def test_mpls_actions(self):
        packet = make_packet()
        FlowAction.push_mpls(7).apply(packet)
        assert packet.outer_mpls.label == 7
        FlowAction.pop_mpls().apply(packet)
        assert packet.outer_mpls is None


class TestFlowTable:
    def test_priority_order(self):
        table = FlowTable()
        low = FlowEntry(FlowMatch(), [FlowAction.drop()], priority=1)
        high = FlowEntry(FlowMatch(), [FlowAction.output(1)], priority=10)
        table.install(low)
        table.install(high)
        hit = table.lookup(make_packet(), 1)
        assert hit is high

    def test_equal_priority_first_installed_wins(self):
        table = FlowTable()
        first = FlowEntry(FlowMatch(), [FlowAction.output(1)], priority=5)
        second = FlowEntry(FlowMatch(), [FlowAction.output(2)], priority=5)
        table.install(first)
        table.install(second)
        assert table.lookup(make_packet(), 1) is first

    def test_miss_returns_none(self):
        table = FlowTable()
        table.install(FlowEntry(FlowMatch(in_port=9), [FlowAction.drop()]))
        assert table.lookup(make_packet(), 1) is None

    def test_counters_updated(self):
        table = FlowTable()
        entry = table.install(FlowEntry(FlowMatch(), [FlowAction.drop()]))
        packet = make_packet()
        table.lookup(packet, 1)
        assert entry.packets_matched == 1
        assert entry.bytes_matched == packet.wire_length

    def test_remove_by_id(self):
        table = FlowTable()
        entry = table.install(FlowEntry(FlowMatch(), [FlowAction.drop()]))
        assert table.remove(entry.entry_id)
        assert not table.remove(entry.entry_id)
        assert len(table) == 0

    def test_remove_matching(self):
        table = FlowTable()
        table.install(FlowEntry(FlowMatch(), [], priority=1))
        table.install(FlowEntry(FlowMatch(), [], priority=2))
        removed = table.remove_matching(lambda e: e.priority == 1)
        assert removed == 1 and len(table) == 1


class _HostStub:
    def __init__(self):
        self.received = []

    def receive(self, packet, port):
        self.received.append(packet)

    def attach_link(self, port, link):
        pass


def wire(sim, switch, port, node):
    link = Link(sim)
    switch.attach_link(port, link)
    link.attach(switch, port, node, 1)
    return link


class TestSwitch:
    def test_forwarding(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a, b = _HostStub(), _HostStub()
        link_a = wire(sim, switch, 1, a)
        wire(sim, switch, 2, b)
        switch.flow_mod(
            FlowEntry(FlowMatch(in_port=1), [FlowAction.output(2)], priority=1)
        )
        link_a.send_from(a, make_packet())
        sim.run()
        assert len(b.received) == 1
        assert switch.stats.packets_forwarded == 1

    def test_miss_without_controller_drops(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a = _HostStub()
        link = wire(sim, switch, 1, a)
        link.send_from(a, make_packet())
        sim.run()
        assert switch.stats.table_misses == 1
        assert switch.stats.packets_dropped == 1

    def test_flood_excludes_in_port(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a, b, c = _HostStub(), _HostStub(), _HostStub()
        link_a = wire(sim, switch, 1, a)
        wire(sim, switch, 2, b)
        wire(sim, switch, 3, c)
        switch.flow_mod(FlowEntry(FlowMatch(), [FlowAction.flood()]))
        link_a.send_from(a, make_packet())
        sim.run()
        assert len(a.received) == 0
        assert len(b.received) == 1 and len(c.received) == 1

    def test_header_rewrite_then_output(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a, b = _HostStub(), _HostStub()
        link_a = wire(sim, switch, 1, a)
        wire(sim, switch, 2, b)
        switch.flow_mod(
            FlowEntry(
                FlowMatch(in_port=1),
                [FlowAction.push_vlan(42), FlowAction.output(2)],
            )
        )
        link_a.send_from(a, make_packet())
        sim.run()
        assert b.received[0].outer_vlan.vid == 42

    def test_drop_action(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a = _HostStub()
        link = wire(sim, switch, 1, a)
        switch.flow_mod(FlowEntry(FlowMatch(), [FlowAction.drop()]))
        link.send_from(a, make_packet())
        sim.run()
        assert switch.stats.packets_dropped == 1

    def test_output_to_missing_port_drops(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a = _HostStub()
        link = wire(sim, switch, 1, a)
        switch.flow_mod(FlowEntry(FlowMatch(), [FlowAction.output(99)]))
        link.send_from(a, make_packet())
        sim.run()
        assert switch.stats.packets_dropped == 1

    def test_duplicate_port_rejected(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        wire(sim, switch, 1, _HostStub())
        with pytest.raises(ValueError):
            switch.attach_link(1, Link(sim))

    def test_packet_in_to_controller(self):
        sim = Simulator()
        switch = Switch(sim, "s1")
        a = _HostStub()
        link = wire(sim, switch, 1, a)
        events = []

        class ControllerStub:
            def packet_in(self, sw, packet, in_port):
                events.append((sw.name, packet.packet_id, in_port))

        switch.set_controller(ControllerStub())
        packet = make_packet()
        link.send_from(a, packet)
        sim.run()
        assert events == [("s1", packet.packet_id, 1)]

    def test_forwarded_copies_are_independent(self):
        """Flooded copies must not share mutable tag stacks."""
        sim = Simulator()
        switch = Switch(sim, "s1")
        a, b, c = _HostStub(), _HostStub(), _HostStub()
        link_a = wire(sim, switch, 1, a)
        wire(sim, switch, 2, b)
        wire(sim, switch, 3, c)
        switch.flow_mod(FlowEntry(FlowMatch(), [FlowAction.flood()]))
        link_a.send_from(a, make_packet())
        sim.run()
        b.received[0].push_vlan(VlanTag(vid=5))
        assert c.received[0].outer_vlan is None
