"""Unit tests for hosts and network functions."""

import pytest

from repro.net.host import Host, NetworkFunction, RecordingFunction
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.links import Link
from repro.net.packet import make_tcp_packet
from repro.net.simulator import Simulator


def make_host(simulator, index=0, function=None):
    return Host(
        simulator,
        f"h{index}",
        mac=MACAddress.from_index(index),
        ip=IPv4Address.from_index(index),
        function=function,
    )


def wire(simulator, host_a, host_b):
    link = Link(simulator)
    host_a.attach_link(1, link)
    host_b.attach_link(1, link)
    link.attach(host_a, 1, host_b, 1)
    return link


def make_packet(src, dst, payload=b"ping"):
    return make_tcp_packet(
        src.mac, dst.mac, src.ip, dst.ip, 1000, 2000, payload=payload
    )


class TestHostBasics:
    def test_default_function_records(self):
        sim = Simulator()
        a, b = make_host(sim, 0), make_host(sim, 1)
        wire(sim, a, b)
        a.send(make_packet(a, b))
        sim.run()
        assert len(b.received_packets) == 1
        assert b.stats.packets_received == 1
        assert a.stats.packets_sent == 1

    def test_send_without_link_raises(self):
        sim = Simulator()
        a = make_host(sim, 0)
        with pytest.raises(RuntimeError):
            a.send(make_packet(a, a))

    def test_second_link_rejected(self):
        sim = Simulator()
        a, b = make_host(sim, 0), make_host(sim, 1)
        wire(sim, a, b)
        with pytest.raises(ValueError):
            a.attach_link(2, Link(sim))

    def test_byte_counters(self):
        sim = Simulator()
        a, b = make_host(sim, 0), make_host(sim, 1)
        wire(sim, a, b)
        packet = make_packet(a, b, payload=b"x" * 100)
        a.send(packet)
        sim.run()
        assert a.stats.bytes_sent == packet.wire_length
        assert b.stats.bytes_received == packet.wire_length

    def test_received_packets_requires_recorder(self):
        class Forwarder(NetworkFunction):
            def process(self, packet):
                return []

        sim = Simulator()
        host = make_host(sim, 0, function=Forwarder())
        with pytest.raises(TypeError):
            host.received_packets


class TestFunctionBehaviour:
    def test_function_responses_are_sent(self):
        class Echo(NetworkFunction):
            def process(self, packet):
                reply = make_tcp_packet(
                    packet.eth.dst, packet.eth.src,
                    packet.ip.dst, packet.ip.src,
                    packet.l4.dst_port, packet.l4.src_port,
                    payload=b"echo:" + packet.payload,
                )
                return [reply]

        sim = Simulator()
        a = make_host(sim, 0)
        b = make_host(sim, 1, function=Echo())
        wire(sim, a, b)
        a.send(make_packet(a, b, payload=b"hello"))
        sim.run()
        assert len(a.received_packets) == 1
        assert a.received_packets[0].payload == b"echo:hello"

    def test_set_function_rebinds(self):
        sim = Simulator()
        a, b = make_host(sim, 0), make_host(sim, 1)
        wire(sim, a, b)
        replacement = RecordingFunction()
        b.set_function(replacement)
        assert replacement.host is b
        a.send(make_packet(a, b))
        sim.run()
        assert len(replacement.received) == 1

    def test_multiple_responses_preserve_order(self):
        class Duplicator(NetworkFunction):
            def process(self, packet):
                clone = packet.copy()
                return [packet, clone]

        sim = Simulator()
        a = make_host(sim, 0)
        middle = make_host(sim, 1, function=Duplicator())
        wire(sim, a, middle)
        a.send(make_packet(a, middle))
        sim.run()
        assert middle.stats.packets_sent == 2
