"""Instance churn under load: provision/decommission must not leak.

The elastic autoscaler cycles instances far more aggressively than the
static topologies earlier tests exercise, so this suite hammers the
:class:`~repro.core.lifecycle.InstanceManager` facade directly: repeated
provision/decommission rounds (including zero-copy sharded instances that
own ``/dev/shm`` arenas and worker processes) while traffic keeps
flowing, asserting that no instance object, registry label, shared-memory
segment, or child process outlives its decommission.
"""

import glob
import multiprocessing
import os

import pytest

from repro.core.zerocopy import ARENA_NAME_PREFIX
from repro.load.driver import build_load_controller
from repro.load.generator import LoadGenerator
from repro.load.profiles import LoadSpec
from repro.telemetry import TelemetryHub


def shm_segments() -> list:
    """Live /dev/shm arenas created by this process (pid-scoped names)."""
    return glob.glob(f"/dev/shm/{ARENA_NAME_PREFIX}_{os.getpid()}_*")


def fresh_controller():
    return build_load_controller(telemetry=TelemetryHub(tracing=False))


def traffic(flows=200, epochs=1, seed=5):
    """A deterministic batch of (flow_id, chain_id, payload) work items."""
    generator = LoadGenerator(
        LoadSpec(flows=flows, epochs=epochs, seed=seed,
                 max_packets_per_epoch=400)
    )
    return [batch.items for batch in generator.batches()]


ZEROCOPY_KWARGS = dict(
    kernel="sharded",
    shards=2,
    shard_backend="zerocopy",
    shard_workers=1,
)


class TestFlatChurn:
    def test_repeated_cycles_leave_no_trace(self):
        controller = fresh_controller()
        registry = controller.telemetry.registry
        batches = traffic()
        for round_number in range(8):
            name = f"churn-{round_number}"
            instance = controller.instances.provision(name, kernel="flat")
            for flow_id, chain_id, payload, _ in batches[0]:
                instance.inspect(payload, chain_id=chain_id, flow_key=flow_id)
            registry.counter(
                "load_packets_total", instance=name
            ).inc(len(batches[0]))
            controller.instances.decommission(name)
            assert name not in controller.instances
            # Every label variant carrying this instance's name is gone.
            for metric in registry.collect():
                assert metric.labels.get("instance") != name
        assert sorted(controller.instances) == []

    def test_interleaved_pool_never_cross_contaminates(self):
        controller = fresh_controller()
        batches = traffic()
        survivors = []
        for round_number in range(6):
            name = f"pool-{round_number}"
            controller.instances.provision(name, kernel="flat")
            survivors.append(name)
            if len(survivors) > 2:
                victim = survivors.pop(0)
                controller.instances.decommission(victim)
            for keeper in survivors:
                instance = controller.instances[keeper]
                for flow_id, chain_id, payload, _ in batches[0][:50]:
                    instance.inspect(payload, chain_id=chain_id, flow_key=flow_id)
        assert sorted(controller.instances) == sorted(survivors)


class TestZeroCopyChurn:
    def test_decommission_releases_arena_and_workers(self):
        controller = fresh_controller()
        instance = controller.instances.provision("zc-1", **ZEROCOPY_KWARGS)
        batch = traffic()[0]
        for flow_id, chain_id, payload, _ in batch[:40]:
            instance.inspect(payload, chain_id=chain_id, flow_key=flow_id)
        assert len(shm_segments()) == 1
        controller.instances.decommission("zc-1")
        assert shm_segments() == []
        assert multiprocessing.active_children() == []

    def test_churn_cycles_under_load_do_not_leak(self):
        controller = fresh_controller()
        batch = traffic()[0]
        for round_number in range(4):
            name = f"zc-churn-{round_number}"
            instance = controller.instances.provision(
                name, **ZEROCOPY_KWARGS
            )
            for flow_id, chain_id, payload, _ in batch[:30]:
                instance.inspect(payload, chain_id=chain_id, flow_key=flow_id)
            assert shm_segments() != []
            controller.instances.decommission(name)
            assert shm_segments() == [], f"leak after round {round_number}"
        assert multiprocessing.active_children() == []

    def test_dedicated_instances_churn_cleanly_too(self):
        controller = fresh_controller()
        batch = traffic()[0]
        name = "zc-iso"
        instance = controller.instances.provision(
            name, chain_ids=(200,), dedicated=True, **ZEROCOPY_KWARGS
        )
        assert controller.instances.is_dedicated(name)
        flood = [item for item in batch if item[1] == 200]
        for flow_id, chain_id, payload, _ in flood[:20]:
            instance.inspect(payload, chain_id=chain_id, flow_key=flow_id)
        controller.instances.decommission(name)
        assert not controller.instances.is_dedicated(name)
        assert shm_segments() == []
        assert multiprocessing.active_children() == []

    def test_crash_then_decommission_is_idempotent(self):
        controller = fresh_controller()
        instance = controller.instances.provision("zc-2", **ZEROCOPY_KWARGS)
        instance.inspect(b"warm up the arena", chain_id=100, flow_key=1)
        instance.crash()
        assert shm_segments() == []
        # Decommissioning an already-crashed instance must not raise or
        # resurrect the worker pool.
        controller.instances.decommission("zc-2")
        assert shm_segments() == []
        assert multiprocessing.active_children() == []


class TestAutoscalerChurn:
    def test_scale_cycle_with_zerocopy_instances_leaves_no_residue(self):
        from repro.autoscale import Autoscaler, ThresholdPolicy
        from repro.autoscale.controller import (
            LOAD_OFFERED_BYTES,
            LOAD_QUEUE_LATENCY,
            QUEUE_LATENCY_BUCKETS,
        )

        controller = fresh_controller()
        controller.instances.provision("dpi-1", **ZEROCOPY_KWARGS)
        autoscaler = Autoscaler(
            controller,
            rate_bytes_per_second=100_000.0,
            epoch_seconds=0.1,
            slo_seconds=0.05,
            policies=[ThresholdPolicy()],
            max_instances=3,
            provision_kwargs=dict(ZEROCOPY_KWARGS),
        )
        registry = controller.telemetry.registry

        def feed(name, latency):
            registry.counter(LOAD_OFFERED_BYTES, instance=name).inc(5_000)
            histogram = registry.histogram(
                LOAD_QUEUE_LATENCY,
                buckets=QUEUE_LATENCY_BUCKETS,
                instance=name,
            )
            for _ in range(10):
                histogram.observe(latency)

        feed("dpi-1", 0.2)
        up = autoscaler.tick(epoch=0)
        assert [event.action for event in up] == ["up"]
        added = up[0].instance
        controller.instances[added].inspect(b"an arena-backed scan", chain_id=100)
        assert shm_segments() != []
        feed(added, 0.0001)
        down = autoscaler.tick(epoch=1)
        assert [event.action for event in down] == ["down"]
        assert down[0].instance == added
        # Scale-down of a zero-copy instance releases its arena...
        controller.instances["dpi-1"].inspect(b"still serving", chain_id=100)
        controller.instances.decommission("dpi-1")
        # ...and after the survivor goes too, nothing is left anywhere.
        assert shm_segments() == []
        assert multiprocessing.active_children() == []
        for metric in registry.collect():
            assert metric.labels.get("instance") != added


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
