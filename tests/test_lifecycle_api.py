"""Regression tests for the unified instance-lifecycle API.

Covers the ``controller.instances`` facade (mapping semantics + lifecycle
verbs), the deprecation shims left behind by the consolidation, the typed
``telemetry_snapshot()`` accessor, and the ``migrate_flow`` failure
contract.
"""

import warnings

import pytest

from repro.core.controller import DPIController
from repro.core.instance import InstanceUnavailableError
from repro.core.lifecycle import InstanceManager
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.net.steering import PolicyChain
from repro.telemetry.export import iter_events
from repro.telemetry.snapshot import TelemetrySnapshot

CHAIN = 100


def make_controller():
    controller = DPIController()
    controller.handle_message(
        RegisterMiddleboxMessage(1, "ids", stateful=True)
    )
    controller.handle_message(
        AddPatternsMessage(1, [Pattern(0, b"evil-sig")])
    )
    controller.policy_chains_changed(
        {"c": PolicyChain("c", ("ids",), chain_id=CHAIN)}
    )
    return controller


class TestInstanceManagerMapping:
    def test_mapping_interface(self):
        controller = make_controller()
        assert isinstance(controller.instances, InstanceManager)
        assert len(controller.instances) == 0
        assert controller.instances == {}
        instance = controller.instances.provision("dpi-1")
        assert controller.instances["dpi-1"] is instance
        assert "dpi-1" in controller.instances
        assert list(controller.instances) == ["dpi-1"]
        assert dict(controller.instances) == {"dpi-1": instance}

    def test_missing_name_error_message(self):
        controller = make_controller()
        with pytest.raises(KeyError, match="no instance named ghost"):
            controller.instances["ghost"]
        with pytest.raises(KeyError, match="no instance named ghost"):
            controller.instances.chain_filter_of("ghost")

    def test_eq_with_plain_dict(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        assert controller.instances == {"dpi-1": instance}
        assert controller.instances != {"dpi-1": object()}
        assert controller.instances != 7

    def test_duplicate_provision_rejected(self):
        controller = make_controller()
        controller.instances.provision("dpi-1")
        with pytest.raises(ValueError, match="duplicate instance name"):
            controller.instances.provision("dpi-1")

    def test_decommission_contract(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        assert controller.instances.decommission("dpi-1") is instance
        with pytest.raises(KeyError, match="no instance named dpi-1"):
            controller.instances.decommission("dpi-1")
        assert (
            controller.instances.decommission("dpi-1", missing_ok=True)
            is None
        )

    def test_dedicated_metadata(self):
        controller = make_controller()
        controller.instances.provision("dpi-1")
        controller.instances.provision("dpi-hot", dedicated=True)
        assert not controller.instances.is_dedicated("dpi-1")
        assert controller.instances.is_dedicated("dpi-hot")
        assert controller.instances.dedicated_names() == ["dpi-hot"]

    def test_chain_filter_metadata(self):
        controller = make_controller()
        controller.instances.provision("dpi-all")
        controller.instances.provision("dpi-one", chain_ids=[CHAIN])
        assert controller.instances.chain_filter_of("dpi-all") is None
        assert controller.instances.chain_filter_of("dpi-one") == (CHAIN,)


class TestDeprecationShims:
    def test_create_instance_shim(self):
        controller = make_controller()
        with pytest.warns(DeprecationWarning, match="instances.provision"):
            instance = controller.create_instance("dpi-1")
        assert controller.instances["dpi-1"] is instance

    def test_remove_instance_shim(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        with pytest.warns(
            DeprecationWarning, match="instances.decommission"
        ):
            assert controller.remove_instance("dpi-1") is instance
        assert "dpi-1" not in controller.instances

    def test_refresh_instances_shim(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        controller.handle_message(
            AddPatternsMessage(1, [Pattern(1, b"new-sig")])
        )
        with pytest.warns(DeprecationWarning, match="instances.refresh"):
            controller.refresh_instances()
        assert len(instance.config.pattern_sets[1]) == 2

    def test_build_instance_config_shim(self):
        controller = make_controller()
        with pytest.warns(
            DeprecationWarning, match="instances.build_config"
        ):
            config = controller.build_instance_config()
        assert config == controller.instances.build_config()

    def test_deploy_grouped_shim(self):
        controller = make_controller()
        with pytest.warns(DeprecationWarning, match="instances.plan_groups"):
            deployed = controller.deploy_grouped(max_groups=1)
        assert deployed == {"dpi-group-1": [CHAIN]}

    def test_collect_telemetry_shim(self):
        controller = make_controller()
        controller.instances.provision("dpi-1")
        with pytest.warns(
            DeprecationWarning, match="telemetry_snapshot"
        ):
            telemetry = controller.collect_telemetry()
        assert telemetry == dict(controller.telemetry_snapshot().instances)

    def test_facade_verbs_warn_nothing(self):
        controller = make_controller()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            controller.instances.provision("dpi-1")
            controller.instances.refresh()
            controller.instances.build_config()
            controller.instances.decommission("dpi-1")


class TestTelemetrySnapshot:
    def test_typed_fields(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        instance.inspect(b"evil-sig here", chain_id=CHAIN, flow_key="f1")
        snapshot = controller.telemetry_snapshot()
        assert isinstance(snapshot, TelemetrySnapshot)
        assert snapshot.instances["dpi-1"]["packets_scanned"] == 1
        assert snapshot.alive == {"dpi-1": True}
        assert snapshot.baselines == {}
        assert snapshot.faults == ()
        metrics = {m["name"] for m in snapshot.metrics["metrics"]}
        assert "dpi_bytes_scanned_total" in metrics

    def test_alive_tracks_crash(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        instance.crash()
        assert controller.telemetry_snapshot().alive == {"dpi-1": False}

    def test_record_fault_lands_in_snapshot_and_export(self):
        controller = make_controller()
        event = controller.telemetry.record_fault(
            "instance_crash", "dpi-1", phase="inject", detail="plan"
        )
        snapshot = controller.telemetry_snapshot()
        assert snapshot.faults == (event,)
        fault_lines = [
            line
            for line in iter_events(controller.telemetry)
            if line["type"] == "fault"
        ]
        assert fault_lines == [dict(event.as_dict(), type="fault")]
        counters = {
            (m.name, tuple(sorted(m.labels.items()))): m.value
            for m in controller.telemetry.registry.collect()
        }
        key = (
            "fault_events_total",
            (("kind", "instance_crash"), ("phase", "inject")),
        )
        assert counters[key] == 1


class TestMigrateFlowContract:
    def test_missing_endpoints_raise_keyerror(self):
        controller = make_controller()
        controller.instances.provision("dpi-1")
        with pytest.raises(KeyError, match="no instance named ghost"):
            controller.migrate_flow("f1", "ghost", "dpi-1")
        with pytest.raises(KeyError, match="no instance named ghost"):
            controller.migrate_flow("f1", "dpi-1", "ghost")

    def test_crashed_source_raises_unavailable(self):
        controller = make_controller()
        source = controller.instances.provision("dpi-1")
        controller.instances.provision("dpi-2")
        source.inspect(b"evil-sig", chain_id=CHAIN, flow_key="f1")
        source.crash()
        with pytest.raises(InstanceUnavailableError):
            controller.migrate_flow("f1", "dpi-1", "dpi-2")

    def test_no_flow_state_returns_false(self):
        controller = make_controller()
        controller.instances.provision("dpi-1")
        controller.instances.provision("dpi-2")
        assert controller.migrate_flow("nope", "dpi-1", "dpi-2") is False

    def test_successful_migration_moves_state(self):
        controller = make_controller()
        source = controller.instances.provision("dpi-1")
        target = controller.instances.provision("dpi-2")
        source.inspect(b"evil-si", chain_id=CHAIN, flow_key="f1")
        assert controller.migrate_flow("f1", "dpi-1", "dpi-2") is True
        assert source.export_flow("f1") is None
        assert target.export_flow("f1") is not None


class TestDecommissionOrdering:
    def test_engine_shuts_down_before_metrics_drop(self):
        """Regression: decommission used to drop the instance's registry
        metrics first, so a raise in the drop left the popped instance's
        engine (arenas, worker pools) running with no owner to release
        it.  The engine shutdown must come first."""
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        order = []
        # The default engine (CombinedAutomaton) has no shutdown;
        # decommission probes with hasattr, so a recorder stands in for a
        # backend-owning engine such as ShardedAutomaton.
        instance.automaton.shutdown = lambda: order.append("shutdown")
        registry = controller.telemetry.registry
        real_drop = registry.drop

        def recording_drop(**labels):
            order.append("drop")
            return real_drop(**labels)

        registry.drop = recording_drop
        try:
            controller.instances.decommission("dpi-1")
        finally:
            del registry.drop
        assert order == ["shutdown", "drop"]

    def test_engine_is_down_even_when_the_metrics_drop_raises(self):
        controller = make_controller()
        instance = controller.instances.provision("dpi-1")
        shut = []
        instance.automaton.shutdown = lambda: shut.append(True)
        registry = controller.telemetry.registry

        def exploding_drop(**labels):
            raise RuntimeError("registry backend unavailable")

        registry.drop = exploding_drop
        try:
            with pytest.raises(RuntimeError, match="registry backend"):
                controller.instances.decommission("dpi-1")
        finally:
            del registry.drop
        assert shut == [True]
        assert "dpi-1" not in controller.instances
