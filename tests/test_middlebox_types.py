"""Unit tests for the concrete middlebox types (paper Table 1)."""

import pytest

from repro.core.reports import MatchReport
from repro.middleboxes.analytics import UNKNOWN_PROTOCOL, ProtocolAnalytics
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.base import Action
from repro.middleboxes.dlp import LeakagePreventionSystem
from repro.middleboxes.firewall import AclEntry, L2L4Firewall, L7Firewall
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.middleboxes.ips import IntrusionPreventionSystem
from repro.middleboxes.load_balancer import L7LoadBalancer
from repro.middleboxes.traffic_shaper import TrafficShaper
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet


def make_packet(payload=b"data", src_port=1234):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        src_port,
        80,
        payload=payload,
    )


def report_for(middlebox_id, matches):
    return MatchReport.from_matches({middlebox_id: matches})


class TestIDS:
    def test_read_only_and_stateful(self):
        assert IntrusionDetectionSystem.READ_ONLY
        assert IntrusionDetectionSystem.STATEFUL

    def test_alert_with_severity(self):
        ids = IntrusionDetectionSystem(1)
        ids.add_signature(0, b"exploit", severity="high")
        verdict = ids.consume_report(make_packet(), report_for(1, [(0, 7)]))
        assert verdict is Action.ALERT
        assert ids.alerts[0].severity == "high"
        assert ids.alerts_by_severity()["high"]

    def test_ids_never_drops(self):
        ids = IntrusionDetectionSystem(1)
        ids.add_signature(0, b"exploit")
        verdict = ids.consume_report(make_packet(), report_for(1, [(0, 7)]))
        assert verdict is not Action.DROP


class TestIPS:
    def test_block_signature_drops(self):
        ips = IntrusionPreventionSystem(2)
        ips.add_block_signature(0, b"exploit")
        packet = make_packet()
        verdict = ips.consume_report(packet, report_for(2, [(0, 7)]))
        assert verdict is Action.DROP
        assert ips.blocked_packet_ids == [packet.packet_id]

    def test_watch_signature_alerts_only(self):
        ips = IntrusionPreventionSystem(2)
        ips.add_watch_signature(0, b"recon")
        verdict = ips.consume_report(make_packet(), report_for(2, [(0, 5)]))
        assert verdict is Action.ALERT
        assert ips.blocked_packet_ids == []

    def test_ips_not_read_only(self):
        assert not IntrusionPreventionSystem.READ_ONLY


class TestAntiVirus:
    def test_detection_quarantines_flow(self):
        av = AntiVirus(3)
        av.add_signature(0, b"virus-signature")
        packet = make_packet(src_port=5000)
        verdict = av.consume_report(packet, report_for(3, [(0, 15)]))
        assert verdict is Action.DROP
        assert len(av.quarantined_flows) == 1
        # Clean follow-up on the same flow is dropped too.
        follow_up = make_packet(b"clean", src_port=5000)
        assert av.consume_unmarked(follow_up) is Action.DROP

    def test_other_flows_unaffected(self):
        av = AntiVirus(3)
        av.add_signature(0, b"virus-signature")
        av.consume_report(make_packet(src_port=5000), report_for(3, [(0, 15)]))
        other = make_packet(b"clean", src_port=6000)
        assert av.consume_unmarked(other) is Action.FORWARD

    def test_release_quarantine(self):
        av = AntiVirus(3)
        av.add_signature(0, b"virus-signature")
        packet = make_packet(src_port=5000)
        av.consume_report(packet, report_for(3, [(0, 15)]))
        flow_key = list(av.quarantined_flows)[0]
        assert av.release(flow_key)
        assert not av.release(flow_key)
        assert av.consume_unmarked(make_packet(src_port=5000)) is Action.FORWARD

    def test_short_signature_rejected(self):
        av = AntiVirus(3)
        with pytest.raises(ValueError):
            av.add_signature(0, b"short")


class TestFirewalls:
    def test_l2l4_first_match_wins(self):
        firewall = L2L4Firewall()
        firewall.add_entry(AclEntry(action=Action.DROP, dst_port=80))
        firewall.add_entry(AclEntry(action=Action.FORWARD))
        assert firewall.decide(make_packet()) is Action.DROP
        assert firewall.stats.packets_dropped == 1

    def test_l2l4_default_action(self):
        deny_all = L2L4Firewall(default_action=Action.DROP)
        assert deny_all.decide(make_packet()) is Action.DROP

    def test_l2l4_field_matching(self):
        entry = AclEntry(
            action=Action.DROP,
            src_ip=IPv4Address("10.0.0.1"),
            protocol=6,
        )
        assert entry.matches(make_packet())
        other = AclEntry(action=Action.DROP, src_ip=IPv4Address("9.9.9.9"))
        assert not other.matches(make_packet())

    def test_l7_block_pattern(self):
        firewall = L7Firewall(4)
        firewall.add_block_pattern(0, b"/etc/passwd")
        verdict = firewall.consume_report(make_packet(), report_for(4, [(0, 30)]))
        assert verdict is Action.DROP

    def test_l7_has_stopping_condition(self):
        assert L7Firewall.STOPPING_CONDITION == 2048


class TestDLP:
    def test_prevent_profile_blocks(self):
        dlp = LeakagePreventionSystem(5, prevent=True)
        dlp.add_marker(0, b"CONFIDENTIAL")
        verdict = dlp.consume_report(make_packet(), report_for(5, [(0, 12)]))
        assert verdict is Action.DROP
        assert dlp.incidents[0].blocked

    def test_detect_profile_logs_only(self):
        dlp = LeakagePreventionSystem(5, prevent=False)
        dlp.add_marker(0, b"CONFIDENTIAL")
        verdict = dlp.consume_report(make_packet(), report_for(5, [(0, 12)]))
        assert verdict is Action.ALERT
        assert not dlp.incidents[0].blocked

    def test_identifier_format_is_regex(self):
        from repro.core.patterns import PatternKind

        dlp = LeakagePreventionSystem(5)
        dlp.add_identifier_format(1, rb"\d{4}-\d{4}-\d{4}-\d{4}")
        assert dlp.patterns[0].kind is PatternKind.REGEX


class TestTrafficShaper:
    def _shaper(self):
        shaper = TrafficShaper(6)
        shaper.add_class("p2p", rate_bps=8_000, burst_bytes=2000)
        shaper.add_app_pattern(0, b"BitTorrent protocol", "p2p")
        return shaper

    def test_classification(self):
        shaper = self._shaper()
        packet = make_packet(src_port=7000)
        shaper.consume_report(packet, report_for(6, [(0, 19)]))
        from repro.net.flows import FiveTuple

        flow_key = FiveTuple.of(packet).bidirectional_key()
        assert shaper.class_of_flow(flow_key) == "p2p"

    def test_shaping_drops_over_rate(self):
        shaper = self._shaper()
        packet = make_packet(b"x" * 1500, src_port=7000)
        shaper.consume_report(packet, report_for(6, [(0, 19)]))
        verdicts = [shaper.shape(packet, now=0.0) for _ in range(5)]
        assert Action.DROP in verdicts
        assert shaper.shaped_drops > 0

    def test_bucket_refills_over_time(self):
        shaper = self._shaper()
        packet = make_packet(b"x" * 1500, src_port=7000)
        shaper.consume_report(packet, report_for(6, [(0, 19)]))
        while shaper.shape(packet, now=0.0) is Action.FORWARD:
            pass
        # After enough time, tokens return (8 kbps = 1 kB/s).
        assert shaper.shape(packet, now=10.0) is Action.FORWARD

    def test_default_class_unshaped(self):
        shaper = self._shaper()
        clean = make_packet(b"x" * 1500, src_port=8000)
        assert all(
            shaper.shape(clean, now=0.0) is Action.FORWARD for _ in range(100)
        )

    def test_unknown_class_rejected(self):
        shaper = self._shaper()
        with pytest.raises(KeyError):
            shaper.add_app_pattern(1, b"marker-xyz", "no-such-class")


class TestLoadBalancer:
    def _balancer(self):
        balancer = L7LoadBalancer(7)
        balancer.add_pool("api", ["api-1", "api-2"])
        balancer.add_content_rule(0, b"GET /api/", "api")
        return balancer

    def test_round_robin_assignment(self):
        balancer = self._balancer()
        backends = []
        for port in (9000, 9001):
            packet = make_packet(b"GET /api/x", src_port=port)
            balancer.consume_report(packet, report_for(7, [(0, 9)]))
            backends.append(balancer.backend_of(packet))
        assert set(backends) == {"api-1", "api-2"}
        assert balancer.backend_loads() == {"api-1": 1, "api-2": 1}

    def test_sticky_flows(self):
        balancer = self._balancer()
        packet = make_packet(b"GET /api/x", src_port=9000)
        balancer.consume_report(packet, report_for(7, [(0, 9)]))
        first = balancer.backend_of(packet)
        balancer.consume_report(packet, report_for(7, [(0, 9)]))
        assert balancer.backend_of(packet) == first

    def test_unclassified_flow_has_no_backend(self):
        balancer = self._balancer()
        assert balancer.backend_of(make_packet(src_port=9100)) is None

    def test_empty_pool_rejected(self):
        balancer = self._balancer()
        with pytest.raises(ValueError):
            balancer.add_pool("empty", [])

    def test_rule_for_unknown_pool_rejected(self):
        balancer = self._balancer()
        with pytest.raises(KeyError):
            balancer.add_content_rule(1, b"marker", "ghost")


class TestAnalytics:
    def test_protocol_attribution(self):
        analytics = ProtocolAnalytics(8)
        analytics.add_protocol_banner(0, b"SSH-2.0", "ssh")
        packet = make_packet(b"SSH-2.0-OpenSSH")
        analytics.consume_report(packet, report_for(8, [(0, 7)]))
        assert analytics.counters["ssh"].packets == 1

    def test_unknown_protocol_counted(self):
        analytics = ProtocolAnalytics(8)
        analytics.consume_unmarked(make_packet(b"mystery"))
        assert analytics.counters[UNKNOWN_PROTOCOL].packets == 1

    def test_protocol_share_sums_to_one(self):
        analytics = ProtocolAnalytics(8)
        analytics.add_protocol_banner(0, b"SSH-2.0", "ssh")
        analytics.consume_report(
            make_packet(b"SSH-2.0"), report_for(8, [(0, 7)])
        )
        analytics.consume_unmarked(make_packet(b"other traffic"))
        share = analytics.protocol_share()
        assert sum(share.values()) == pytest.approx(1.0)

    def test_empty_share(self):
        assert ProtocolAnalytics(8).protocol_share() == {}
