"""Unit tests for the DPI service instance (Section 5)."""

import pytest

from repro.core.instance import (
    DPIServiceFunction,
    DPIServiceInstance,
    InstanceConfig,
)
from repro.core.patterns import Pattern, PatternKind
from repro.core.reports import MatchReport
from repro.core.scanner import MiddleboxProfile
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import VlanTag, make_tcp_packet


def make_config(stateful=False, layout="sparse"):
    return InstanceConfig(
        pattern_sets={
            1: [
                Pattern(0, b"attack"),
                Pattern(1, rb"regular\s*expression", kind=PatternKind.REGEX),
            ],
            2: [Pattern(0, b"virus123")],
        },
        profiles={
            1: MiddleboxProfile(1, name="ids", stateful=stateful),
            2: MiddleboxProfile(2, name="av", stateful=stateful),
        },
        chain_map={100: (1, 2), 101: (2,)},
        layout=layout,
    )


def make_packet(payload, vid=100):
    packet = make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1234,
        80,
        payload=payload,
    )
    if vid is not None:
        packet.push_vlan(VlanTag(vid=vid))
    return packet


class TestInspection:
    def test_literal_match_reported(self):
        instance = DPIServiceInstance(make_config())
        output = instance.inspect(b"an attack comes", chain_id=100)
        assert output.matches[1] == [(0, 9)]
        assert output.has_matches
        assert not output.report.is_empty

    def test_regex_confirmed_and_reported(self):
        instance = DPIServiceInstance(make_config())
        output = instance.inspect(b"a regular  expression here", chain_id=100)
        pairs = output.matches[1]
        assert (1, 2 + len("regular  expression")) in pairs

    def test_anchor_ids_never_reported(self):
        instance = DPIServiceInstance(make_config())
        # Anchors present ("regular" without "expression" completing regex).
        output = instance.inspect(b"regular but nothing else", chain_id=100)
        for matches in output.matches.values():
            for pattern_id, _pos in matches:
                assert pattern_id < (1 << 20)

    def test_chain_selects_pattern_sets(self):
        instance = DPIServiceInstance(make_config())
        output = instance.inspect(b"attack and virus123", chain_id=101)
        # Chain 101 has only middlebox 2.
        assert 1 not in output.matches
        assert output.matches[2] == [(0, 19)]

    def test_no_matches_empty_report(self):
        instance = DPIServiceInstance(make_config())
        output = instance.inspect(b"benign payload", chain_id=100)
        assert not output.has_matches
        assert output.report.is_empty

    def test_report_encodes_per_middlebox(self):
        instance = DPIServiceInstance(make_config())
        output = instance.inspect(b"attack with virus123", chain_id=100)
        decoded = MatchReport.decode(output.report.encode())
        assert decoded.matches_for(1) == [(0, 6)]
        assert decoded.matches_for(2) == [(0, 20)]

    def test_telemetry_counters(self):
        instance = DPIServiceInstance(make_config())
        instance.inspect(b"attack", chain_id=100)
        instance.inspect(b"quiet", chain_id=100)
        telemetry = instance.telemetry
        assert telemetry.packets_scanned == 2
        assert telemetry.bytes_scanned == 11
        assert telemetry.packets_with_matches == 1
        assert telemetry.scan_seconds > 0

    def test_stateful_cross_packet(self):
        instance = DPIServiceInstance(make_config(stateful=True))
        instance.inspect(b"att", chain_id=100, flow_key="f")
        output = instance.inspect(b"ack", chain_id=100, flow_key="f")
        assert (0, 6) in output.matches[1]

    def test_heavy_flows_ranked(self):
        instance = DPIServiceInstance(make_config(stateful=True))
        instance.inspect(b"x" * 2000, chain_id=100, flow_key="big")
        instance.inspect(b"y" * 10, chain_id=100, flow_key="small")
        heavy = instance.heavy_flows(top=1)
        assert heavy[0][0] == "big"

    def test_reconfigure_rebuilds(self):
        instance = DPIServiceInstance(make_config())
        new_config = InstanceConfig(
            pattern_sets={1: [Pattern(0, b"fresh")]},
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={100: (1,)},
        )
        instance.reconfigure(new_config)
        output = instance.inspect(b"a fresh start", chain_id=100)
        assert output.matches[1] == [(0, 7)]

    def test_config_requires_profiles(self):
        with pytest.raises(KeyError):
            InstanceConfig(
                pattern_sets={1: [Pattern(0, b"x")]},
                profiles={},
                chain_map={},
            )


class TestServiceFunction:
    def _function(self, mode="result_packet"):
        instance = DPIServiceInstance(make_config())
        function = DPIServiceFunction(instance, result_mode=mode)
        return instance, function

    def test_matchless_packet_forwarded_unmodified(self):
        _, function = self._function()
        packet = make_packet(b"all quiet")
        out = function.process(packet)
        assert out == [packet]
        assert not packet.is_marked_matched

    def test_matched_packet_marked_and_result_appended(self):
        _, function = self._function()
        packet = make_packet(b"attack happening")
        out = function.process(packet)
        assert len(out) == 2
        data, result = out
        assert data is packet
        assert data.is_marked_matched
        assert result.is_result_packet
        assert result.describes_packet_id == packet.packet_id
        decoded = MatchReport.decode(result.payload)
        assert decoded.matches_for(1) == [(0, 6)]

    def test_result_packet_follows_chain_tag(self):
        _, function = self._function()
        packet = make_packet(b"attack")
        _, result = function.process(packet)
        assert result.outer_vlan.vid == 100

    def test_untagged_packet_passes_through(self):
        instance, function = self._function()
        packet = make_packet(b"attack", vid=None)
        assert function.process(packet) == [packet]
        assert instance.telemetry.packets_scanned == 0

    def test_unknown_chain_passes_through(self):
        instance, function = self._function()
        packet = make_packet(b"attack", vid=999)
        assert function.process(packet) == [packet]
        assert function.packets_skipped == 1

    def test_result_packets_pass_through(self):
        _, function = self._function()
        packet = make_packet(b"attack")
        packet.describes_packet_id = 123
        assert function.process(packet) == [packet]

    def test_nsh_mode_attaches_metadata(self):
        _, function = self._function(mode="nsh")
        packet = make_packet(b"attack")
        out = function.process(packet)
        assert out == [packet]
        assert packet.nsh is not None
        decoded = MatchReport.decode(packet.nsh.metadata)
        assert decoded.matches_for(1) == [(0, 6)]

    def test_tags_mode_pushes_labels(self):
        _, function = self._function(mode="tags")
        packet = make_packet(b"attack")
        function.process(packet)
        assert packet.mpls_stack

    def test_unknown_mode_rejected(self):
        instance = DPIServiceInstance(make_config())
        with pytest.raises(ValueError):
            DPIServiceFunction(instance, result_mode="pigeon")


class TestRegexMatchDedup:
    """A regex can register both anchors and a fallback expression; the
    two resolution paths must not double-report the same match."""

    def _instance(self):
        config = InstanceConfig(
            pattern_sets={
                1: [
                    # Anchored: "alphanum" is a >=4 byte literal anchor.
                    Pattern(5, rb"alphanum\d*", kind=PatternKind.REGEX),
                    # Same pattern id, no usable anchor -> fallback list.
                    Pattern(5, rb"[a-z]+\d*", kind=PatternKind.REGEX),
                ],
            },
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={100: (1,)},
        )
        return DPIServiceInstance(config)

    def test_same_match_reported_once(self):
        instance = self._instance()
        output = instance.inspect(b"alphanum77", chain_id=100)
        assert output.matches[1].count((5, 10)) == 1

    def test_distinct_matches_survive_dedup(self):
        instance = self._instance()
        output = instance.inspect(b"alphanum77 xyz9", chain_id=100)
        positions = sorted(output.matches[1])
        assert (5, 10) in positions and (5, 15) in positions
        assert len(positions) == len(set(positions))


class TestInspectionAPISurface:
    """The keyword-only inspection contract and its deprecation shims."""

    def test_positional_chain_id_warns_and_still_works(self):
        instance = DPIServiceInstance(make_config())
        with pytest.warns(DeprecationWarning, match="chain_id"):
            output = instance.inspect(b"an attack", 100)
        assert output.matches[1] == [(0, 9)]

    def test_full_positional_shape_maps_all_slots(self):
        instance = DPIServiceInstance(make_config(stateful=True))
        with pytest.warns(DeprecationWarning):
            instance.inspect(b"att", 100, "f", 1.0, None)
        with pytest.warns(DeprecationWarning):
            output = instance.inspect(b"ack", 100, "f", 2.0, None)
        assert output.matches[1] == [(0, 6)]  # straddle proves flow_key bound

    def test_positional_batch_warns_and_still_works(self):
        instance = DPIServiceInstance(make_config())
        with pytest.warns(DeprecationWarning, match="inspect_batch"):
            outputs = instance.inspect_batch([b"attack", b"clean"], 100)
        assert outputs[0].has_matches and not outputs[1].has_matches

    def test_positional_keyword_conflict_raises(self):
        instance = DPIServiceInstance(make_config())
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                instance.inspect(b"x", 100, chain_id=100)

    def test_missing_chain_id_raises(self):
        instance = DPIServiceInstance(make_config())
        with pytest.raises(TypeError, match="chain_id"):
            instance.inspect(b"x")
        with pytest.raises(TypeError, match="chain_id"):
            instance.inspect_batch([b"x"])

    def test_too_many_positionals_raises(self):
        instance = DPIServiceInstance(make_config())
        with pytest.raises(TypeError, match="positional"):
            instance.inspect(b"x", 100, None, 0.0, None, "extra")

    def test_batch_trace_parent_records_spans(self):
        # Regression: inspect_batch used to silently drop tracing.
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub(clock=lambda: 0.0)
        instance = DPIServiceInstance(make_config(), telemetry=hub)
        root = hub.tracer.start_span("batch")
        instance.inspect_batch(
            [b"attack", b"virus123"],
            chain_id=100,
            trace_parent=root.context,
        )
        root.finish(hub.tracer.now())
        spans = hub.tracer.spans_named("inspect")
        assert len(spans) == 2
        assert {s.parent_id for s in spans} == {root.context[1]}

    def test_batch_matches_looped_inspect(self):
        batch = DPIServiceInstance(make_config())
        loop = DPIServiceInstance(make_config())
        payloads = [b"an attack", b"virus123 here", b"clean"]
        batched = batch.inspect_batch(payloads, chain_id=100)
        looped = [loop.inspect(p, chain_id=100) for p in payloads]
        assert [o.matches for o in batched] == [o.matches for o in looped]
