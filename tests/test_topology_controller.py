"""Unit tests for topology construction and the SDN controller."""

import pytest

from repro.net.addresses import IPv4Address
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.topology import Topology, build_paper_topology


class TestTopology:
    def test_build_paper_topology(self):
        topo = build_paper_topology()
        assert set(topo.switches) == {"s1"}
        assert set(topo.hosts) == {"user1", "user2", "mb1", "mb2", "dpi1"}
        assert len(topo.links) == 5

    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_switch("x")
        with pytest.raises(ValueError):
            topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_switch("x")

    def test_port_assignment(self):
        topo = Topology()
        topo.add_switch("s1")
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("s1", "h1")
        topo.add_link("s1", "h2")
        assert topo.port_toward("s1", "h1") == 1
        assert topo.port_toward("s1", "h2") == 2
        assert topo.port_toward("h1", "s1") == 1

    def test_port_toward_unknown(self):
        topo = build_paper_topology()
        with pytest.raises(KeyError):
            topo.port_toward("s1", "nonexistent")
        with pytest.raises(KeyError):
            topo.port_toward("user1", "user2")  # not directly linked

    def test_shortest_path_multi_switch(self):
        topo = Topology()
        for name in ("s1", "s2", "s3"):
            topo.add_switch(name)
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_link("h1", "s1")
        topo.add_link("s1", "s2")
        topo.add_link("s2", "s3")
        topo.add_link("s3", "h2")
        assert topo.shortest_path("h1", "h2") == ["h1", "s1", "s2", "s3", "h2"]

    def test_unique_host_addresses(self):
        topo = build_paper_topology()
        macs = {str(h.mac) for h in topo.hosts.values()}
        ips = {str(h.ip) for h in topo.hosts.values()}
        assert len(macs) == 5 and len(ips) == 5

    def test_host_of_ip(self):
        topo = build_paper_topology()
        user1 = topo.hosts["user1"]
        assert topo.host_of_ip(user1.ip) is user1
        assert topo.host_of_ip(IPv4Address("203.0.113.9")) is None

    def test_unknown_node_in_link(self):
        topo = Topology()
        topo.add_switch("s1")
        with pytest.raises(KeyError):
            topo.add_link("s1", "ghost")


class TestSDNControllerLearning:
    def _send(self, topo, src, dst, payload=b"ping"):
        src_host, dst_host = topo.hosts[src], topo.hosts[dst]
        packet = make_tcp_packet(
            src_host.mac, dst_host.mac, src_host.ip, dst_host.ip, 1000, 2000,
            payload=payload,
        )
        src_host.send(packet)
        topo.run()
        return packet

    def test_learning_floods_then_installs(self):
        topo = build_paper_topology()
        controller = SDNController(topo)
        self._send(topo, "user1", "user2")
        # First packet floods to everyone except the sender.
        assert len(topo.hosts["user2"].received_packets) == 1
        assert len(topo.hosts["mb1"].received_packets) == 1
        # user1's MAC is now learned; reply goes directly.
        self._send(topo, "user2", "user1")
        assert len(topo.hosts["user1"].received_packets) == 1
        assert len(topo.hosts["mb2"].received_packets) == 1  # only the flood

    def test_stats_counted(self):
        topo = build_paper_topology()
        controller = SDNController(topo)
        self._send(topo, "user1", "user2")
        assert controller.stats.packet_ins == 1
        assert controller.stats.packet_outs == 1

    def test_rule_installation_api(self):
        from repro.net.openflow import FlowAction, FlowMatch

        topo = build_paper_topology()
        controller = SDNController(topo, learning=False)
        entry = controller.install(
            "s1", FlowMatch(in_port=1), [FlowAction.drop()], priority=7
        )
        assert entry.priority == 7
        assert len(topo.switches["s1"].table) == 1

    def test_learning_disabled_drops_unknown(self):
        topo = build_paper_topology()
        SDNController(topo, learning=False)
        self._send(topo, "user1", "user2")
        assert topo.hosts["user2"].received_packets == []

    def test_application_consumes_packet_in(self):
        topo = build_paper_topology()
        controller = SDNController(topo)

        class Sink:
            def __init__(self):
                self.seen = []

            def handle_packet_in(self, switch, packet, in_port):
                self.seen.append(packet.packet_id)
                return True

        sink = Sink()
        controller.register_application(sink)
        packet = self._send(topo, "user1", "user2")
        assert sink.seen == [packet.packet_id]
        # Application consumed it; learning never forwarded.
        assert topo.hosts["user2"].received_packets == []
