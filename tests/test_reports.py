"""Unit tests for match-report encoding (Section 6.5)."""

import pytest

from repro.core.reports import (
    BLOCK_HEADER_LENGTH,
    HEADER_LENGTH,
    MAX_POSITION,
    MAX_RUN_LENGTH,
    RECORD_LENGTH,
    MatchRecord,
    MatchReport,
    RangeRecord,
    compress_matches,
)


class TestRecords:
    def test_single_record_positions(self):
        record = MatchRecord(pattern_id=5, position=100)
        assert record.positions() == [100]

    def test_range_record_positions(self):
        record = RangeRecord(pattern_id=5, start_position=100, count=3)
        assert record.positions() == [100, 101, 102]

    def test_range_requires_count_two(self):
        with pytest.raises(ValueError):
            RangeRecord(pattern_id=1, start_position=0, count=1)

    def test_field_limits(self):
        with pytest.raises(ValueError):
            MatchRecord(pattern_id=0x10000, position=0)
        with pytest.raises(ValueError):
            MatchRecord(pattern_id=0, position=MAX_POSITION + 1)
        with pytest.raises(ValueError):
            RangeRecord(pattern_id=0, start_position=0, count=MAX_RUN_LENGTH + 1)


class TestCompression:
    def test_no_runs(self):
        records = compress_matches([(1, 10), (2, 20)])
        assert records == [MatchRecord(1, 10), MatchRecord(2, 20)]

    def test_consecutive_run_compressed(self):
        # The paper's repeated-character case: same pattern at consecutive
        # positions becomes one range record.
        records = compress_matches([(7, 5), (7, 6), (7, 7)])
        assert records == [RangeRecord(7, 5, 3)]

    def test_gap_breaks_run(self):
        records = compress_matches([(7, 5), (7, 7)])
        assert records == [MatchRecord(7, 5), MatchRecord(7, 7)]

    def test_different_patterns_not_merged(self):
        records = compress_matches([(7, 5), (8, 6)])
        assert records == [MatchRecord(7, 5), MatchRecord(8, 6)]

    def test_long_run_chunked(self):
        matches = [(1, position) for position in range(300)]
        records = compress_matches(matches)
        assert records[0] == RangeRecord(1, 0, 255)
        total = sum(len(r.positions()) for r in records)
        assert total == 300

    def test_unsorted_input_handled(self):
        records = compress_matches([(7, 7), (7, 5), (7, 6)])
        assert records == [RangeRecord(7, 5, 3)]


class TestReportRoundTrip:
    def test_empty_report(self):
        report = MatchReport.from_matches({})
        assert report.is_empty
        assert MatchReport.decode(report.encode()).is_empty

    def test_empty_lists_omitted(self):
        report = MatchReport.from_matches({1: [], 2: [(0, 5)]})
        assert 1 not in report.blocks
        assert 2 in report.blocks

    def test_round_trip(self):
        matches = {
            1: [(0, 12), (4, 100)],
            3: [(2, 50), (2, 51), (2, 52)],
        }
        report = MatchReport.from_matches(matches)
        decoded = MatchReport.decode(report.encode())
        assert decoded.matches_for(1) == sorted(matches[1])
        assert decoded.matches_for(3) == sorted(matches[3])

    def test_size_accounting(self):
        report = MatchReport.from_matches({1: [(0, 12)], 2: [(1, 3), (2, 9)]})
        expected = HEADER_LENGTH + 2 * BLOCK_HEADER_LENGTH + 3 * RECORD_LENGTH
        assert report.size_bytes() == expected
        assert len(report.encode()) == expected

    def test_six_bytes_per_record(self):
        """The paper's experiments use 6 bytes per match report record."""
        assert RECORD_LENGTH == 6

    def test_single_match_report_size(self):
        report = MatchReport.from_matches({1: [(0, 12)]})
        assert report.size_bytes() == HEADER_LENGTH + BLOCK_HEADER_LENGTH + 6

    def test_large_positions(self):
        # Stateful flow offsets can exceed 64 KiB; u24 handles them.
        report = MatchReport.from_matches({1: [(0, 1_000_000)]})
        decoded = MatchReport.decode(report.encode())
        assert decoded.matches_for(1) == [(0, 1_000_000)]

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            MatchReport.decode(b"\x01")
        with pytest.raises(ValueError):
            MatchReport.decode(b"\x99\x00\x00\x00")

    def test_decode_rejects_trailing_bytes(self):
        encoded = MatchReport.from_matches({1: [(0, 1)]}).encode()
        with pytest.raises(ValueError, match="trailing"):
            MatchReport.decode(encoded + b"\x00")

    def test_total_records(self):
        report = MatchReport.from_matches({1: [(0, 1), (0, 2), (0, 3), (5, 9)]})
        assert report.total_records() == 2  # one range + one single


class TestCompactEncoding:
    def test_compact_is_four_bytes_per_match(self):
        report = MatchReport.from_matches({1: [(0, 12)]})
        compact = report.encode_compact()
        assert len(compact) == HEADER_LENGTH + BLOCK_HEADER_LENGTH + 4

    def test_compact_expands_ranges(self):
        report = MatchReport.from_matches({1: [(0, 5), (0, 6), (0, 7)]})
        compact = report.encode_compact()
        assert len(compact) == HEADER_LENGTH + BLOCK_HEADER_LENGTH + 3 * 4

    def test_compact_position_limit(self):
        report = MatchReport.from_matches({1: [(0, 70_000)]})
        with pytest.raises(ValueError):
            report.encode_compact()
