"""Integration: the paper's Figure 5 system illustration.

Four switches; middleboxes spread across them; two policy chains sharing
one DPI instance (DPI3 in the figure):

* chain 1: ``L2L4_FW -> DPI -> IDS1``
* chain 2: ``DPI -> IDS2 -> AV1 -> TS``

Both chains traverse the *same* DPI service instance, which scans each
packet once against the union of the chain's middlebox pattern sets.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.firewall import L2L4Firewall, L2L4FirewallFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.middleboxes.traffic_shaper import TrafficShaper
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology

IDS1_SIG = b"chain-one-threat"
IDS2_SIG = b"chain-two-threat"
AV_SIG = b"chain-two-virus!"
TS_SIG = b"BitTorrent protocol"


@pytest.fixture
def figure5_system():
    # Four switches in a line with cross links, middleboxes spread out.
    topo = Topology()
    for switch in ("s1", "s2", "s3", "s4"):
        topo.add_switch(switch)
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s3", "s4")
    topo.add_link("s1", "s3")
    hosts = {
        "src1": "s1", "dst1": "s4",          # chain 1 endpoints
        "src2": "s1", "dst2": "s4",          # chain 2 endpoints
        "l2l4_fw": "s3", "ids1": "s3",       # chain 1 middleboxes
        "ids2": "s4", "av1": "s2", "ts": "s2",  # chain 2 middleboxes
        "dpi3": "s2",                         # the shared DPI instance
    }
    for host, switch in hosts.items():
        topo.add_host(host)
        topo.add_link(switch, host)

    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    ids1 = IntrusionDetectionSystem(middlebox_id=1, name="ids1")
    ids1.add_signature(0, IDS1_SIG)
    ids2 = IntrusionDetectionSystem(middlebox_id=2, name="ids2")
    ids2.add_signature(0, IDS2_SIG)
    av1 = AntiVirus(middlebox_id=3, name="av1")
    av1.add_signature(0, AV_SIG)
    shaper = TrafficShaper(middlebox_id=4, name="ts")
    shaper.add_class("bulk", rate_bps=1e6)
    shaper.add_app_pattern(0, TS_SIG, "bulk")
    firewall = L2L4Firewall()

    dpi_controller = DPIController()
    for middlebox in (ids1, ids2, av1, shaper):
        middlebox.register_with(dpi_controller)

    tsa.register_middlebox_instance("l2l4_fw", "l2l4_fw")
    tsa.register_middlebox_instance("ids1", "ids1")
    tsa.register_middlebox_instance("ids2", "ids2")
    tsa.register_middlebox_instance("av1", "av1")
    tsa.register_middlebox_instance("ts", "ts")
    tsa.register_middlebox_instance("dpi", "dpi3")

    # The paper's two policy chains (Figure 5's table).
    tsa.add_policy_chain(PolicyChain("chain1", ("l2l4_fw", "ids1")))
    tsa.add_policy_chain(PolicyChain("chain2", ("ids2", "av1", "ts")))
    dpi_controller.attach_tsa(tsa)
    assert tsa.chains["chain1"].middlebox_types == ("l2l4_fw", "dpi", "ids1")
    assert tsa.chains["chain2"].middlebox_types == ("dpi", "ids2", "av1", "ts")

    tsa.assign_traffic(TrafficAssignment("src1", "dst1", "chain1"))
    tsa.assign_traffic(TrafficAssignment("src2", "dst2", "chain2"))
    tsa.realize()

    instance = dpi_controller.instances.provision("dpi3")
    topo.hosts["dpi3"].set_function(DPIServiceFunction(instance))
    topo.hosts["l2l4_fw"].set_function(L2L4FirewallFunction(firewall))
    topo.hosts["ids1"].set_function(MiddleboxChainFunction(ids1))
    topo.hosts["ids2"].set_function(MiddleboxChainFunction(ids2))
    topo.hosts["av1"].set_function(MiddleboxChainFunction(av1))
    topo.hosts["ts"].set_function(MiddleboxChainFunction(shaper))
    return {
        "topo": topo,
        "instance": instance,
        "ids1": ids1,
        "ids2": ids2,
        "av1": av1,
        "shaper": shaper,
        "firewall": firewall,
    }


def send(topo, src, dst, payload, src_port=47000):
    src_host, dst_host = topo.hosts[src], topo.hosts[dst]
    packet = make_tcp_packet(
        src_host.mac, dst_host.mac, src_host.ip, dst_host.ip,
        src_port, 80, payload=payload,
    )
    src_host.send(packet)
    topo.run()
    return packet


class TestFigure5:
    def test_one_shared_instance_serves_both_chains(self, figure5_system):
        topo = figure5_system["topo"]
        send(topo, "src1", "dst1", IDS1_SIG, src_port=47001)
        send(topo, "src2", "dst2", IDS2_SIG, src_port=47002)
        assert figure5_system["instance"].telemetry.packets_scanned == 2
        assert len(figure5_system["ids1"].alerts) == 1
        assert len(figure5_system["ids2"].alerts) == 1

    def test_chain_isolation(self, figure5_system):
        """Chain 1 traffic carrying chain 2's signature: nothing fires."""
        topo = figure5_system["topo"]
        send(topo, "src1", "dst1", IDS2_SIG + b" " + AV_SIG, src_port=47003)
        assert figure5_system["ids2"].alerts == []
        assert figure5_system["av1"].stats.packets_processed == 0
        assert len(topo.hosts["dst1"].received_packets) >= 1

    def test_header_firewall_needs_no_dpi(self, figure5_system):
        """The L2-L4 firewall sits on chain 1 but never registered with
        the DPI service; it processes headers only."""
        topo = figure5_system["topo"]
        send(topo, "src1", "dst1", b"plain traffic", src_port=47004)
        assert figure5_system["firewall"].stats.packets_processed == 1

    def test_full_chain2_pipeline(self, figure5_system):
        topo = figure5_system["topo"]
        send(
            topo, "src2", "dst2",
            TS_SIG + b" " + AV_SIG, src_port=47005,
        )
        # The AV drops the infected packet before it reaches the shaper's
        # flow-classification... the shaper is after the AV on the chain.
        assert figure5_system["av1"].stats.packets_dropped == 1
        assert topo.hosts["dst2"].received_packets == []
        # A clean shaped flow classifies normally.
        send(topo, "src2", "dst2", TS_SIG + b" clean", src_port=47006)
        assert figure5_system["shaper"].flow_classes
