"""Unit tests for the regex pre-filter (Section 5.3)."""

import pytest

from repro.core.patterns import Pattern, PatternKind
from repro.core.regex import ANCHOR_ID_BASE, RegexPreFilter, split_matches


def regex_pattern(pattern_id, source):
    return Pattern(pattern_id=pattern_id, data=source, kind=PatternKind.REGEX)


class TestRegistration:
    def test_anchored_regex_produces_literals(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(0, rb"regular\s*expression"))
        assert sorted(p.data for p in literals) == [b"expression", b"regular"]
        assert all(p.pattern_id >= ANCHOR_ID_BASE for p in literals)
        assert prefilter.anchored_regexes(1) == [0]
        assert prefilter.fallback_regexes(1) == []

    def test_anchorless_regex_goes_to_fallback(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(0, rb"\d+\s\d+"))
        assert literals == []
        assert prefilter.fallback_regexes(1) == [0]

    def test_shared_anchor_reused(self):
        prefilter = RegexPreFilter()
        first = prefilter.add_regex(1, regex_pattern(0, rb"shared-anchor\d+"))
        second = prefilter.add_regex(1, regex_pattern(1, rb"shared-anchor[a-z]+"))
        assert len(first) == 1
        assert second == []  # anchor already registered

    def test_literal_pattern_rejected(self):
        prefilter = RegexPreFilter()
        with pytest.raises(ValueError):
            prefilter.add_regex(1, Pattern(0, b"literal"))

    def test_pattern_id_in_anchor_range_rejected(self):
        prefilter = RegexPreFilter()
        with pytest.raises(ValueError, match="reserved"):
            prefilter.add_regex(1, regex_pattern(ANCHOR_ID_BASE, rb"abcd\d"))

    def test_invalid_regex_raises(self):
        prefilter = RegexPreFilter()
        with pytest.raises(Exception):
            prefilter.add_regex(1, regex_pattern(0, rb"unbalanced("))


class TestRemoval:
    def test_remove_returns_obsolete_anchors(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(0, rb"only-anchor\d"))
        obsolete = prefilter.remove_regex(1, 0)
        assert obsolete == [literals[0].pattern_id]
        assert prefilter.anchored_regexes(1) == []

    def test_remove_keeps_shared_anchors(self):
        prefilter = RegexPreFilter()
        prefilter.add_regex(1, regex_pattern(0, rb"keep-anchor\d+"))
        prefilter.add_regex(1, regex_pattern(1, rb"keep-anchor[a-z]+"))
        obsolete = prefilter.remove_regex(1, 0)
        assert obsolete == []

    def test_remove_fallback(self):
        prefilter = RegexPreFilter()
        prefilter.add_regex(1, regex_pattern(0, rb"\d+"))
        assert prefilter.remove_regex(1, 0) == []
        assert prefilter.fallback_regexes(1) == []

    def test_remove_unknown_raises(self):
        prefilter = RegexPreFilter()
        with pytest.raises(KeyError):
            prefilter.remove_regex(1, 42)


class TestConfirmation:
    def test_confirm_runs_engine_when_all_anchors_matched(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(7, rb"regular\s*expression"))
        anchor_ids = {p.pattern_id for p in literals}
        payload = b"a regular   expression indeed"
        results = prefilter.confirm(1, payload, anchor_ids)
        assert results == [(7, payload.index(b"expression") + len(b"expression"))]

    def test_confirm_skips_when_anchor_missing(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(7, rb"regular\s*expression"))
        one_anchor = {literals[0].pattern_id}
        results = prefilter.confirm(1, b"regular expression", one_anchor)
        assert results == []
        assert prefilter.stats.confirmations_invoked == 0

    def test_confirm_anchors_present_but_regex_fails(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(7, rb"alpha\d+beta"))
        anchor_ids = {p.pattern_id for p in literals}
        # Both anchors appear but not in the regex's required arrangement.
        results = prefilter.confirm(1, b"beta then alpha", anchor_ids)
        assert results == []
        assert prefilter.stats.confirmations_invoked == 1
        assert prefilter.stats.confirmations_matched == 0

    def test_multiple_occurrences_all_reported(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(7, rb"occur\d"))
        anchor_ids = {p.pattern_id for p in literals}
        results = prefilter.confirm(1, b"occur1 and occur2", anchor_ids)
        assert len(results) == 2

    def test_fallback_scanned_every_packet(self):
        prefilter = RegexPreFilter()
        prefilter.add_regex(1, regex_pattern(3, rb"\d{4}"))
        assert prefilter.scan_fallback(1, b"year 2014 here") == [(3, 9)]
        assert prefilter.scan_fallback(1, b"no digits") == []
        assert prefilter.stats.fallback_scans == 2

    def test_has_regexes(self):
        prefilter = RegexPreFilter()
        assert not prefilter.has_regexes(1)
        prefilter.add_regex(1, regex_pattern(0, rb"\d+"))
        assert prefilter.has_regexes(1)

    def test_middleboxes_isolated(self):
        prefilter = RegexPreFilter()
        literals = prefilter.add_regex(1, regex_pattern(0, rb"isolated\d"))
        anchor_ids = {p.pattern_id for p in literals}
        assert prefilter.confirm(2, b"isolated5", anchor_ids) == []


class TestSplitMatches:
    def test_split(self):
        raw = [(3, 10), (ANCHOR_ID_BASE, 12), (5, 20), (ANCHOR_ID_BASE + 4, 30)]
        reportable, anchors = split_matches(raw)
        assert reportable == [(3, 10), (5, 20)]
        assert anchors == {ANCHOR_ID_BASE, ANCHOR_ID_BASE + 4}

    def test_split_empty(self):
        reportable, anchors = split_matches([])
        assert reportable == [] and anchors == set()


class TestNFAFallbackEngine:
    def test_nfa_engine_selected(self):
        prefilter = RegexPreFilter(fallback_engine="nfa")
        prefilter.add_regex(1, regex_pattern(0, rb"\d\d\d"))
        matches = prefilter.scan_fallback(1, b"code 404 here")
        assert matches == [(0, 8)]

    def test_nfa_reports_all_ends(self):
        prefilter = RegexPreFilter(fallback_engine="nfa")
        prefilter.add_regex(1, regex_pattern(0, rb"\d+"))
        ends = {end for _pid, end in prefilter.scan_fallback(1, b"x123")}
        # All-ends semantics: 1, 12, 123 all end matches.
        assert ends == {2, 3, 4}

    def test_unsupported_construct_falls_back_to_re(self):
        prefilter = RegexPreFilter(fallback_engine="nfa")
        # Lookahead: outside the NFA subset; stdlib engine handles it.
        prefilter.add_regex(1, regex_pattern(0, rb"(?=\d)\d\d"))
        assert prefilter.scan_fallback(1, b"ab 42") == [(0, 5)]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            RegexPreFilter(fallback_engine="dfa")

    def test_anchored_path_unaffected_by_engine(self):
        for engine in ("re", "nfa"):
            prefilter = RegexPreFilter(fallback_engine=engine)
            literals = prefilter.add_regex(
                1, regex_pattern(0, rb"needleanchor\d+")
            )
            anchor_ids = {p.pattern_id for p in literals}
            results = prefilter.confirm(1, b"a needleanchor77", anchor_ids)
            assert results == [(0, 16)]
