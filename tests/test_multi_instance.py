"""Integration: multiple service chains over multiple DPI instances.

The paper's Figure 3 scenario: two service chains for two traffic types;
with DPI as a service, flows are multiplexed across DPI instances, enabling
load balancing without adding middleboxes.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology

HTTP_SIG = b"GET /cgi-bin/exploit"
MAIL_SIG = b"VIRUS-ATTACHMENT-SIG"


@pytest.fixture
def multiplexed_system():
    topo = Topology()
    topo.add_switch("s1")
    for name in ("client", "web_server", "mail_server", "mb_ids", "mb_av",
                 "dpi_a", "dpi_b"):
        topo.add_host(name)
        topo.add_link("s1", name)
    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    ids = IntrusionDetectionSystem(middlebox_id=1)
    ids.add_signature(0, HTTP_SIG, severity="high")
    antivirus = AntiVirus(middlebox_id=2)
    antivirus.add_signature(0, MAIL_SIG)

    dpi_controller = DPIController()
    ids.register_with(dpi_controller)
    antivirus.register_with(dpi_controller)

    tsa.register_middlebox_instance("ids", "mb_ids")
    tsa.register_middlebox_instance("av", "mb_av")
    # Two DPI service instances: the TSA multiplexes chains across them.
    tsa.register_middlebox_instance("dpi", "dpi_a")
    tsa.register_middlebox_instance("dpi", "dpi_b")

    tsa.add_policy_chain(PolicyChain("http", ("ids",)))
    tsa.add_policy_chain(PolicyChain("mail", ("av",)))
    dpi_controller.attach_tsa(tsa)

    tsa.assign_traffic(
        TrafficAssignment("client", "web_server", "http", dst_port=80)
    )
    tsa.assign_traffic(
        TrafficAssignment("client", "mail_server", "mail", dst_port=25)
    )
    tsa.realize()

    instance_a = dpi_controller.instances.provision("dpi_a")
    instance_b = dpi_controller.instances.provision("dpi_b")
    topo.hosts["dpi_a"].set_function(DPIServiceFunction(instance_a))
    topo.hosts["dpi_b"].set_function(DPIServiceFunction(instance_b))
    topo.hosts["mb_ids"].set_function(MiddleboxChainFunction(ids))
    topo.hosts["mb_av"].set_function(MiddleboxChainFunction(antivirus))
    return {
        "topo": topo,
        "tsa": tsa,
        "ids": ids,
        "av": antivirus,
        "instances": (instance_a, instance_b),
    }


def send(topo, dst_name, dst_port, payload, src_port=50000):
    client = topo.hosts["client"]
    dst = topo.hosts[dst_name]
    packet = make_tcp_packet(
        client.mac, dst.mac, client.ip, dst.ip, src_port, dst_port,
        payload=payload,
    )
    client.send(packet)
    topo.run()
    return packet


class TestMultiplexing:
    def test_chains_land_on_different_instances(self, multiplexed_system):
        tsa = multiplexed_system["tsa"]
        hops_http = tsa.realized["http"].hop_hosts
        hops_mail = tsa.realized["mail"].hop_hosts
        dpi_hosts = {hops_http[0], hops_mail[0]}
        assert dpi_hosts == {"dpi_a", "dpi_b"}

    def test_each_instance_scans_only_its_chain(self, multiplexed_system):
        topo = multiplexed_system["topo"]
        send(topo, "web_server", 80, b"plain web request", src_port=50001)
        send(topo, "mail_server", 25, b"plain mail body", src_port=50002)
        scanned = [
            instance.telemetry.packets_scanned
            for instance in multiplexed_system["instances"]
        ]
        assert sorted(scanned) == [1, 1]

    def test_detection_works_on_both_chains(self, multiplexed_system):
        topo = multiplexed_system["topo"]
        send(topo, "web_server", 80, HTTP_SIG + b" HTTP/1.1", src_port=50003)
        send(topo, "mail_server", 25, b"body " + MAIL_SIG, src_port=50004)
        assert len(multiplexed_system["ids"].alerts) == 1
        assert multiplexed_system["av"].stats.packets_dropped == 1
        # Web traffic still delivered; infected mail dropped.
        assert len(topo.hosts["web_server"].received_packets) >= 1
        mail_data = [
            p
            for p in topo.hosts["mail_server"].received_packets
            if not p.is_result_packet
        ]
        assert mail_data == []

    def test_cross_chain_patterns_not_reported(self, multiplexed_system):
        """The mail signature in web traffic is matched by the combined
        automaton but filtered out for the chain's middlebox set... unless
        the chain includes the AV — here it does not."""
        topo = multiplexed_system["topo"]
        send(topo, "web_server", 80, b"web with " + MAIL_SIG, src_port=50005)
        assert multiplexed_system["av"].stats.packets_processed == 0
        assert multiplexed_system["ids"].alerts == []
        delivered = [
            p
            for p in topo.hosts["web_server"].received_packets
            if not p.is_result_packet
        ]
        assert len(delivered) == 1
