"""Unit tests for the scan-kernel layer (:mod:`repro.core.kernels`)."""

import pytest

from repro.core.combined import CombinedAutomaton
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.kernels import (
    KERNEL_NAMES,
    FlatTableKernel,
    RegexPrefilterKernel,
    ScanCache,
    make_kernel,
)
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile

LAYOUTS = ("sparse", "full")


def build(pattern_sets, layout="sparse", **kwargs):
    return CombinedAutomaton(
        {
            middlebox_id: [Pattern(i, data) for i, data in enumerate(patterns)]
            for middlebox_id, patterns in pattern_sets.items()
        },
        layout=layout,
        **kwargs,
    )


def results_of(automaton, payload, bitmap=None, state=None, limit=None):
    out = {}
    for name in KERNEL_NAMES:
        automaton.select_kernel(name)
        scan = automaton.scan(payload, bitmap, state, limit)
        out[name] = (scan.raw_matches, scan.end_state, scan.bytes_scanned)
    return out


def assert_identical(automaton, payload, bitmap=None, state=None, limit=None):
    out = results_of(automaton, payload, bitmap, state, limit)
    assert out["flat"] == out["reference"]
    assert out["regex"] == out["reference"]
    return out["reference"]


class TestKernelEquivalence:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_suffix_match_inside_longer_pattern(self, layout):
        automaton = build({1: [b"b", b"abc"]}, layout=layout)
        raw, _, _ = assert_identical(automaton, b"xabcx")
        positions = sorted(cnt for _, cnt in raw)
        assert positions == [3, 4]  # "b" ends at 3, "abc" at 4

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_prefix_and_full_pattern(self, layout):
        automaton = build({1: [b"ab", b"abc"]}, layout=layout)
        raw, _, _ = assert_identical(automaton, b"abc")
        assert sorted(cnt for _, cnt in raw) == [2, 3]

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_overlapping_occurrences(self, layout):
        automaton = build({1: [b"aa"]}, layout=layout)
        raw, _, _ = assert_identical(automaton, b"aaaa")
        assert sorted(cnt for _, cnt in raw) == [2, 3, 4]

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_limit_bounded_scan(self, layout):
        automaton = build({1: [b"attack"]}, layout=layout)
        for limit in (0, 3, 6, 9, 100):
            raw, _, scanned = assert_identical(
                automaton, b"an attack here", limit=limit
            )
            assert scanned == min(limit, 14)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_mid_flow_resume(self, layout):
        automaton = build({1: [b"attack"]}, layout=layout)
        payload = b"half an att" + b"ack continues"
        for cut in range(len(payload)):
            automaton.select_kernel("reference")
            mid = automaton.scan(payload[:cut]).end_state
            assert_identical(automaton, payload[cut:], state=mid)

    def test_active_bitmap_filters_identically(self):
        automaton = build({1: [b"shared", b"one"], 2: [b"shared", b"two"]})
        payload = b"one shared two"
        for bitmap in (None, 0, 1 << 1, 1 << 2, (1 << 1) | (1 << 2)):
            assert_identical(automaton, payload, bitmap=bitmap)

    def test_empty_pattern_set(self):
        automaton = build({1: []})
        raw, end, scanned = assert_identical(automaton, b"anything at all")
        assert raw == []
        assert end == automaton.root
        assert scanned == 15

    def test_empty_payload(self):
        automaton = build({1: [b"abc"]})
        raw, end, scanned = assert_identical(automaton, b"")
        assert raw == [] and scanned == 0

    def test_long_payload_exercises_unrolled_and_tail_loops(self):
        automaton = build({1: [b"needle"]})
        for tail in range(9):  # payload lengths across the 8-byte unroll
            payload = (b"x" * 64) + b"needle" + (b"y" * tail)
            raw, _, _ = assert_identical(automaton, payload)
            assert any(cnt == 70 for _, cnt in raw)  # the needle's end

    def test_regex_kernel_dense_anchor_payload_bails_correctly(self):
        # Every payload byte is an anchor byte: the prefilter must bail to
        # the flat path and still agree with the reference.
        automaton = build({1: [b"\xff\xfe", b"\xfe\xff"]})
        payload = b"\xff\xfe\xff\xfe\xff"
        assert_identical(automaton, payload)

    def test_regex_kernel_sparse_anchor_payload(self):
        automaton = build({1: [b"rare\x00sig"]})
        payload = b"printable filler " * 20 + b"rare\x00sig" + b" more filler"
        raw, _, _ = assert_identical(automaton, payload)
        assert len(raw) == 1

    def test_match_straddling_region_boundaries(self):
        # Anchor (\x00) sits mid-pattern; occurrences near payload edges.
        automaton = build({1: [b"ab\x00cd"]})
        for payload in (
            b"ab\x00cd",
            b"ab\x00cdab\x00cd",
            b"xxxxab\x00cd",
            b"ab\x00cdyyyy",
            b"\x00ab\x00cd\x00",
        ):
            assert_identical(automaton, payload)


class TestKernelSelection:
    def test_unknown_kernel_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            build({1: [b"abc"]}, kernel="turbo")

    def test_unknown_kernel_rejected_at_select(self):
        automaton = build({1: [b"abc"]})
        with pytest.raises(ValueError, match="unknown kernel"):
            automaton.select_kernel("turbo")

    def test_make_kernel_unknown_name(self):
        automaton = build({1: [b"abc"]})
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel(automaton, "turbo")

    def test_default_kernel_is_reference(self):
        assert build({1: [b"abc"]}).kernel_name == "reference"

    def test_kernel_name_tracks_selection(self):
        automaton = build({1: [b"abc"]})
        automaton.select_kernel("flat")
        assert automaton.kernel_name == "flat"

    def test_flat_table_shape(self):
        automaton = build({1: [b"ab"]}, layout="full")
        kernel = FlatTableKernel(automaton)
        assert len(kernel.flat_table) == automaton.num_states * 256

    def test_regex_kernel_anchor_bytes_cover_patterns(self):
        automaton = build({1: [b"abc\xffx", b"plain"]})
        kernel = RegexPrefilterKernel(automaton)
        assert any(bytes([b]) in b"abc\xffx" for b in kernel.anchor_bytes)

    def test_instance_config_validates_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            InstanceConfig(
                pattern_sets={1: []},
                profiles={1: MiddleboxProfile(1)},
                chain_map={},
                kernel="turbo",
            )

    def test_instance_config_validates_cache_size(self):
        with pytest.raises(ValueError, match="negative scan cache size"):
            InstanceConfig(
                pattern_sets={1: []},
                profiles={1: MiddleboxProfile(1)},
                chain_map={},
                scan_cache_size=-1,
            )


class TestScanCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ScanCache(0)
        with pytest.raises(ValueError):
            ScanCache(-3)

    def test_hit_and_miss_counters(self):
        cache = ScanCache(4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "capacity": 4,
        }

    def test_lru_eviction_order(self):
        cache = ScanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_clear_keeps_counters(self):
        cache = ScanCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_automaton_cache_round_trip(self):
        automaton = build({1: [b"attack"]}, kernel="flat", scan_cache_size=8)
        payload = b"an attack comes"
        first = automaton.scan(payload)
        second = automaton.scan(payload)
        assert first.raw_matches == second.raw_matches
        assert first.end_state == second.end_state
        assert automaton.scan_cache.stats()["hits"] == 1

    def test_cache_key_includes_scan_parameters(self):
        automaton = build(
            {1: [b"attack"], 2: [b"attack"]}, kernel="flat", scan_cache_size=8
        )
        payload = b"an attack comes"
        automaton.scan(payload, automaton.bitmask_of([1]))
        automaton.scan(payload, automaton.bitmask_of([2]))
        automaton.scan(payload, limit=4)
        assert automaton.scan_cache.stats()["hits"] == 0

    def test_cached_result_matches_uncached(self):
        cached = build({1: [b"aa"]}, kernel="flat", scan_cache_size=4)
        plain = build({1: [b"aa"]}, kernel="flat")
        payload = b"aaaa"
        cached.scan(payload)
        hit = cached.scan(payload)
        direct = plain.scan(payload)
        assert hit.raw_matches == direct.raw_matches
        assert hit.end_state == direct.end_state
        assert hit.bytes_scanned == direct.bytes_scanned

    def test_select_kernel_clears_cache(self):
        automaton = build({1: [b"aa"]}, kernel="flat", scan_cache_size=4)
        automaton.scan(b"aaaa")
        automaton.select_kernel("reference")
        assert len(automaton.scan_cache) == 0

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            build({1: [b"aa"]}, scan_cache_size=-1)


def make_instance_config(kernel, scan_cache_size=0, stateful=False):
    from repro.core.patterns import PatternKind

    return InstanceConfig(
        pattern_sets={
            1: [
                Pattern(0, b"attack"),
                Pattern(1, rb"regular\s*expression", kind=PatternKind.REGEX),
            ],
            2: [Pattern(0, b"virus123")],
        },
        profiles={
            1: MiddleboxProfile(1, name="ids", stateful=stateful),
            2: MiddleboxProfile(2, name="av", stateful=stateful),
        },
        chain_map={100: (1, 2)},
        kernel=kernel,
        scan_cache_size=scan_cache_size,
    )


class TestInstanceKernels:
    PAYLOADS = [
        b"an attack with a regular expression and virus123",
        b"clean traffic",
        b"virus123 virus123",
        b"",
    ]

    def test_instance_output_identical_across_kernels(self):
        instances = {
            name: DPIServiceInstance(make_instance_config(name))
            for name in KERNEL_NAMES
        }
        for payload in self.PAYLOADS:
            outputs = {
                name: instance.inspect(payload, chain_id=100)
                for name, instance in instances.items()
            }
            reference = outputs["reference"]
            for name in ("flat", "regex"):
                assert outputs[name].matches == reference.matches
                assert (
                    outputs[name].report.encode() == reference.report.encode()
                )

    def test_stateful_flow_identical_across_kernels(self):
        instances = {
            name: DPIServiceInstance(make_instance_config(name, stateful=True))
            for name in KERNEL_NAMES
        }
        chunks = [b"a split att", b"ack arrives", b" with virus", b"123 too"]
        for index, chunk in enumerate(chunks):
            outputs = {
                name: instance.inspect(chunk, chain_id=100, flow_key="flow-1")
                for name, instance in instances.items()
            }
            reference = outputs["reference"]
            for name in ("flat", "regex"):
                assert outputs[name].matches == reference.matches, (index, name)

    def test_instance_kernel_knob_reaches_automaton(self):
        instance = DPIServiceInstance(make_instance_config("regex"))
        assert instance.automaton.kernel_name == "regex"
        assert instance.config.kernel == "regex"

    def test_inspect_batch_matches_sequential_inspect(self):
        batch_instance = DPIServiceInstance(make_instance_config("flat"))
        loop_instance = DPIServiceInstance(make_instance_config("flat"))
        batched = batch_instance.inspect_batch(self.PAYLOADS, chain_id=100)
        looped = [loop_instance.inspect(p, chain_id=100) for p in self.PAYLOADS]
        assert [b.matches for b in batched] == [s.matches for s in looped]
        assert batch_instance.telemetry.packets_scanned == len(self.PAYLOADS)

    def test_inspect_batch_with_flow_keys(self):
        instance = DPIServiceInstance(make_instance_config("flat", stateful=True))
        chunks = [b"a split att", b"ack arrives"]
        outputs = instance.inspect_batch(chunks, chain_id=100, flow_keys=["f", "f"])
        assert outputs[1].matches[1] == [(0, 14)]  # cross-packet match

    def test_inspect_batch_flow_key_length_mismatch(self):
        instance = DPIServiceInstance(make_instance_config("flat"))
        with pytest.raises(ValueError, match="flow_keys length"):
            instance.inspect_batch([b"a", b"b"], chain_id=100, flow_keys=["only-one"])

    def test_scan_cache_stats_exposed(self):
        instance = DPIServiceInstance(make_instance_config("flat"))
        assert instance.scan_cache_stats() is None
        cached = DPIServiceInstance(
            make_instance_config("flat", scan_cache_size=16)
        )
        cached.inspect(b"an attack", chain_id=100)
        cached.inspect(b"an attack", chain_id=100)
        stats = cached.scan_cache_stats()
        assert stats["hits"] >= 1
