"""Static config validators: every issue code fires, entry points gate.

Each validator is checked both ways: a well-formed object yields no
issues, and a specifically broken one yields exactly the expected code.
The entry-point tests pin the ``validate=True`` defaults on
``TrafficSteeringApplication.realize`` and ``DPIController.create_instance``.
"""

import pytest

from repro.analysis.validators import (
    Severity,
    ValidationError,
    errors_in,
    format_issues,
    raise_on_errors,
    validate_chains,
    validate_flow_tables,
    validate_instance_config,
    validate_pattern_list,
    validate_pattern_registry,
    validate_scenario,
    validate_steering,
    validate_topology,
)
from repro.core.controller import DPIController
from repro.core.instance import InstanceConfig
from repro.core.messages import RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.net.controller import SDNController
from repro.net.openflow import FlowAction, FlowMatch
from repro.net.steering import (
    PolicyChain,
    RealizedChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology
from repro.telemetry.scenario import run_figure5_scenario


def codes(issues):
    return [issue.code for issue in issues]


def build_tsa():
    topo = Topology()
    for switch in ("s1", "s2"):
        topo.add_switch(switch)
    topo.add_link("s1", "s2")
    for host, switch in (("src", "s1"), ("dst", "s2"), ("mb", "s2")):
        topo.add_host(host)
        topo.add_link(switch, host)
    tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)
    tsa.register_middlebox_instance("ids", "mb")
    return topo, tsa


# --- topology ---------------------------------------------------------------

def test_connected_topology_is_clean():
    topo, _ = build_tsa()
    assert validate_topology(topo) == []


def test_isolated_node_and_disconnection_are_flagged():
    topo, _ = build_tsa()
    topo.add_switch("lonely")
    issues = validate_topology(topo)
    assert codes(issues) == ["TOPO001", "TOPO002"]
    assert issues[0].subject == "lonely"
    assert all(issue.severity is Severity.ERROR for issue in issues)


def test_duplicate_host_ip_is_flagged():
    topo, _ = build_tsa()
    clone = topo.add_host("clone", ip=topo.hosts["src"].ip)
    topo.add_link("s1", "clone")
    assert clone.ip == topo.hosts["src"].ip
    issues = validate_topology(topo)
    assert codes(issues) == ["TOPO003"]
    assert "src" in issues[0].subject and "clone" in issues[0].subject


# --- chains -----------------------------------------------------------------

def test_well_formed_chain_is_clean():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    assert validate_chains(tsa) == []


def test_unregistered_middlebox_type_is_chain001():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ghost-type",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    issues = validate_chains(tsa)
    assert codes(issues) == ["CHAIN001"]
    assert "ghost-type" in issues[0].message


def test_overlapping_tag_blocks_are_chain002():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("a", ("ids",), chain_id=100))
    # Tag block (100, 101) vs (101, 102): segment tags collide at 101.
    tsa.chains["b"] = PolicyChain("b", ("ids",), chain_id=101)
    tsa.assign_traffic(TrafficAssignment("src", "dst", "a"))
    tsa.assignments.append(TrafficAssignment("src", "dst", "b"))
    issues = validate_chains(tsa)
    assert codes(issues) == ["CHAIN002"]
    assert "a,b" == issues[0].subject


def test_disjoint_tag_blocks_are_clean():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("a", ("ids",)))
    tsa.add_policy_chain(PolicyChain("b", ("ids",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "a"))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "b"))
    assert validate_chains(tsa) == []


def test_unknown_assignment_host_is_chain003():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    tsa.assignments.append(TrafficAssignment("nowhere", "dst", "c"))
    issues = validate_chains(tsa)
    assert codes(issues) == ["CHAIN003"]
    assert "nowhere" in issues[0].message


def test_unassigned_chain_is_a_warning_only():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    issues = validate_chains(tsa)
    assert codes(issues) == ["CHAIN004"]
    assert errors_in(issues) == []


def test_unallocated_chain_id_is_a_warning_only():
    _, tsa = build_tsa()
    tsa.chains["c"] = PolicyChain("c", ("ids",))  # bypasses allocation
    tsa.assignments.append(TrafficAssignment("src", "dst", "c"))
    issues = validate_chains(tsa)
    assert codes(issues) == ["CHAIN005"]
    assert errors_in(issues) == []


# --- steering / flow tables -------------------------------------------------

def test_realized_rules_pass_steering_checks():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    tsa.realize()
    assert validate_steering(tsa) == []
    assert errors_in(validate_flow_tables(tsa.topology)) == []


def test_orphan_vlan_rule_is_steer001():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    tsa.realize()
    tsa.controller.install(
        "s1", FlowMatch(in_port=1, vlan_vid=999),
        [FlowAction.output(2)], priority=200,
    )
    issues = validate_steering(tsa)
    assert codes(issues) == ["STEER001"]
    assert "999" in issues[0].message


def test_unpushed_ingress_tag_is_steer002():
    _, tsa = build_tsa()
    chain = tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    # Mark the chain realized without installing any rule: the ingress
    # tag is never pushed anywhere.
    tsa.realized["c"] = RealizedChain(chain=chain, hop_hosts=("mb",))
    issues = validate_steering(tsa)
    assert codes(issues) == ["STEER002"]
    assert str(chain.chain_id) in issues[0].message


def test_duplicate_flow_rule_is_flow002():
    topo, tsa = build_tsa()
    for _ in range(2):
        tsa.controller.install(
            "s1", FlowMatch(in_port=4, vlan_vid=250),
            [FlowAction.output(1)], priority=200,
        )
    issues = validate_flow_tables(topo)
    assert codes(issues) == ["FLOW002"]
    assert issues[0].severity is Severity.ERROR


def test_same_priority_overlap_is_flow001_warning():
    topo, tsa = build_tsa()
    tsa.controller.install(
        "s1", FlowMatch(in_port=4), [FlowAction.output(1)], priority=200
    )
    tsa.controller.install(
        "s1", FlowMatch(vlan_vid=250), [FlowAction.output(2)], priority=200
    )
    issues = validate_flow_tables(topo)
    assert codes(issues) == ["FLOW001"]
    assert errors_in(issues) == []


def test_disjoint_rules_at_same_priority_are_clean():
    topo, tsa = build_tsa()
    tsa.controller.install(
        "s1", FlowMatch(in_port=1), [FlowAction.output(2)], priority=200
    )
    tsa.controller.install(
        "s1", FlowMatch(in_port=2), [FlowAction.output(1)], priority=200
    )
    assert validate_flow_tables(topo) == []


# --- patterns ---------------------------------------------------------------

def test_pattern_list_duplicates_and_empties():
    issues = validate_pattern_list([b"alpha", b"", b"alpha"])
    assert codes(issues) == ["PAT002", "PAT001"]
    empty, duplicate = issues
    assert empty.severity is Severity.ERROR
    assert duplicate.severity is Severity.WARNING
    assert "pattern[0]" in duplicate.message


def test_pattern_list_accepts_pattern_objects():
    patterns = [Pattern(0, b"alpha"), Pattern(1, b"beta")]
    assert validate_pattern_list(patterns) == []


def test_empty_middlebox_pattern_set_is_pat003():
    controller = DPIController()
    controller.handle_message(RegisterMiddleboxMessage(1, "idle-ids"))
    issues = validate_pattern_registry(controller)
    assert codes(issues) == ["PAT003"]
    assert errors_in(issues) == []


# --- instance config --------------------------------------------------------

def make_config(chain_map):
    return InstanceConfig(
        pattern_sets={1: [Pattern(0, b"sig")]},
        profiles={1: MiddleboxProfile(1, name="ids")},
        chain_map=chain_map,
    )


def test_consistent_instance_config_is_clean():
    assert validate_instance_config(make_config({100: (1,)})) == []


def test_chain_map_with_unknown_middlebox_is_cfg001():
    issues = validate_instance_config(make_config({100: (1, 9)}))
    assert codes(issues) == ["CFG001"]
    assert "middlebox 9" in issues[0].message


# --- error type & formatting ------------------------------------------------

def test_validation_error_is_keyerror_and_valueerror():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ghost-type",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    with pytest.raises(ValidationError) as excinfo:
        tsa.realize()
    error = excinfo.value
    assert isinstance(error, KeyError)
    assert isinstance(error, ValueError)
    assert codes(error.issues) == ["CHAIN001"]
    # str() yields the readable report, not KeyError's repr of it.
    assert "CHAIN001" in str(error)
    assert "\\n" not in str(error)


def test_raise_on_errors_ignores_warnings():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ids",)))
    issues = validate_chains(tsa)
    assert codes(issues) == ["CHAIN004"]
    raise_on_errors(issues)  # warnings only: no raise


def test_format_issues_orders_errors_first_and_counts():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("good", ("ids",)))
    tsa.chains["bad"] = PolicyChain("bad", ("ghost-type",), chain_id=900)
    report = format_issues(validate_chains(tsa))
    lines = report.splitlines()
    assert lines[0].startswith("ERROR")
    assert lines[-1] == "1 error(s), 2 warning(s)"


# --- entry-point wiring -----------------------------------------------------

def test_realize_validates_by_default_and_can_opt_out():
    _, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ghost-type",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    with pytest.raises(ValidationError):
        tsa.realize()
    # Opting out defers the failure to physical resolution, as before.
    with pytest.raises(KeyError):
        tsa.realize(validate=False)


def test_realize_validation_blocks_before_any_rule_is_installed():
    topo, tsa = build_tsa()
    tsa.add_policy_chain(PolicyChain("c", ("ghost-type",)))
    tsa.assign_traffic(TrafficAssignment("src", "dst", "c"))
    with pytest.raises(ValidationError):
        tsa.realize()
    assert all(len(list(s.table)) == 0 for s in topo.switches.values())


def test_create_instance_validates_its_config():
    controller = DPIController()
    controller.handle_message(RegisterMiddleboxMessage(1, "ids"))
    controller.policy_chains_changed(
        {"c": PolicyChain("c", ("ids",), chain_id=100)}
    )
    instance = controller.instances.provision("ok")
    assert instance.config.chain_map == {100: (1,)}


# --- whole-scenario aggregation ---------------------------------------------

def test_figure5_scenario_validates_clean():
    result = run_figure5_scenario(packets=0, telemetry=False)
    issues = validate_scenario(
        topology=result.topology,
        tsa=result.tsa,
        controller=result.dpi_controller,
    )
    assert errors_in(issues) == []


def test_validate_scenario_sections_are_optional():
    topo, tsa = build_tsa()
    topo.add_switch("lonely")
    assert codes(validate_scenario(topology=topo)) == ["TOPO001", "TOPO002"]
    assert validate_scenario() == []
