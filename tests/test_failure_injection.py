"""Failure-injection tests: lost/duplicated/reordered packets and malformed
control traffic must not wedge the system."""

import pytest

from repro.core.controller import DPIController
from repro.core.messages import (
    AddPatternsMessage,
    ControlMessage,
    RegisterMiddleboxMessage,
    RemovePatternsMessage,
)
from repro.core.patterns import Pattern
from repro.core.reports import MatchReport
from repro.middleboxes.base import Action, DPIServiceMiddlebox, MiddleboxChainFunction
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.nsh import build_result_packet
from repro.net.packet import make_tcp_packet


def make_packet(payload=b"data", src_port=1000):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        src_port,
        80,
        payload=payload,
    )


def make_middlebox():
    middlebox = DPIServiceMiddlebox(middlebox_id=7)
    middlebox.add_literal_rule(0, b"evil", action=Action.ALERT)
    return middlebox


class TestLostResultPackets:
    def test_buffer_cap_fails_open(self):
        """Data packets whose result packets were lost are eventually
        released with no matches instead of buffering forever."""
        function = MiddleboxChainFunction(make_middlebox(), max_pending=5)
        released_total = []
        for index in range(20):
            packet = make_packet(b"evil payload", src_port=2000 + index)
            packet.mark_matched()
            released_total.extend(function.process(packet))
        assert len(function._pending_data) <= 5
        assert function.forced_releases == 15
        assert len(released_total) == 15
        # Forced releases carry no report, so no alert fired for them.
        assert function.middlebox.stats.alerts == 0

    def test_orphan_reports_capped(self):
        function = MiddleboxChainFunction(make_middlebox(), max_pending=3)
        for index in range(10):
            data = make_packet(b"evil", src_port=3000 + index)
            data.mark_matched()
            report = MatchReport.from_matches({7: [(0, 4)]})
            function.process(build_result_packet(data, report))
        assert len(function._pending_reports) <= 3
        assert function.dropped_orphan_reports == 7

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxChainFunction(make_middlebox(), max_pending=0)

    def test_late_result_after_forced_release_is_discarded_cleanly(self):
        function = MiddleboxChainFunction(make_middlebox(), max_pending=1)
        first = make_packet(b"evil one", src_port=4000)
        first.mark_matched()
        function.process(first)
        second = make_packet(b"evil two", src_port=4001)
        second.mark_matched()
        function.process(second)  # forces `first` out, matchless
        # The late report for `first` now has no data packet; it waits in
        # the orphan buffer and is eventually capped — no crash, no leak.
        report = MatchReport.from_matches({7: [(0, 4)]})
        out = function.process(build_result_packet(first, report))
        assert out == []
        assert first.packet_id in function._pending_reports


class TestDuplicateDelivery:
    def test_duplicate_result_packet_is_harmless(self):
        function = MiddleboxChainFunction(make_middlebox())
        data = make_packet(b"evil here", src_port=5000)
        data.mark_matched()
        function.process(data)
        report = MatchReport.from_matches({7: [(0, 4)]})
        result = build_result_packet(data, report)
        first_out = function.process(result)
        assert data in first_out
        # The duplicate finds no pending data; it is buffered as an orphan
        # (and later capped), never double-processed.
        alerts_before = function.middlebox.stats.alerts
        function.process(result.copy())
        assert function.middlebox.stats.alerts == alerts_before


class TestMalformedControlTraffic:
    def test_garbage_json_rejected_without_state_change(self):
        controller = DPIController()
        with pytest.raises(ValueError):
            controller.handle_message("{not json")
        with pytest.raises(ValueError):
            ControlMessage.from_json('{"no": "type"}')
        assert controller.middlebox_ids == []

    def test_failed_pattern_add_leaves_no_partial_state(self):
        controller = DPIController()
        controller.handle_message(RegisterMiddleboxMessage(1, "ids"))
        controller.handle_message(
            AddPatternsMessage(1, [Pattern(0, b"keeper-sig")])
        )
        # Second batch contains a duplicate id: the message fails...
        ack = controller.handle_message(
            AddPatternsMessage(1, [Pattern(0, b"duplicate-id")])
        )
        assert not ack.ok
        # ...and the original pattern is intact.
        assert controller.pattern_set_of(1).get(0).data == b"keeper-sig"
        assert len(controller.registry) == 1

    def test_remove_unknown_pattern_acks_failure(self):
        controller = DPIController()
        controller.handle_message(RegisterMiddleboxMessage(1, "ids"))
        ack = controller.handle_message(RemovePatternsMessage(1, [99]))
        assert not ack.ok

    def test_malformed_report_payload_fails_open(self):
        """A corrupt result packet must not wedge or crash the chain: the
        data packet is processed matchless and forwarded, the report is
        discarded, and the match mark is cleared so downstream middleboxes
        do not buffer for a report that no longer exists."""
        middlebox = make_middlebox()
        bogus = make_packet(b"\xde\xad\xbe\xef")
        bogus.describes_packet_id = 1
        function = MiddleboxChainFunction(middlebox)
        data = make_packet(b"evil")
        data.mark_matched()
        bogus.describes_packet_id = data.packet_id
        function.process(data)
        forwarded = function.process(bogus)
        assert forwarded == [data]
        assert not data.is_marked_matched
        assert function.corrupt_reports == 1
        assert function._pending_data == {}
