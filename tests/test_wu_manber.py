"""Unit and property tests for the Wu-Manber matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aho_corasick import AhoCorasick
from repro.core.wu_manber import WuManber
from tests.conftest import naive_find_all


class TestBasics:
    def test_single_pattern(self):
        wm = WuManber([b"needle"])
        assert wm.scan(b"hay needle hay needle") == [(10, 0), (21, 0)]

    def test_no_match(self):
        wm = WuManber([b"needle"])
        assert wm.scan(b"just hay here") == []

    def test_short_input(self):
        wm = WuManber([b"needle"])
        assert wm.scan(b"nee") == []
        assert wm.scan(b"") == []

    def test_multiple_patterns(self):
        wm = WuManber([b"alpha", b"beta", b"phabet"])
        matches = wm.scan(b"alphabet")
        assert (5, 0) in matches  # alpha
        assert (8, 2) in matches  # phabet

    def test_overlapping_occurrences(self):
        wm = WuManber([b"aba"])
        assert wm.scan(b"ababa") == [(3, 0), (5, 0)]

    def test_patterns_of_different_lengths(self):
        wm = WuManber([b"ab", b"abcdef"])
        matches = wm.scan(b"abcdef")
        assert (2, 0) in matches
        assert (6, 1) in matches

    def test_duplicate_patterns_both_reported(self):
        wm = WuManber([b"dup!", b"dup!"])
        assert wm.scan(b"xdup!") == [(5, 0), (5, 1)]

    def test_match_at_start_and_end(self):
        wm = WuManber([b"edge"])
        assert wm.scan(b"edge...edge") == [(4, 0), (11, 0)]

    def test_binary_patterns(self):
        wm = WuManber([b"\x00\xff\x00\x01"])
        assert wm.scan(b"zz\x00\xff\x00\x01zz") == [(6, 0)]


class TestValidation:
    def test_empty_pattern_list_rejected(self):
        with pytest.raises(ValueError):
            WuManber([])

    def test_too_short_pattern_rejected(self):
        with pytest.raises(ValueError):
            WuManber([b"a"])

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            WuManber([b"abcd"], block_size=0)

    def test_table_sizes_exposed(self):
        wm = WuManber([b"abcd", b"bcde"])
        shift_entries, hash_entries = wm.table_sizes
        assert shift_entries > 0
        assert hash_entries > 0


class TestAgainstAhoCorasick:
    def test_same_matches_on_fixed_case(self, snort_like_small):
        patterns = snort_like_small[:100]
        text = b"".join(patterns[:10]) + b"filler" + patterns[0]
        wm = WuManber(patterns)
        ac = AhoCorasick(patterns)
        assert wm.scan(text) == sorted(ac.scan(text)[0])


def _to_bytes(raw):
    return bytes(b % 3 + 0x41 for b in raw)


pattern = st.binary(min_size=2, max_size=6).map(_to_bytes)
patterns_strategy = st.lists(pattern, min_size=1, max_size=8, unique=True)
text_strategy = st.binary(min_size=0, max_size=60).map(_to_bytes)


@given(patterns=patterns_strategy, text=text_strategy)
@settings(max_examples=200, deadline=None)
def test_wu_manber_matches_oracle(patterns, text):
    wm = WuManber(patterns)
    assert wm.scan(text) == naive_find_all(patterns, text)


@given(patterns=patterns_strategy, text=text_strategy)
@settings(max_examples=100, deadline=None)
def test_wu_manber_equals_aho_corasick(patterns, text):
    wm = WuManber(patterns)
    ac = AhoCorasick(patterns)
    assert wm.scan(text) == sorted(ac.scan(text)[0])
