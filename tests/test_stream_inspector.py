"""Integration tests for the stream inspector (reassemble + decompress +
scan once)."""

import gzip

import pytest

from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.core.stream import StreamInspector
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet

CHAIN = 100
SIGNATURE = b"exfil-marker-42"


def make_instance(stateful=True):
    return DPIServiceInstance(
        InstanceConfig(
            pattern_sets={1: [Pattern(0, SIGNATURE)]},
            profiles={1: MiddleboxProfile(1, name="dlp", stateful=stateful)},
            chain_map={CHAIN: (1,)},
        )
    )


def packet(seq, data, src_port=4000):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        src_port,
        443,
        payload=data,
        seq=seq,
    )


class TestRawStreams:
    def test_in_order_detection(self):
        inspector = StreamInspector(make_instance())
        result = inspector.process_packet(packet(0, b"x" + SIGNATURE), CHAIN)
        assert result.has_matches
        assert result.all_matches()[1] == [(0, 1 + len(SIGNATURE))]

    def test_signature_across_segments(self):
        inspector = StreamInspector(make_instance())
        half = len(SIGNATURE) // 2
        first = inspector.process_packet(packet(0, SIGNATURE[:half]), CHAIN)
        assert not first.has_matches
        second = inspector.process_packet(
            packet(half, SIGNATURE[half:]), CHAIN
        )
        assert second.has_matches

    def test_out_of_order_segments_detected(self):
        inspector = StreamInspector(make_instance())
        stream = b"prefix " + SIGNATURE + b" suffix"
        anchor = inspector.process_packet(packet(0, stream[:4]), CHAIN)
        late = inspector.process_packet(packet(12, stream[12:]), CHAIN)
        assert not late.has_matches  # still waiting for the gap
        assert late.released_bytes == 0
        fill = inspector.process_packet(packet(4, stream[4:12]), CHAIN)
        assert fill.released_bytes == len(stream) - 4
        assert fill.has_matches

    def test_flows_do_not_mix(self):
        inspector = StreamInspector(make_instance())
        half = len(SIGNATURE) // 2
        inspector.process_packet(packet(0, SIGNATURE[:half], src_port=1), CHAIN)
        other = inspector.process_packet(
            packet(half, SIGNATURE[half:], src_port=2), CHAIN
        )
        assert not other.has_matches


class TestDecompression:
    def test_signature_inside_gzip_found(self):
        inspector = StreamInspector(make_instance())
        payload = b"HDR " + gzip.compress(b"body " + SIGNATURE + b" end")
        result = inspector.process_packet(packet(0, payload), CHAIN)
        assert result.has_matches
        kinds = [kind for kind, _ in result.outputs]
        assert "raw" in kinds
        assert any(kind.startswith("gzip@") for kind in kinds)

    def test_decompression_disabled(self):
        inspector = StreamInspector(make_instance(), decompress=False)
        payload = gzip.compress(SIGNATURE)
        result = inspector.process_packet(packet(0, payload), CHAIN)
        assert not result.has_matches
        assert [kind for kind, _ in result.outputs] == ["raw"]

    def test_gzip_view_state_isolated_from_raw(self):
        """Matches in a compressed region must not poison the raw stream's
        DFA state (separate flow keys per view)."""
        inspector = StreamInspector(make_instance())
        part = gzip.compress(b"z" + SIGNATURE)
        inspector.process_packet(packet(0, b"AB" + part), CHAIN)
        follow = inspector.process_packet(
            packet(2 + len(part), b"clean tail"), CHAIN
        )
        assert not follow.has_matches


class TestLifecycle:
    def test_close_flow_drops_state(self):
        inspector = StreamInspector(make_instance())
        half = len(SIGNATURE) // 2
        result = inspector.process_packet(packet(0, SIGNATURE[:half]), CHAIN)
        inspector.close_flow(result.flow_key)
        # After closing, the continuation does not complete the match (the
        # stream anchors afresh at the next segment's sequence number).
        second = inspector.process_packet(
            packet(half, SIGNATURE[half:]), CHAIN
        )
        assert not second.has_matches

    def test_empty_segment_releases_nothing(self):
        inspector = StreamInspector(make_instance())
        result = inspector.process_packet(packet(0, b""), CHAIN)
        assert result.released_bytes == 0
        assert result.outputs == []
