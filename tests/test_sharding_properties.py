"""Property-based shard-equivalence harness (the tentpole's contract).

Sharding renumbers raw accepting states, so equivalence with the monolithic
automaton is asserted at the resolved-match level: for every random pattern
set, payload, shard count K in 1..8, per-shard kernel family and execution
backend, the sharded scan must produce exactly the monolithic reference
kernel's resolved ``(middlebox, pattern id, position)`` set — under
``active_bitmap`` masking, ``limit`` cutoffs, and mid-flow resumes through
each automaton's own end state.  A second property checks the same at the
instance level, where matches become middlebox reports.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.combined import CombinedAutomaton
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.kernels import KERNEL_NAMES
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.core.sharding import ShardedAutomaton
from repro.net.reassembly import OVERLAP_POLICIES, StreamReassembler

# The kernel property suite's overlap-heavy alphabet (shared prefixes and
# suffix matches stress the merge order; \x00 stresses regex anchors).
ALPHABET = list(b"ab\x00c")

pattern_bytes = st.builds(
    bytes, st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=6)
)
pattern_lists = st.lists(pattern_bytes, min_size=1, max_size=8)
payloads = st.builds(
    bytes, st.lists(st.sampled_from(ALPHABET), min_size=0, max_size=96)
)


def build_pattern_sets(patterns, second_set):
    sets = {1: [Pattern(i, p) for i, p in enumerate(patterns)]}
    if second_set:
        sets[2] = [Pattern(i, p) for i, p in enumerate(second_set)]
    return sets


def resolved_matches(automaton, result, bitmap):
    """Raw matches resolved into comparable (middlebox, pattern, cnt) rows."""
    rows = []
    for state, cnt in result.raw_matches:
        for middlebox_id, pattern_id in automaton.resolve(state, bitmap):
            rows.append((middlebox_id, pattern_id, cnt))
    return sorted(rows)


def pick_bitmap(automaton, choice):
    return {
        "all": None,
        "everything": automaton.all_middleboxes_bitmap,
        "first": automaton.bitmask_of([1]),
        "zero": 0,
    }[choice]


@settings(max_examples=100, deadline=None)
@given(
    patterns=pattern_lists,
    second_set=st.one_of(st.just([]), pattern_lists),
    payload=payloads,
    num_shards=st.integers(min_value=1, max_value=8),
    shard_kernel=st.sampled_from(KERNEL_NAMES),
    strategy=st.sampled_from(("cost", "size")),
    bitmap_choice=st.sampled_from(("all", "everything", "first", "zero")),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_sharded_matches_monolithic_serial(
    patterns,
    second_set,
    payload,
    num_shards,
    shard_kernel,
    strategy,
    bitmap_choice,
    limit,
    cut_fraction,
):
    sets = build_pattern_sets(patterns, second_set)
    monolithic = CombinedAutomaton(sets, kernel="reference")
    sharded = ShardedAutomaton(
        sets, num_shards, shard_kernel=shard_kernel, strategy=strategy
    )
    mono_bitmap = pick_bitmap(monolithic, bitmap_choice)
    shard_bitmap = pick_bitmap(sharded, bitmap_choice)
    effective = (
        monolithic.all_middleboxes_bitmap if mono_bitmap is None else mono_bitmap
    )

    mono = monolithic.scan(payload, mono_bitmap, None, limit)
    shard = sharded.scan(payload, shard_bitmap, None, limit)
    assert resolved_matches(sharded, shard, effective) == resolved_matches(
        monolithic, mono, effective
    )
    assert shard.bytes_scanned == mono.bytes_scanned

    # Mid-flow resume through each automaton's own end-state encoding.
    cut = int(len(payload) * cut_fraction)
    mono_state = monolithic.scan(payload[:cut]).end_state
    shard_state = sharded.scan(payload[:cut]).end_state
    mono2 = monolithic.scan(payload[cut:], mono_bitmap, mono_state, limit)
    shard2 = sharded.scan(payload[cut:], shard_bitmap, shard_state, limit)
    assert resolved_matches(sharded, shard2, effective) == resolved_matches(
        monolithic, mono2, effective
    )
    assert shard2.bytes_scanned == mono2.bytes_scanned


@pytest.mark.parametrize("backend", ("process", "zerocopy"))
@settings(max_examples=10, deadline=None)
@given(
    patterns=pattern_lists,
    payload=payloads,
    num_shards=st.integers(min_value=1, max_value=4),
    shard_kernel=st.sampled_from(KERNEL_NAMES),
    bitmap_choice=st.sampled_from(("all", "first", "zero")),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
)
def test_sharded_matches_monolithic_pooled(
    backend, patterns, payload, num_shards, shard_kernel, bitmap_choice, limit
):
    # Few examples: every example spins up (and drains) a real worker pool
    # (or, for zerocopy, a shared-memory arena plus persistent workers).
    sets = build_pattern_sets(patterns, [])
    monolithic = CombinedAutomaton(sets, kernel="reference")
    sharded = ShardedAutomaton(
        sets, num_shards, shard_kernel=shard_kernel, backend=backend
    )
    try:
        mono_bitmap = pick_bitmap(monolithic, bitmap_choice)
        shard_bitmap = pick_bitmap(sharded, bitmap_choice)
        effective = (
            monolithic.all_middleboxes_bitmap
            if mono_bitmap is None
            else mono_bitmap
        )
        mono = monolithic.scan(payload, mono_bitmap, None, limit)
        shard = sharded.scan(payload, shard_bitmap, None, limit)
        assert resolved_matches(
            sharded, shard, effective
        ) == resolved_matches(monolithic, mono, effective)
        assert shard.bytes_scanned == mono.bytes_scanned
        # Mid-flow resume through the zerocopy descriptors' state field.
        cut = len(payload) // 2
        first = sharded.scan(payload[:cut]).end_state
        mono_first = monolithic.scan(payload[:cut]).end_state
        shard2 = sharded.scan(payload[cut:], shard_bitmap, first, limit)
        mono2 = monolithic.scan(payload[cut:], mono_bitmap, mono_first, limit)
        assert resolved_matches(
            sharded, shard2, effective
        ) == resolved_matches(monolithic, mono2, effective)
        assert sharded.pool_fallbacks == 0
    finally:
        sharded.shutdown()


@settings(max_examples=6, deadline=None)
@given(
    patterns=pattern_lists,
    batch=st.lists(payloads, min_size=2, max_size=8),
    num_shards=st.integers(min_value=1, max_value=4),
    shard_kernel=st.sampled_from(KERNEL_NAMES),
    pipelined=st.booleans(),
)
def test_zerocopy_mid_run_failure_agrees_bit_for_bit(
    patterns, batch, num_shards, shard_kernel, pipelined
):
    """Killing every arena worker mid-run must drain to serial with the
    batch rerun bit-for-bit: no lost matches, no duplicates, no surviving
    shared-memory workers."""
    sets = build_pattern_sets(patterns, [])
    serial = ShardedAutomaton(sets, num_shards, shard_kernel=shard_kernel)
    sharded = ShardedAutomaton(
        sets, num_shards, shard_kernel=shard_kernel, backend="zerocopy"
    )
    try:
        expected = [
            (result.raw_matches, result.end_state, result.bytes_scanned)
            for result in serial.scan_batch(batch)
        ]
        sharded.scan(batch[0])  # warm the arena and workers up
        for process in sharded._kernel._backend._state.processes:
            process.terminate()
            process.join()
        actual = [
            (result.raw_matches, result.end_state, result.bytes_scanned)
            for result in sharded.scan_batch(batch, pipelined=pipelined)
        ]
        assert actual == expected
        assert sharded.active_backend_name == "serial"
        assert sharded.pool_fallbacks == 1
    finally:
        sharded.shutdown()


@settings(max_examples=30, deadline=None)
@given(
    patterns=pattern_lists,
    chunks=st.lists(payloads, min_size=1, max_size=4),
    num_shards=st.integers(min_value=1, max_value=6),
    shard_kernel=st.sampled_from(KERNEL_NAMES),
    stateful=st.booleans(),
)
def test_sharded_instance_reports_identically(
    patterns, chunks, num_shards, shard_kernel, stateful
):
    pattern_sets = {1: [Pattern(i, p) for i, p in enumerate(patterns)]}
    profiles = {1: MiddleboxProfile(1, name="ids", stateful=stateful)}
    monolithic = DPIServiceInstance(
        InstanceConfig(
            pattern_sets=pattern_sets,
            profiles=profiles,
            chain_map={100: (1,)},
            kernel="reference",
        )
    )
    sharded = DPIServiceInstance(
        InstanceConfig(
            pattern_sets=pattern_sets,
            profiles=profiles,
            chain_map={100: (1,)},
            kernel="sharded",
            shards=num_shards,
            shard_kernel=shard_kernel,
        )
    )
    for chunk in chunks:
        expected = monolithic.inspect(chunk, chain_id=100, flow_key="flow")
        actual = sharded.inspect(chunk, chain_id=100, flow_key="flow")
        assert actual.matches == expected.matches
        assert actual.report.encode() == expected.report.encode()
        assert actual.bytes_scanned == expected.bytes_scanned


@settings(max_examples=25, deadline=None)
@given(
    patterns=pattern_lists,
    stream=st.builds(
        bytes, st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=64)
    ),
    cut_points=st.lists(st.integers(min_value=1, max_value=63), max_size=4),
    order_seed=st.integers(min_value=0, max_value=2**16),
    policy=st.sampled_from(OVERLAP_POLICIES),
    num_shards=st.integers(min_value=1, max_value=4),
    shard_kernel=st.sampled_from(KERNEL_NAMES),
)
def test_sharded_agrees_on_reassembled_ambiguous_streams(
    patterns, stream, cut_points, order_seed, policy, num_shards, shard_kernel
):
    """Reassembly-aware shard equivalence: an adversarially segmented
    stream (reordered, overlapping) reassembled under either overlap
    policy must scan identically on the monolithic reference engine and
    every sharded configuration, chunk by released chunk."""
    cuts = sorted({cut for cut in cut_points if cut < len(stream)})
    bounds = [0, *cuts, len(stream)]
    segments = [
        (bounds[i], stream[bounds[i] : bounds[i + 1]])
        for i in range(len(bounds) - 1)
    ]
    rng = random.Random(order_seed)
    if len(segments) > 1:
        seq, data = rng.choice(segments)
        segments.append((seq, bytes(byte ^ 0x01 for byte in data)))
    rng.shuffle(segments)

    pattern_sets = {1: [Pattern(i, p) for i, p in enumerate(patterns)]}
    profiles = {1: MiddleboxProfile(1, name="ids", stateful=True)}
    monolithic = DPIServiceInstance(
        InstanceConfig(
            pattern_sets=pattern_sets,
            profiles=profiles,
            chain_map={100: (1,)},
            kernel="reference",
        )
    )
    sharded = DPIServiceInstance(
        InstanceConfig(
            pattern_sets=pattern_sets,
            profiles=profiles,
            chain_map={100: (1,)},
            kernel="sharded",
            shards=num_shards,
            shard_kernel=shard_kernel,
        )
    )
    reassembler = StreamReassembler(policy=policy)
    for seq, data in segments:
        released = reassembler.add_segment(seq, data)
        if not released:
            continue
        expected = monolithic.inspect(released, chain_id=100, flow_key="flow")
        actual = sharded.inspect(released, chain_id=100, flow_key="flow")
        assert actual.matches == expected.matches
        assert actual.bytes_scanned == expected.bytes_scanned
