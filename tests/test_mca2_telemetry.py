"""StressMonitor edge cases driven through registry-backed load samples.

The monitor reads per-instance load from the controller's metrics registry,
so these tests feed it synthetic counter increments instead of wall-clock
scans: load levels are exact and the tests are fully deterministic.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.mca2 import StressMonitor
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.net.steering import PolicyChain

CHAIN = 100


@pytest.fixture
def controller():
    controller = DPIController()
    controller.handle_message(
        RegisterMiddleboxMessage(middlebox_id=1, name="ids", stateful=True)
    )
    controller.handle_message(
        AddPatternsMessage(middlebox_id=1, patterns=[Pattern(0, b"signature!")])
    )
    controller.policy_chains_changed(
        {"c": PolicyChain("c", ("ids",), chain_id=CHAIN)}
    )
    return controller


def push_load(controller, name, bytes_scanned, ns_per_byte):
    """Synthesise one window of load for *name* in the registry."""
    registry = controller.telemetry.registry
    registry.counter("dpi_bytes_scanned_total", instance=name).inc(bytes_scanned)
    registry.counter("dpi_scan_seconds_total", instance=name).inc(
        bytes_scanned * ns_per_byte / 1e9
    )


class TestObserveAndMitigateEdgeCases:
    def test_empty_window_produces_no_events(self, controller):
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller)
        assert monitor.calibrate() == {}
        assert monitor.observe_and_mitigate() == []
        assert monitor.events == []
        assert controller.telemetry.registry.value(
            "mca2_stress_events_total", instance="dpi-1", default=None
        ) is None

    def test_window_below_minimum_bytes_is_ignored(self, controller):
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, min_window_bytes=1024)
        push_load(controller, "dpi-1", bytes_scanned=4096, ns_per_byte=10.0)
        assert "dpi-1" in monitor.calibrate()
        # Tiny stressed window: 100 bytes at 100x the baseline cost.
        push_load(controller, "dpi-1", bytes_scanned=100, ns_per_byte=1000.0)
        assert monitor.observe_and_mitigate() == []

    def test_stress_detected_from_registry_counters(self, controller):
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=2.0)
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=10.0)
        baselines = monitor.calibrate()
        assert baselines["dpi-1"] == pytest.approx(10.0)
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=1000.0)
        events = monitor.observe()
        assert len(events) == 1
        assert events[0].ns_per_byte == pytest.approx(1000.0)
        assert events[0].stress_factor == pytest.approx(100.0)
        registry = controller.telemetry.registry
        assert registry.value("mca2_stress_events_total", instance="dpi-1") == 1

    def test_dedicated_instance_reused_across_rounds(self, controller):
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=2.0)
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=10.0)
        monitor.calibrate()

        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=500.0)
        first_round = monitor.observe_and_mitigate()
        assert len(first_round) == 1
        assert first_round[0].dedicated_created
        dedicated = first_round[0].dedicated_instance
        assert controller.instances[dedicated].config.layout == "full"

        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=500.0)
        second_round = monitor.observe_and_mitigate()
        assert len(second_round) == 1
        assert not second_round[0].dedicated_created
        assert second_round[0].dedicated_instance == dedicated

        registry = controller.telemetry.registry
        assert registry.value("mca2_mitigations_total", instance="dpi-1") == 2
        assert registry.value("mca2_stress_events_total", instance="dpi-1") == 2

    def test_deallocation_after_load_drop(self, controller):
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=2.0)
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=10.0)
        monitor.calibrate()
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=500.0)
        actions = monitor.observe_and_mitigate()
        dedicated = actions[0].dedicated_instance
        assert dedicated in controller.instances

        # The attack subsides: back to baseline cost, no new events.
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=10.0)
        assert monitor.observe_and_mitigate() == []

        released = monitor.deallocate_dedicated()
        assert released == [dedicated]
        assert dedicated not in controller.instances
        assert monitor.dedicated_instances == []
        # Removing the instance drops its registry metrics too.
        registry = controller.telemetry.registry
        assert registry.get(
            "dpi_packets_scanned_total", instance=dedicated
        ) is None

    def test_dedicated_instances_are_not_monitored(self, controller):
        controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=2.0)
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=10.0)
        monitor.calibrate()
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=500.0)
        actions = monitor.observe_and_mitigate()
        dedicated = actions[0].dedicated_instance
        # Heavy load on the dedicated instance must never flag it.
        push_load(controller, dedicated, bytes_scanned=50_000, ns_per_byte=900.0)
        push_load(controller, "dpi-1", bytes_scanned=10_000, ns_per_byte=10.0)
        assert monitor.observe_and_mitigate() == []


class TestRegistryBackedLoadSamples:
    def test_load_samples_reflect_synthetic_counters(self, controller):
        controller.instances.provision("dpi-1")
        push_load(controller, "dpi-1", bytes_scanned=5000, ns_per_byte=20.0)
        samples = controller.load_samples(window_seconds=1.0)
        assert len(samples) == 1
        sample = samples[0]
        assert sample.instance_name == "dpi-1"
        assert sample.bytes_scanned == 5000
        assert sample.ns_per_byte == pytest.approx(20.0)
        # The next window only sees what happened since.
        samples = controller.load_samples(window_seconds=1.0)
        assert samples[0].bytes_scanned == 0
        push_load(controller, "dpi-1", bytes_scanned=100, ns_per_byte=20.0)
        samples = controller.load_samples(window_seconds=1.0)
        assert samples[0].bytes_scanned == 100
