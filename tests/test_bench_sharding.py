"""Sharding-benchmark harness tests: the insufficient-cores skip rule.

Pooled rows with more workers than cores only measure time-slicing
overhead, so the sweep must drop them — and say so in the payload and
the rendered table — rather than publish misleading numbers.
"""

import pytest

from repro.bench.sharding import (
    format_sharding_results,
    run_sharding_benchmark,
)

TINY = dict(
    pattern_count=30,
    packets=4,
    rounds=1,
    shards=2,
    configs=(("snort-like", "flat"),),
)


class TestInsufficientCoreSkips:
    def test_oversized_worker_rows_are_skipped(self, monkeypatch):
        monkeypatch.setattr("repro.bench.sharding.os.cpu_count", lambda: 1)
        results = run_sharding_benchmark(**TINY, worker_counts=(1, 64))
        assert results["config"]["cpu_count"] == 1
        entry = results["corpora"]["snort-like"]
        skipped = entry["skipped_rows"]
        for backend in ("process", "zerocopy", "zerocopy-pipelined"):
            name = f"sharded/{backend}/w64"
            assert skipped[name] == {
                "workers": 64,
                "skipped": "insufficient cores",
            }
            # And the measured rows must NOT contain the oversized pool.
            assert name not in entry["rows"]
            assert f"sharded/{backend}/w1" in entry["rows"]

    def test_skipped_rows_render_in_the_table(self, monkeypatch):
        monkeypatch.setattr("repro.bench.sharding.os.cpu_count", lambda: 1)
        results = run_sharding_benchmark(**TINY, worker_counts=(1, 64))
        rendered = format_sharding_results(results)
        assert "skipped: insufficient cores" in rendered
        assert "sharded/zerocopy/w64" in rendered

    def test_all_usable_counts_keep_empty_skip_map(self):
        results = run_sharding_benchmark(**TINY, worker_counts=(1,))
        entry = results["corpora"]["snort-like"]
        assert entry["skipped_rows"] == {}

    def test_headline_survives_a_fully_skipped_zerocopy_sweep(
        self, monkeypatch
    ):
        # Every pooled width oversized: serial is the only sharded row
        # left, and the headline comparison must fall back to it instead
        # of crashing on an empty zerocopy set.
        monkeypatch.setattr("repro.bench.sharding.os.cpu_count", lambda: 1)
        results = run_sharding_benchmark(**TINY, worker_counts=(64,))
        entry = results["corpora"]["snort-like"]
        assert entry["rows"]  # monolithic + sharded/serial still measured
        headline = entry["headline"]
        assert headline["best_zerocopy_row"] == "sharded/serial"
        assert headline["zerocopy_vs_serial"] == pytest.approx(1.0)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
