"""Unit tests for the benchmark support package."""

import pytest

from repro.bench.harness import Series, Table, percent_faster, percent_less
from repro.bench.regions import (
    CombinedTriangle,
    SeparateRectangle,
    region_report,
)
from repro.bench.throughput import (
    ThroughputResult,
    measure_scan_throughput,
    pipeline_throughput,
    replicated_throughput,
)
from repro.bench.virtualization import VirtualizationModel


class TestThroughput:
    def test_measure_counts_bytes_and_packets(self):
        seen = []
        result = measure_scan_throughput(seen.append, [b"12345", b"678"], repeat=2)
        assert result.bytes_scanned == 16
        assert result.packets == 4
        assert len(seen) == 4
        assert result.mbps > 0

    def test_warmup_not_counted(self):
        seen = []
        result = measure_scan_throughput(
            seen.append, [b"abc", b"def"], warmup_packets=2
        )
        assert len(seen) == 4  # 2 warmup + 2 timed
        assert result.packets == 2

    def test_result_math(self):
        result = ThroughputResult(bytes_scanned=1_000_000, packets=10, seconds=1.0)
        assert result.mbps == pytest.approx(8.0)
        assert result.ns_per_byte == pytest.approx(1000.0)

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            measure_scan_throughput(lambda p: None, [], repeat=0)

    def test_pipeline_is_bottleneck(self):
        assert pipeline_throughput([900.0, 500.0, 700.0]) == 500.0
        with pytest.raises(ValueError):
            pipeline_throughput([])

    def test_replication_adds_capacity(self):
        assert replicated_throughput(400.0, 2) == 800.0
        with pytest.raises(ValueError):
            replicated_throughput(400.0, 0)


class TestVirtualizationModel:
    def test_standalone_unaffected(self):
        model = VirtualizationModel()
        assert model.throughput_factor(0) == 1.0

    def test_single_vm_minor_penalty(self):
        """Figure 8's observation: virtualization has a minor impact."""
        model = VirtualizationModel()
        factor = model.throughput_factor(1, working_set_bytes=30 << 20)
        assert 0.9 < factor < 1.0

    def test_four_vms_small_working_set_no_contention(self):
        model = VirtualizationModel()
        single = model.throughput_factor(1, working_set_bytes=1 << 20)
        quad = model.throughput_factor(4, working_set_bytes=1 << 20)
        assert quad == pytest.approx(single)

    def test_four_vms_large_working_set_contended(self):
        model = VirtualizationModel()
        single = model.throughput_factor(1, working_set_bytes=30 << 20)
        quad = model.throughput_factor(4, working_set_bytes=30 << 20)
        assert quad < single

    def test_factor_monotone_in_working_set(self):
        model = VirtualizationModel()
        factors = [
            model.throughput_factor(4, working_set_bytes=ws << 20)
            for ws in (1, 4, 16, 64)
        ]
        assert factors == sorted(factors, reverse=True)

    def test_effective_mbps(self):
        model = VirtualizationModel(hypervisor_penalty=0.1)
        assert model.effective_mbps(1000.0, 1) == pytest.approx(900.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualizationModel(hypervisor_penalty=1.5)
        with pytest.raises(ValueError):
            VirtualizationModel().throughput_factor(-1)


class TestRegions:
    def test_rectangle(self):
        rect = SeparateRectangle(100.0, 50.0)
        assert rect.contains(100.0, 50.0)
        assert not rect.contains(101.0, 0.0)
        assert rect.area == 5000.0
        assert len(rect.corners()) == 4

    def test_triangle(self):
        tri = CombinedTriangle(80.0, machines=2)
        assert tri.total_mbps == 160.0
        assert tri.contains(160.0, 0.0)
        assert tri.contains(80.0, 80.0)
        assert not tri.contains(100.0, 100.0)
        assert not tri.contains(-1.0, 0.0)

    def test_region_report_gains(self):
        """The paper's Figure 10(b) shape: one class can exceed 100 % of its
        dedicated capacity by borrowing the other's idle machine."""
        report = region_report(
            separate_a_mbps=100.0, separate_b_mbps=50.0, combined_mbps=80.0
        )
        assert report.peak_a_gain == pytest.approx(1.6)
        assert report.peak_b_gain == pytest.approx(3.2)
        assert (160.0, 0.0) in report.gain_examples
        assert (0.0, 160.0) in report.gain_examples

    def test_triangle_may_not_cover_corner(self):
        report = region_report(100.0, 100.0, 80.0)
        # 100+100 = 200 > 160: the combined deployment cannot serve both
        # classes at dedicated maxima simultaneously.
        assert not report.triangle_covers_rectangle_corner

    def test_validation(self):
        with pytest.raises(ValueError):
            SeparateRectangle(-1.0, 0.0)
        with pytest.raises(ValueError):
            CombinedTriangle(10.0, machines=0)


class TestHarness:
    def test_percent_faster(self):
        assert percent_faster(186.0, 100.0) == pytest.approx(86.0)
        with pytest.raises(ValueError):
            percent_faster(1.0, 0.0)

    def test_percent_less(self):
        assert percent_less(88.0, 100.0) == pytest.approx(12.0)

    def test_series(self):
        series = Series("throughput")
        series.append(500, 10.5)
        series.append(1000, 8.25)
        assert len(series) == 2
        text = series.format(x_label="patterns", y_label="mbps")
        assert "patterns=500" in text and "mbps=10.500" in text

    def test_table(self):
        table = Table("Table 2", ["Sets", "Patterns", "Throughput"])
        table.add_row("Snort1", 2178, 10.5)
        assert "Snort1" in table.format()
        with pytest.raises(ValueError):
            table.add_row("too", "few")


class TestAsciiPlots:
    def test_ascii_plot_scales_bars(self):
        series = Series("demo", xs=[1, 2], ys=[50.0, 100.0])
        plot = series.ascii_plot(width=10)
        lines = plot.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_ascii_plot_empty(self):
        assert "empty" in Series("none").ascii_plot()

    def test_plot_series_together_shared_scale(self):
        from repro.bench.harness import plot_series_together

        a = Series("a", xs=[1], ys=[100.0])
        b = Series("b", xs=[1], ys=[50.0])
        plot = plot_series_together([a, b], width=10)
        assert "##########" in plot  # a at full scale
        assert "#####" in plot  # b at half scale

    def test_zero_values_render(self):
        series = Series("zeros", xs=[1], ys=[0.0])
        assert "|" in series.ascii_plot()
