"""Integration tests: chain-grouped instance deployment (Section 4.3)."""

import pytest

from repro.core.controller import DPIController
from repro.core.deployment import DecisionKind, DeploymentPlanner
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.net.steering import PolicyChain


def build_controller():
    """Four chains over four middleboxes: two HTTP-ish, two FTP-ish."""
    controller = DPIController()
    signatures = {
        1: ("http_ids", b"http-threat-sig"),
        2: ("http_fw", b"http-block-sig!"),
        3: ("ftp_ids", b"ftp-threat-sig!"),
        4: ("ftp_av", b"ftp-virus-sig!!"),
    }
    for middlebox_id, (name, signature) in signatures.items():
        controller.handle_message(
            RegisterMiddleboxMessage(middlebox_id=middlebox_id, name=name)
        )
        controller.handle_message(
            AddPatternsMessage(middlebox_id, [Pattern(0, signature)])
        )
    controller.policy_chains_changed(
        {
            "h1": PolicyChain("h1", ("http_ids",), chain_id=100),
            "h2": PolicyChain("h2", ("http_ids", "http_fw"), chain_id=101),
            "f1": PolicyChain("f1", ("ftp_ids",), chain_id=102),
            "f2": PolicyChain("f2", ("ftp_ids", "ftp_av"), chain_id=103),
        }
    )
    return controller


class TestDeployGrouped:
    def test_two_groups_split_http_from_ftp(self):
        controller = build_controller()
        deployed = controller.instances.plan_groups(max_groups=2)
        assert len(deployed) == 2
        groups = {frozenset(chains) for chains in deployed.values()}
        assert frozenset({100, 101}) in groups
        assert frozenset({102, 103}) in groups

    def test_instances_specialized(self):
        controller = build_controller()
        deployed = controller.instances.plan_groups(max_groups=2)
        for name, chain_ids in deployed.items():
            instance = controller.instances[name]
            assert set(instance.scanner.chain_map) == set(chain_ids)
            # The HTTP group never carries FTP patterns and vice versa.
            loaded = set(instance.config.pattern_sets)
            if 100 in chain_ids:
                assert loaded == {1, 2}
            else:
                assert loaded == {3, 4}

    def test_group_instances_scan_their_chains(self):
        controller = build_controller()
        deployed = controller.instances.plan_groups(max_groups=2)
        http_instance = next(
            controller.instances[name]
            for name, chains in deployed.items()
            if 100 in chains
        )
        output = http_instance.inspect(b"a http-threat-sig flows", chain_id=100)
        assert output.matches[1] == [(0, 17)]
        with pytest.raises(KeyError):
            http_instance.inspect(b"x", chain_id=102)

    def test_single_group_carries_everything(self):
        controller = build_controller()
        deployed = controller.instances.plan_groups(max_groups=1)
        (only,) = deployed.values()
        assert sorted(only) == [100, 101, 102, 103]

    def test_no_chains_rejected(self):
        controller = DPIController()
        with pytest.raises(ValueError):
            controller.instances.plan_groups(max_groups=2)


class TestLoadDrivenPlanning:
    def test_load_samples_window_deltas(self):
        controller = build_controller()
        controller.instances.plan_groups(max_groups=2)
        names = sorted(controller.instances)
        first = controller.load_samples(window_seconds=1.0)
        assert {s.instance_name for s in first} == set(names)
        # Generate some load on one instance.
        hot = controller.instances[names[0]]
        chain_id = next(iter(hot.scanner.chain_map))
        for _ in range(10):
            hot.inspect(b"x" * 2000, chain_id=chain_id)
        second = {s.instance_name: s for s in controller.load_samples(1.0)}
        assert second[names[0]].bytes_scanned == 20000
        assert second[names[1]].bytes_scanned == 0

    def test_planner_consumes_controller_samples(self):
        controller = build_controller()
        controller.instances.plan_groups(max_groups=2)
        names = sorted(controller.instances)
        hot = controller.instances[names[0]]
        chain_id = next(iter(hot.scanner.chain_map))
        for _ in range(5):
            hot.inspect(b"y" * 1000, chain_id=chain_id)
        # A tiny window makes the busy instance look saturated.
        samples = controller.load_samples(window_seconds=1e-9)
        planner = DeploymentPlanner()
        decisions = planner.plan(samples)
        assert decisions
        assert decisions[0].instance_name == names[0]
        assert decisions[0].kind in (
            DecisionKind.MIGRATE_FLOWS,
            DecisionKind.SCALE_OUT,
        )

    def test_invalid_window(self):
        controller = build_controller()
        with pytest.raises(ValueError):
            controller.load_samples(0)
