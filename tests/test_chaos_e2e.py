"""End-to-end chaos tests: the ISSUE's acceptance criteria.

A seeded fault plan kills the busiest instance mid-run; every affected
chain must be re-steered (or degraded) within the failover budget, no
packet sent after recovery may be silently lost, and two runs of the same
plan must be bit-identical.
"""

import json

import pytest

from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    HeartbeatConfig,
    run_chaos_scenario,
)

CRASH_RESTART_PLAN = FaultPlan.of(
    [
        FaultSpec(0.2, FaultKind.INSTANCE_CRASH, "dpi3"),
        FaultSpec(0.45, FaultKind.INSTANCE_RESTART, "dpi3"),
    ],
    seed=11,
)

CRASH_ONLY_PLAN = FaultPlan.of(
    [FaultSpec(0.2, FaultKind.INSTANCE_CRASH, "dpi3")], seed=5
)


class TestKillBusiestInstance:
    def test_kills_the_busiest_instance_mid_run(self):
        result = run_chaos_scenario(CRASH_ONLY_PLAN, packets=60)
        # dpi3 carries every chain: it is the busiest instance by
        # construction, and the plan kills it mid-workload.
        assert not result.dpi_controller.instances["dpi3"].alive
        crash = next(
            event
            for event in result.hub.faults
            if event.kind == "instance_crash"
        )
        assert 0 < crash.time < result.send_times[result.sent_ids[-1]]

    def test_affected_chains_resteered_within_budget(self):
        result = run_chaos_scenario(CRASH_ONLY_PLAN, packets=60)
        record = result.coordinator.records["dpi3"]
        assert set(record.chains) == {"chain1", "chain2"}
        assert record.mode == "provision"
        for chain_name in record.chains:
            hops = result.tsa.realized[chain_name].hop_hosts
            assert "dpi3" not in hops
            assert "dpi-standby" in hops
        assert not result.budget_exceeded
        # Crash-to-recovery wall time is also bounded by the budget.
        crash_at = CRASH_ONLY_PLAN.specs[0].at
        assert (
            record.recovered_at - crash_at
            <= result.failover_budget
        )

    def test_no_packet_lost_after_recovery(self):
        result = run_chaos_scenario(CRASH_ONLY_PLAN, packets=60)
        assert result.lost_after_recovery == ()
        assert result.unrecovered_instances == ()
        assert result.ok

    def test_outage_window_loss_is_bounded_and_attributed(self):
        result = run_chaos_scenario(CRASH_ONLY_PLAN, packets=60)
        # Every lost packet was sent inside [crash, recovery] — nothing
        # before the fault or after the failover went missing.
        crash_at = CRASH_ONLY_PLAN.specs[0].at
        for pid in result.lost_ids:
            assert (
                crash_at
                <= result.send_times[pid]
                <= result.recovery_complete_at
            )


class TestDeterminism:
    def test_same_plan_same_seed_bit_identical(self):
        first = run_chaos_scenario(CRASH_RESTART_PLAN, packets=60)
        second = run_chaos_scenario(CRASH_RESTART_PLAN, packets=60)
        assert first.digest == second.digest
        assert json.dumps(
            [event.as_dict() for event in first.hub.faults]
        ) == json.dumps([event.as_dict() for event in second.hub.faults])

    def test_different_seed_different_workload(self):
        other = FaultPlan.of(list(CRASH_RESTART_PLAN.specs), seed=12)
        first = run_chaos_scenario(CRASH_RESTART_PLAN, packets=60)
        second = run_chaos_scenario(other, packets=60)
        assert first.digest != second.digest


class TestRecoveryModes:
    def test_restart_reattaches_and_stops_loss(self):
        result = run_chaos_scenario(CRASH_RESTART_PLAN, packets=60)
        record = result.coordinator.records["dpi3"]
        assert record.reattached_at is not None
        for chain_name in record.chains:
            assert (
                result.tsa.realized[chain_name].hop_hosts
                == record.original_hops[chain_name]
            )
        assert result.ok

    def test_degradation_without_spare_keeps_traffic_flowing(self):
        result = run_chaos_scenario(
            CRASH_ONLY_PLAN, packets=60, allow_spare=False
        )
        record = result.coordinator.records["dpi3"]
        assert record.mode == "degrade"
        assert set(record.degraded_hosts) == {"ids1", "ids2", "av1"}
        assert result.ok
        # The legacy twins actually scanned the post-outage traffic.
        rescanned = sum(
            function.packets_rescanned
            for function in result.coordinator.middlebox_functions.values()
        )
        assert rescanned > 0

    def test_link_flap_losses_end_with_link_up(self):
        plan = FaultPlan.of(
            [
                FaultSpec(0.2, FaultKind.LINK_DOWN, "s2|dpi3"),
                FaultSpec(0.3, FaultKind.LINK_UP, "s2|dpi3"),
            ],
            seed=3,
        )
        result = run_chaos_scenario(plan, packets=40)
        assert result.ok
        for pid in result.lost_ids:
            assert 0.2 <= result.send_times[pid] <= 0.3

    def test_result_corruption_fails_open(self):
        plan = FaultPlan.of(
            [
                FaultSpec(
                    0.005, FaultKind.RESULT_CORRUPT, "dpi3", duration=5.0
                )
            ],
            seed=3,
        )
        result = run_chaos_scenario(plan, packets=40)
        assert result.ok
        assert result.lost_ids == ()
        function = result.coordinator.dpi_functions["dpi3"]
        assert function.results_corrupted > 0
        corrupt_seen = sum(
            chain_function.corrupt_reports
            for chain_function in (
                result.coordinator.middlebox_functions.values()
            )
        )
        assert corrupt_seen > 0

    def test_short_control_drop_no_spurious_failover(self):
        plan = FaultPlan.of(
            [
                FaultSpec(
                    0.2, FaultKind.CONTROL_DROP, "control",
                    duration=0.08, value=0.9,
                )
            ],
            seed=3,
        )
        result = run_chaos_scenario(plan, packets=40)
        assert result.ok
        assert result.coordinator.records == {}
        assert not result.monitor.is_down("dpi3")
        assert result.control.messages_dropped > 0


class TestChaosCli:
    def test_cli_passes_on_the_example_plan(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "figure5", "--plan", "examples/plan_basic.json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result: OK" in out
        assert "digest:" in out

    def test_cli_json_format(self, capsys):
        from repro.cli import main

        code = main(
            [
                "chaos", "figure5",
                "--plan", "examples/plan_basic.json",
                "--format", "json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True
        assert summary["lost_after_recovery"] == 0

    def test_cli_rejects_missing_plan(self, capsys):
        from repro.cli import main

        code = main(["chaos", "figure5", "--plan", "/no/such/plan.json"])
        assert code == 2
        assert "cannot load plan" in capsys.readouterr().err

    def test_cli_fails_on_unrecovered_flows(self, tmp_path, capsys):
        # An unrecoverable plan: the DPI host's link goes down and never
        # comes back.  The heartbeat cannot see it (the control path is
        # out of band), losses run to the end of the workload, and the
        # run must exit nonzero.
        plan = FaultPlan.of(
            [FaultSpec(0.2, FaultKind.LINK_DOWN, "s2|dpi3")], seed=5
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        from repro.cli import main

        code = main(["chaos", "figure5", "--plan", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "result: FAILED" in out


class TestScenarioValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_chaos_scenario(CRASH_ONLY_PLAN, scenario="figure6")


def shutdown_instances(result):
    """Drain every instance's shard pool (failover replacements included)."""
    for instance in result.dpi_controller.instances.values():
        instance.automaton.shutdown()


class TestShardedChaos:
    """Sharded instances under faults: crash drains the pool, pool
    failure falls back to serial, and the fault timeline records it."""

    def test_sharded_process_instance_survives_crash_restart(self):
        result = run_chaos_scenario(
            CRASH_RESTART_PLAN,
            packets=40,
            kernel="sharded",
            shards=4,
            shard_backend="process",
        )
        assert result.ok
        instance = result.dpi_controller.instances["dpi3"]
        assert instance.config.kernel == "sharded"
        assert instance.config.shards == 4
        shutdown_instances(result)

    def test_crash_mid_scan_drains_pool_without_orphans(self):
        import multiprocessing

        result = run_chaos_scenario(
            CRASH_ONLY_PLAN,
            packets=40,
            kernel="sharded",
            shards=2,
            shard_backend="process",
        )
        # The failover replacement inherits the sharded config; only its
        # own pool may be alive — the crashed instance's pool is drained.
        failover = result.dpi_controller.instances["dpi3-failover"]
        assert failover.config.kernel == "sharded"
        assert failover.config.shard_backend == "process"
        shutdown_instances(result)
        assert multiprocessing.active_children() == []

    def test_pool_failure_mid_run_recorded_in_fault_timeline(self):
        import multiprocessing

        result = run_chaos_scenario(
            CRASH_RESTART_PLAN,
            packets=30,
            kernel="sharded",
            shards=2,
            shard_backend="process",
        )
        instance = result.dpi_controller.instances["dpi3"]
        # Sabotage the live pool, then push one more scan through: the
        # kernel must drain it, fall back to serial, and record the fault.
        # The chain id the instance keys on is the DPI hop's tag, not the
        # TSA chain id; pick the one serving ids1 (middlebox 1), whose
        # signature the probe payload carries.
        chain_id = next(
            cid
            for cid, middleboxes in sorted(instance.scanner.chain_map.items())
            if 1 in middleboxes
        )
        pool = instance.automaton._kernel._backend._pool
        if pool is None:  # restart rebuilt the automaton; warm a pool up
            instance.inspect(b"warm the pool", chain_id=chain_id)
            pool = instance.automaton._kernel._backend._pool
        pool.terminate()
        pool.join()
        output = instance.inspect(b"carrying chain-one-threat now", chain_id=chain_id)
        assert output.has_matches
        assert instance.automaton.active_backend_name == "serial"
        assert instance.automaton.pool_fallbacks == 1
        events = [
            (event.kind, event.phase, event.target)
            for event in result.hub.faults
        ]
        assert ("shard_pool_failure", "recover", "dpi3") in events
        shutdown_instances(result)
        assert multiprocessing.active_children() == []

    def test_zerocopy_pool_failure_drains_to_serial_with_clean_arena(self):
        import multiprocessing
        import os

        result = run_chaos_scenario(
            CRASH_RESTART_PLAN,
            packets=30,
            kernel="sharded",
            shards=2,
            shard_backend="zerocopy",
            shard_workers=2,
        )
        assert result.ok
        instance = result.dpi_controller.instances["dpi3"]
        assert instance.config.shard_backend == "zerocopy"
        assert instance.config.shard_workers == 2
        chain_id = next(
            cid
            for cid, middleboxes in sorted(instance.scanner.chain_map.items())
            if 1 in middleboxes
        )
        probe = b"carrying chain-one-threat now"
        # The serial-backend twin provides the zero-lost/zero-duplicated
        # expectation for the post-failure scan.
        baseline = run_chaos_scenario(
            CRASH_RESTART_PLAN, packets=30, kernel="sharded", shards=2
        )
        expected = baseline.dpi_controller.instances["dpi3"].inspect(
            probe, chain_id=chain_id
        )
        backend = instance.automaton._kernel._backend
        if backend._state is None:  # restart rebuilt the automaton
            instance.inspect(b"warm the arena up", chain_id=chain_id)
            backend = instance.automaton._kernel._backend
        arena = backend.arena_name
        assert arena is not None
        # Kill every arena worker mid-run, then push one more scan
        # through: the kernel must drain the arena (unlinking the shared
        # memory), fall back to serial, and lose nothing.
        for process in backend._state.processes:
            process.terminate()
            process.join()
        output = instance.inspect(probe, chain_id=chain_id)
        assert output.matches == expected.matches
        assert output.report.encode() == expected.report.encode()
        assert instance.automaton.active_backend_name == "serial"
        assert instance.automaton.pool_fallbacks == 1
        assert not os.path.exists(f"/dev/shm/{arena}")
        events = [
            (event.kind, event.phase, event.target)
            for event in result.hub.faults
        ]
        assert ("shard_pool_failure", "recover", "dpi3") in events
        shutdown_instances(result)
        shutdown_instances(baseline)
        assert multiprocessing.active_children() == []

    def test_zerocopy_failover_replacement_inherits_arena_config(self):
        import multiprocessing

        result = run_chaos_scenario(
            CRASH_ONLY_PLAN,
            packets=40,
            kernel="sharded",
            shards=2,
            shard_backend="zerocopy",
            shard_workers=1,
        )
        failover = result.dpi_controller.instances["dpi3-failover"]
        assert failover.config.kernel == "sharded"
        assert failover.config.shard_backend == "zerocopy"
        assert failover.config.shard_workers == 1
        # The crashed instance drained its own arena; after shutting the
        # replacement down too, no worker or segment survives.
        shutdown_instances(result)
        assert multiprocessing.active_children() == []

    def test_sharded_serial_digest_matches_repeat_run(self):
        first = run_chaos_scenario(
            CRASH_RESTART_PLAN, packets=40, kernel="sharded", shards=4
        )
        second = run_chaos_scenario(
            CRASH_RESTART_PLAN, packets=40, kernel="sharded", shards=4
        )
        assert first.digest == second.digest
