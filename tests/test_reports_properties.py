"""Property tests: report encode/decode round-trips and run compression."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import MatchReport, compress_matches

match_pair = st.tuples(
    st.integers(min_value=0, max_value=0xFFFF),  # pattern id
    st.integers(min_value=0, max_value=0xFFFFFF),  # position
)
match_list = st.lists(match_pair, max_size=40)
per_middlebox = st.dictionaries(
    st.integers(min_value=0, max_value=50), match_list, max_size=5
)


@given(matches=per_middlebox)
@settings(max_examples=200, deadline=None)
def test_report_round_trip(matches):
    report = MatchReport.from_matches(matches)
    decoded = MatchReport.decode(report.encode())
    for middlebox_id, pairs in matches.items():
        assert sorted(decoded.matches_for(middlebox_id)) == sorted(pairs)


@given(matches=match_list)
@settings(max_examples=200, deadline=None)
def test_compression_preserves_matches(matches):
    """compress + expand is the identity on duplicate-free match lists."""
    unique = sorted(set(matches))
    records = compress_matches(unique)
    expanded = sorted(
        (record.pattern_id, position)
        for record in records
        for position in record.positions()
    )
    assert expanded == unique


@given(matches=per_middlebox)
@settings(max_examples=100, deadline=None)
def test_size_bytes_equals_encoded_length(matches):
    report = MatchReport.from_matches(matches)
    assert report.size_bytes() == len(report.encode())


@given(
    pattern_id=st.integers(min_value=0, max_value=0xFFFF),
    start=st.integers(min_value=0, max_value=1000),
    length=st.integers(min_value=1, max_value=600),
)
@settings(max_examples=100, deadline=None)
def test_runs_round_trip(pattern_id, start, length):
    run = [(pattern_id, start + offset) for offset in range(length)]
    report = MatchReport.from_matches({0: run})
    assert sorted(MatchReport.decode(report.encode()).matches_for(0)) == run
