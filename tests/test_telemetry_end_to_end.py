"""End-to-end telemetry over the figure-5 scenario.

One policy-chain run through the simulator must produce a complete span
tree per packet (steer -> hop(s) -> inspect -> deliver) and a registry
whose byte counters agree with what the hosts actually sent — and turning
telemetry off must not change the data plane at all.
"""

import json

import pytest

from repro.telemetry.export import export_jsonl, prometheus_text
from repro.telemetry.report import render_report
from repro.telemetry.scenario import run_figure5_scenario

PACKETS = 30


@pytest.fixture(scope="module")
def scenario():
    return run_figure5_scenario(packets=PACKETS, seed=7)


class TestSpanTree:
    def test_every_packet_has_a_complete_trace(self, scenario):
        tracer = scenario.hub.tracer
        roots = tracer.spans_named("steer")
        assert len(roots) == PACKETS
        for root in roots:
            names = [span.name for span in tracer.children_of(root)]
            # steer -> at least one switch hop -> DPI inspect -> delivery.
            assert "hop" in names
            assert "inspect" in names
            assert "deliver" in names

    def test_inspect_spans_carry_scan_attributes(self, scenario):
        spans = scenario.hub.tracer.spans_named("inspect")
        assert len(spans) == PACKETS
        for span in spans:
            assert span.attributes["instance"] == "dpi3"
            assert span.attributes["kernel"] == "flat"
            assert span.attributes["bytes"] > 0
            assert span.attributes["chain"] > 0
            assert span.attributes["elapsed_seconds"] >= 0
        assert sum(
            span.attributes["bytes"] for span in spans
        ) == scenario.payload_bytes_sent

    def test_hop_spans_name_real_switches(self, scenario):
        switches = {
            span.attributes["switch"]
            for span in scenario.hub.tracer.spans_named("hop")
        }
        assert switches <= {"s1", "s2", "s3", "s4"}
        assert "s1" in switches  # both sources attach at s1

    def test_final_delivery_reaches_destination_unless_quarantined(
        self, scenario
    ):
        tracer = scenario.hub.tracer
        reached = 0
        for root in tracer.spans_named("steer"):
            hosts = {
                span.attributes["host"]
                for span in tracer.children_of(root)
                if span.name == "deliver"
            }
            if hosts & {"dst1", "dst2"}:
                reached += 1
            else:
                # The only legitimate early exit: the antivirus dropped it.
                assert "av1" in hosts
        assert reached > PACKETS // 2


class TestCounterConsistency:
    def test_bytes_scanned_equal_bytes_originated(self, scenario):
        registry = scenario.hub.registry
        scanned = sum(
            metric.value
            for metric in registry.collect_named("dpi_bytes_scanned_total")
        )
        originated = sum(
            metric.value
            for metric in registry.collect_named("host_payload_bytes_origin_total")
        )
        assert scanned == originated == scenario.payload_bytes_sent

    def test_packet_counters_agree(self, scenario):
        registry = scenario.hub.registry
        assert registry.value(
            "dpi_packets_scanned_total", instance="dpi3"
        ) == PACKETS
        originated = sum(
            metric.value
            for metric in registry.collect_named("host_packets_origin_total")
        )
        assert originated == PACKETS

    def test_per_chain_counters_sum_to_instance_totals(self, scenario):
        registry = scenario.hub.registry
        chain_packets = registry.collect_named("dpi_chain_packets_total")
        assert len(chain_packets) == 2  # one per policy chain
        assert sum(m.value for m in chain_packets) == registry.value(
            "dpi_packets_scanned_total", instance="dpi3"
        )
        chain_bytes = registry.collect_named("dpi_chain_bytes_total")
        assert sum(m.value for m in chain_bytes) == registry.value(
            "dpi_bytes_scanned_total", instance="dpi3"
        )

    def test_latency_histogram_covers_every_scan(self, scenario):
        hist = scenario.hub.registry.get(
            "dpi_scan_latency_seconds", instance="dpi3"
        )
        assert hist.count == PACKETS
        assert hist.sum == pytest.approx(
            scenario.hub.registry.value(
                "dpi_scan_seconds_total", instance="dpi3"
            )
        )

    def test_link_and_switch_counters_recorded(self, scenario):
        registry = scenario.hub.registry
        link_packets = registry.collect_named("link_packets_total")
        assert link_packets
        assert all(m.value > 0 for m in link_packets)
        switch_packets = registry.collect_named("switch_packets_total")
        assert {m.labels["switch"] for m in switch_packets} == {
            "s1", "s2", "s3", "s4"
        }

    def test_tsa_counters_recorded(self, scenario):
        registry = scenario.hub.registry
        assert registry.value("tsa_rules_installed_total") > 0
        assert registry.value("tsa_chains") == 2

    def test_simulator_gauges_live(self, scenario):
        registry = scenario.hub.registry
        assert registry.value("sim_events_processed") > 0
        assert registry.value("sim_pending_events") == 0
        assert registry.value("sim_clock_seconds") > 0

    def test_middleboxes_saw_the_planted_signatures(self, scenario):
        boxes = scenario.middleboxes
        assert boxes["ids1"].alerts
        assert boxes["ids2"].alerts or boxes["av1"].detections


class TestExports:
    def test_report_renders_all_sections(self, scenario):
        text = render_report(scenario.hub)
        for heading in ("DPI instances", "Policy chains", "Links", "Spans"):
            assert heading in text
        assert "dpi3" in text

    def test_jsonl_export_parses(self, scenario, tmp_path):
        path = tmp_path / "events.jsonl"
        count = export_jsonl(scenario.hub, path)
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(events) == count > 0
        kinds = {event["type"] for event in events}
        assert kinds == {"metric", "span"}

    def test_prometheus_export_contains_core_series(self, scenario):
        text = prometheus_text(scenario.hub.registry)
        assert 'dpi_bytes_scanned_total{instance="dpi3"}' in text
        assert "# TYPE dpi_scan_latency_seconds histogram" in text
        assert "dpi_scan_latency_seconds_bucket" in text


class TestScanCacheSurfacing:
    def test_cache_gauges_match_cache_stats(self):
        result = run_figure5_scenario(packets=12, seed=7, scan_cache_size=64)
        registry = result.hub.registry
        stats = result.instance.scan_cache_stats()
        assert stats is not None
        for stat_name in ("hits", "misses", "evictions"):
            assert registry.value(
                f"dpi_scan_cache_{stat_name}", instance="dpi3"
            ) == stats[stat_name]
        assert stats["misses"] > 0
        assert "hit" in render_report(result.hub)


class TestTelemetryDisabledParity:
    def test_data_plane_identical_with_telemetry_off(self, scenario):
        plain = run_figure5_scenario(packets=PACKETS, seed=7, telemetry=False)
        assert plain.hub is None
        assert plain.topology.simulator.telemetry is None
        assert plain.payload_bytes_sent == scenario.payload_bytes_sent
        # Packet ids are process-global, so compare id *sequences* relative
        # to each run's first alert rather than absolute values.
        for name in ("ids1", "ids2"):
            ours = plain.middleboxes[name].alerts
            theirs = scenario.middleboxes[name].alerts
            assert [a.rule_id for a in ours] == [a.rule_id for a in theirs]
            assert len(ours) == len(theirs)
            if ours:
                base_ours = ours[0].packet_id
                base_theirs = theirs[0].packet_id
                assert [a.packet_id - base_ours for a in ours] == [
                    a.packet_id - base_theirs for a in theirs
                ]
        assert [
            (flow, rule) for (flow, rule) in plain.middleboxes["av1"].detections
        ] == [
            (flow, rule)
            for (flow, rule) in scenario.middleboxes["av1"].detections
        ]
        # scan_seconds is wall-clock timing; the rest must match exactly.
        assert plain.instance.telemetry.packets_scanned == \
            scenario.instance.telemetry.packets_scanned
        assert plain.instance.telemetry.bytes_scanned == \
            scenario.instance.telemetry.bytes_scanned
        assert plain.instance.telemetry.total_matches == \
            scenario.instance.telemetry.total_matches

    def test_tracing_can_be_disabled_alone(self):
        result = run_figure5_scenario(packets=6, seed=7, tracing=False)
        assert result.hub.tracer is None
        registry = result.hub.registry
        assert registry.value(
            "dpi_packets_scanned_total", instance="dpi3"
        ) == 6
        # Origin counters must not double-count on forwarding hops.
        originated = sum(
            metric.value
            for metric in registry.collect_named("host_packets_origin_total")
        )
        assert originated == 6
