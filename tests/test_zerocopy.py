"""Unit tests for the zero-copy shared-memory shard backend.

Pins the arena lifecycle (lazy start, growth, retire, unlink-on-shutdown),
the descriptor scan path's equivalence with serial execution, the
double-buffered pipeline, the drain-to-serial fallback when workers die
mid-flight, and — the teardown satellite's contract — that no shared-memory
segment or worker process survives shutdown, failover, or garbage
collection.
"""

import glob
import multiprocessing
import os

import pytest

from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.core.sharding import ShardedAutomaton
from repro.core.workers import BACKEND_NAMES, make_backend, make_shard_spec
from repro.core.zerocopy import (
    ARENA_NAME_PREFIX,
    DEFAULT_ARENA_BYTES,
    ZeroCopyBackend,
    _scan_descriptors,
    automaton_from_spec,
)

PATTERN_SETS = {
    1: [Pattern(0, b"attack"), Pattern(1, b"worm"), Pattern(2, b"ab")],
    3: [Pattern(0, b"worm"), Pattern(1, b"bad"), Pattern(2, b"aba")],
}

PAYLOADS = [
    b"an attack rides this worm of a packet",
    b"",
    b"ababababad",
    b"nothing to see",
    b"worm" * 40,
]


def shm_segments() -> list:
    """Live /dev/shm segments created by *this* process's backends.

    Arena names embed the creating pid, so the leak check stays immune to
    other repro processes (parallel test runs, a benchmark) that hold
    their own live arenas.
    """
    return glob.glob(f"/dev/shm/{ARENA_NAME_PREFIX}_{os.getpid()}_*")


def build_pair(shards=3, workers=2, **kwargs):
    serial = ShardedAutomaton(PATTERN_SETS, shards)
    zerocopy = ShardedAutomaton(
        PATTERN_SETS, shards, backend="zerocopy", workers=workers, **kwargs
    )
    return serial, zerocopy


def raw(results):
    return [
        (result.raw_matches, result.end_state, result.bytes_scanned)
        for result in results
    ]


class TestEquivalence:
    @pytest.mark.parametrize("shard_kernel", ("reference", "flat", "regex"))
    def test_scan_matches_serial(self, shard_kernel):
        serial = ShardedAutomaton(PATTERN_SETS, 3, shard_kernel=shard_kernel)
        zerocopy = ShardedAutomaton(
            PATTERN_SETS, 3, shard_kernel=shard_kernel,
            backend="zerocopy", workers=2,
        )
        try:
            for payload in PAYLOADS:
                expected = serial.scan(payload)
                actual = zerocopy.scan(payload)
                assert actual.raw_matches == expected.raw_matches
                assert actual.end_state == expected.end_state
                assert actual.bytes_scanned == expected.bytes_scanned
        finally:
            zerocopy.shutdown()

    def test_scan_batch_matches_serial(self):
        serial, zerocopy = build_pair()
        try:
            assert raw(zerocopy.scan_batch(PAYLOADS)) == raw(
                serial.scan_batch(PAYLOADS)
            )
        finally:
            zerocopy.shutdown()

    def test_pipelined_batch_matches_plain_batch(self):
        serial, zerocopy = build_pair()
        try:
            expected = raw(serial.scan_batch(PAYLOADS))
            assert raw(zerocopy.scan_batch(PAYLOADS, pipelined=True)) == expected
            # The constructor default routes through the same path.
            flagged = ShardedAutomaton(
                PATTERN_SETS, 3, backend="zerocopy", workers=2, pipelined=True
            )
            try:
                assert raw(flagged.scan_batch(PAYLOADS)) == expected
            finally:
                flagged.shutdown()
        finally:
            zerocopy.shutdown()

    def test_bitmap_state_and_limit_ride_the_descriptors(self):
        serial, zerocopy = build_pair()
        try:
            bitmap = serial.bitmask_of([3])
            prefix = zerocopy.scan(b"an atta").end_state
            expected = serial.scan(
                b"ck and a worm", bitmap, serial.scan(b"an atta").end_state, 5
            )
            actual = zerocopy.scan(b"ck and a worm", bitmap, prefix, 5)
            assert actual.raw_matches == expected.raw_matches
            assert actual.bytes_scanned == expected.bytes_scanned
        finally:
            zerocopy.shutdown()

    def test_pipelined_on_serial_backend_is_a_silent_no_op(self):
        serial = ShardedAutomaton(PATTERN_SETS, 3)
        assert raw(serial.scan_batch(PAYLOADS, pipelined=True)) == raw(
            serial.scan_batch(PAYLOADS)
        )

    def test_scan_descriptors_runs_the_worker_path_in_process(self):
        # The exact function pool children run, driven directly: payload
        # slices come out of a buffer by (offset, length) descriptor.
        spec = make_shard_spec(PATTERN_SETS, "sparse", "flat")
        automaton = automaton_from_spec(spec)
        arena = bytearray(b"##an attack##")
        view = memoryview(arena)
        out = _scan_descriptors(
            [automaton], view, [(0, 2, 9, automaton.all_middleboxes_bitmap,
                                 automaton.root, None)]
        )
        expected = automaton.scan(b"an attack")
        assert out == [
            (expected.raw_matches, expected.end_state, expected.bytes_scanned)
        ]
        view.release()


class TestArenaLifecycle:
    def test_lazy_start_and_named_segment(self):
        backend = ZeroCopyBackend(
            (make_shard_spec(PATTERN_SETS, "sparse", "flat"),), workers=1
        )
        assert backend.arena_name is None
        assert backend.arena_capacity == 0
        assert backend.descriptor_queue_depth() == 0
        backend.scan_shards([(0, b"attack", (1 << 1) | (1 << 3), 0, None)])
        assert backend.arena_name.startswith(ARENA_NAME_PREFIX)
        assert backend.arena_capacity == DEFAULT_ARENA_BYTES
        assert len(shm_segments()) == 1
        backend.shutdown()
        assert shm_segments() == []

    def test_arena_grows_and_old_segment_is_unlinked(self):
        serial, zerocopy = build_pair(workers=1)
        try:
            big = [b"x" * (700 * 1024), b"attack" + b"y" * (600 * 1024)]
            assert raw(zerocopy.scan_batch(big)) == raw(serial.scan_batch(big))
            backend = zerocopy._kernel._backend
            assert backend.arena_capacity > DEFAULT_ARENA_BYTES
            assert len(shm_segments()) == 1  # the retired arena is gone
        finally:
            zerocopy.shutdown()
        assert shm_segments() == []

    def test_copy_avoidance_accounting(self):
        _, zerocopy = build_pair(shards=3)
        try:
            zerocopy.scan_batch(PAYLOADS)
            backend = zerocopy._kernel._backend
            batch_bytes = sum(len(payload) for payload in PAYLOADS)
            # 3 shards would each have pickled the batch; the arena wrote
            # it once.
            assert backend.copy_bytes_avoided == 2 * batch_bytes
            assert backend.occupied_bytes == batch_bytes
        finally:
            zerocopy.shutdown()

    def test_shutdown_is_idempotent_and_restartable(self):
        _, zerocopy = build_pair()
        zerocopy.scan(b"attack")
        zerocopy.shutdown()
        zerocopy.shutdown()
        assert shm_segments() == []
        # The backend lazily restarts after a shutdown (restart semantics).
        assert zerocopy.scan(b"attack").raw_matches
        zerocopy.shutdown()
        assert shm_segments() == []
        assert multiprocessing.active_children() == []

    def test_garbage_collection_runs_the_finalizer(self):
        backend = ZeroCopyBackend(
            (make_shard_spec(PATTERN_SETS, "sparse", "flat"),), workers=1
        )
        backend.scan_shards([(0, b"attack", (1 << 1) | (1 << 3), 0, None)])
        assert len(shm_segments()) == 1
        del backend
        import gc

        gc.collect()
        assert shm_segments() == []
        assert multiprocessing.active_children() == []

    def test_validation(self):
        specs = (make_shard_spec(PATTERN_SETS, "sparse", "flat"),)
        with pytest.raises(ValueError, match="positive"):
            ZeroCopyBackend(specs, workers=0)
        with pytest.raises(ValueError, match="positive"):
            ZeroCopyBackend(specs, arena_bytes=0)
        assert "zerocopy" in BACKEND_NAMES
        backend = make_backend(
            "zerocopy", automata=(), specs=specs, workers=None
        )
        assert isinstance(backend, ZeroCopyBackend)
        assert backend.workers >= 1

    def test_empty_task_lists(self):
        backend = ZeroCopyBackend(
            (make_shard_spec(PATTERN_SETS, "sparse", "flat"),), workers=1
        )
        assert backend.scan_shards([]) == []
        assert backend.scan_shard_batches([]) == []
        assert backend.scan_chunked_batches([]) == []
        assert backend.arena_name is None  # nothing was ever started
        backend.shutdown()


class TestFailureDrain:
    def test_worker_death_falls_back_to_serial_without_lost_matches(self):
        serial, zerocopy = build_pair()
        try:
            expected = raw(serial.scan_batch(PAYLOADS))
            assert raw(zerocopy.scan_batch(PAYLOADS)) == expected
            backend = zerocopy._kernel._backend
            for process in backend._state.processes:
                process.terminate()
                process.join()
            # The dead pool is detected mid-batch; the kernel drains it
            # (unlinking the arena) and reruns the batch serially.
            assert raw(zerocopy.scan_batch(PAYLOADS)) == expected
            assert zerocopy.active_backend_name == "serial"
            assert zerocopy.pool_fallbacks == 1
            assert shm_segments() == []
        finally:
            zerocopy.shutdown()
        assert multiprocessing.active_children() == []

    def test_worker_death_mid_pipeline_reruns_whole_batch(self):
        serial, zerocopy = build_pair()
        try:
            expected = raw(serial.scan_batch(PAYLOADS))
            backend = zerocopy._kernel._backend
            zerocopy.scan(b"warm the arena up")
            for process in backend._state.processes:
                process.terminate()
                process.join()
            assert raw(zerocopy.scan_batch(PAYLOADS, pipelined=True)) == expected
            assert zerocopy.active_backend_name == "serial"
            assert shm_segments() == []
        finally:
            zerocopy.shutdown()

    def test_instance_crash_drains_arena(self):
        config = InstanceConfig(
            pattern_sets={1: [Pattern(0, b"attack")]},
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={100: (1,)},
            kernel="sharded",
            shards=2,
            shard_backend="zerocopy",
            shard_workers=1,
        )
        instance = DPIServiceInstance(config)
        assert instance.inspect(b"an attack packet", chain_id=100).has_matches
        assert len(shm_segments()) == 1
        instance.crash()
        assert shm_segments() == []
        assert multiprocessing.active_children() == []
        instance.restart()
        assert instance.inspect(b"an attack packet", chain_id=100).has_matches
        instance.automaton.shutdown()
        assert shm_segments() == []


class TestConfigWiring:
    def test_shard_workers_and_pipelined_require_sharded_kernel(self):
        base = dict(
            pattern_sets={1: [Pattern(0, b"attack")]},
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={100: (1,)},
        )
        with pytest.raises(ValueError, match="shard_workers"):
            InstanceConfig(**base, shard_workers=2)
        with pytest.raises(ValueError, match="shard_pipelined"):
            InstanceConfig(**base, shard_pipelined=True)
        with pytest.raises(ValueError, match="negative shard worker"):
            InstanceConfig(
                **base, kernel="sharded", shards=2, shard_workers=-1
            )

    def test_instance_respects_worker_count_and_pipeline_flag(self):
        config = InstanceConfig(
            pattern_sets={1: [Pattern(0, b"attack")]},
            profiles={1: MiddleboxProfile(1, name="ids")},
            chain_map={100: (1,)},
            kernel="sharded",
            shards=3,
            shard_backend="zerocopy",
            shard_workers=2,
            shard_pipelined=True,
        )
        instance = DPIServiceInstance(config)
        try:
            assert instance.automaton._kernel._backend.workers == 2
            assert instance.automaton.pipelined is True
            assert instance.inspect(b"the attack", chain_id=100).has_matches
        finally:
            instance.automaton.shutdown()
        assert shm_segments() == []


class TestTelemetry:
    def test_arena_gauges_and_copy_counter(self):
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub()
        _, zerocopy = build_pair(shards=2)
        try:
            zerocopy.bind_telemetry(hub, "dpi-zc")
            zerocopy.scan_batch(PAYLOADS)
            registry = hub.registry
            occupancy = registry.collect_named("dpi_shard_arena_bytes")
            assert occupancy and occupancy[0].value == sum(
                len(payload) for payload in PAYLOADS
            )
            depth = registry.collect_named("dpi_shard_descriptor_queue_depth")
            assert depth and depth[0].value == 0  # drained between batches
            avoided = registry.collect_named(
                "dpi_shard_copy_bytes_avoided_total"
            )
            assert avoided and avoided[0].value == sum(
                len(payload) for payload in PAYLOADS
            )
        finally:
            zerocopy.shutdown()

    def test_gauges_read_zero_after_serial_fallback(self):
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub()
        _, zerocopy = build_pair(shards=2)
        try:
            zerocopy.bind_telemetry(hub, "dpi-zc")
            zerocopy.scan_batch(PAYLOADS)
            backend = zerocopy._kernel._backend
            for process in backend._state.processes:
                process.terminate()
                process.join()
            zerocopy.scan(b"post-fallback attack")
            assert zerocopy.active_backend_name == "serial"
            occupancy = hub.registry.collect_named("dpi_shard_arena_bytes")
            assert occupancy and occupancy[0].value == 0
        finally:
            zerocopy.shutdown()


class _FailingStartContext:
    """Wraps a real mp context; the Nth ``Process.start()`` raises."""

    def __init__(self, real, fail_at):
        self._real = real
        self._fail_at = fail_at
        self._starts = 0

    def Queue(self):
        return self._real.Queue()

    def Process(self, *args, **kwargs):
        process = self._real.Process(*args, **kwargs)
        real_start = process.start

        def start():
            self._starts += 1
            if self._starts >= self._fail_at:
                raise RuntimeError("injected fork failure")
            real_start()

        process.start = start
        return process


class TestProvisionCrashCleanup:
    """The RES001 regressions: a raise mid-provision must not strand
    /dev/shm arenas or half-started workers (the analyzer's exception-
    window findings on ``_ensure_started``/``_ensure_capacity``)."""

    TASK = [(0, b"attack", (1 << 1) | (1 << 3), 0, None)]

    def test_start_failure_tears_down_segment_and_started_workers(
        self, monkeypatch
    ):
        from repro.core import zerocopy as zc

        real = zc.get_mp_context()
        monkeypatch.setattr(
            zc, "get_mp_context",
            lambda: _FailingStartContext(real, fail_at=2),
        )
        backend = ZeroCopyBackend(
            (make_shard_spec(PATTERN_SETS, "sparse", "flat"),), workers=2
        )
        # Worker 1 starts, worker 2's fork raises: the arena and the
        # already-running worker must both be reclaimed.
        with pytest.raises(RuntimeError, match="injected fork failure"):
            backend.scan_shards(self.TASK)
        assert shm_segments() == []
        assert multiprocessing.active_children() == []
        # The failure left no half-open state: once forking works again
        # the same backend provisions lazily and scans.
        monkeypatch.setattr(zc, "get_mp_context", lambda: real)
        assert backend.scan_shards(self.TASK)[0][0]
        backend.shutdown()
        assert shm_segments() == []

    def test_growth_failure_releases_the_replacement_arena(self):
        backend = ZeroCopyBackend(
            (make_shard_spec(PATTERN_SETS, "sparse", "flat"),), workers=1
        )
        try:
            backend.scan_shards(self.TASK)
            state = backend._state
            task_queue = state.task_queues[0]
            real_put = task_queue.put

            def exploding_put(item, *args, **kwargs):
                if isinstance(item, tuple) and item and item[0] == "retire":
                    raise RuntimeError("injected queue failure")
                return real_put(item, *args, **kwargs)

            task_queue.put = exploding_put
            big = [(0, b"x" * (DEFAULT_ARENA_BYTES + 1), 0b1010, 0, None)]
            with pytest.raises(RuntimeError, match="injected queue failure"):
                backend.scan_shards(big)
            # Exactly the original arena survives; the unowned
            # replacement was closed and unlinked on the raise path.
            assert len(shm_segments()) == 1
            assert backend.arena_capacity == DEFAULT_ARENA_BYTES
            # Remove the shadowing attribute: growth then succeeds and
            # retires the old segment as usual.
            del task_queue.put
            assert backend.scan_shards(big)
            assert backend.arena_capacity > DEFAULT_ARENA_BYTES
            assert len(shm_segments()) == 1
        finally:
            backend.shutdown()
        assert shm_segments() == []
