"""Property tests for the virtual scanner's flow semantics (Section 5.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combined import CombinedAutomaton
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile, VirtualScanner

CHAIN = 1


def _to_bytes(raw):
    return bytes(b % 3 + 0x41 for b in raw)


pattern = st.binary(min_size=1, max_size=5).map(_to_bytes)
pattern_list = st.lists(pattern, min_size=1, max_size=6, unique=True)
stream_strategy = st.binary(min_size=0, max_size=60).map(_to_bytes)
cut_list = st.lists(st.integers(min_value=1, max_value=59), max_size=6)


def make_scanner(patterns, stateful):
    automaton = CombinedAutomaton(
        {0: [Pattern(i, p) for i, p in enumerate(patterns)]}
    )
    profiles = {0: MiddleboxProfile(0, stateful=stateful)}
    return VirtualScanner(automaton, profiles, {CHAIN: (0,)})


def packetize_at(stream, cuts):
    boundaries = sorted({0, len(stream), *[c for c in cuts if c < len(stream)]})
    return [
        stream[boundaries[i] : boundaries[i + 1]]
        for i in range(len(boundaries) - 1)
    ]


@given(patterns=pattern_list, stream=stream_strategy, cuts=cut_list)
@settings(max_examples=150, deadline=None)
def test_stateful_scan_is_packetization_invariant(patterns, stream, cuts):
    """However a flow is packetized, a stateful middlebox sees exactly the
    matches of the whole stream, at flow-relative positions."""
    whole_scanner = make_scanner(patterns, stateful=True)
    whole = whole_scanner.scan_packet(stream, CHAIN, flow_key="flow")
    expected = set(whole.matches_for(0))

    split_scanner = make_scanner(patterns, stateful=True)
    collected = set()
    for packet in packetize_at(stream, cuts):
        result = split_scanner.scan_packet(packet, CHAIN, flow_key="flow")
        collected |= set(result.matches_for(0))
    assert collected == expected


@given(patterns=pattern_list, stream=stream_strategy, cuts=cut_list)
@settings(max_examples=150, deadline=None)
def test_stateless_never_reports_cross_packet_matches(patterns, stream, cuts):
    """A stateless middlebox's matches per packet equal scanning each packet
    in isolation — no cross-packet artifacts, whatever the packetization."""
    scanner = make_scanner(patterns, stateful=False)
    isolated_scanner = make_scanner(patterns, stateful=False)
    for index, packet in enumerate(packetize_at(stream, cuts)):
        streamed = scanner.scan_packet(packet, CHAIN, flow_key="flow")
        isolated = isolated_scanner.scan_packet(packet, CHAIN, flow_key=None)
        assert streamed.matches_for(0) == isolated.matches_for(0), index


@given(patterns=pattern_list, stream=stream_strategy, cuts=cut_list)
@settings(max_examples=100, deadline=None)
def test_mixed_chain_stateless_subset_of_packet_matches(patterns, stream, cuts):
    """With a stateful middlebox forcing mid-DFA resumes, a stateless
    middlebox sharing the chain still reports exactly the per-packet
    matches."""
    automaton = CombinedAutomaton(
        {
            0: [Pattern(i, p) for i, p in enumerate(patterns)],
            1: [Pattern(i, p) for i, p in enumerate(patterns)],
        }
    )
    profiles = {
        0: MiddleboxProfile(0, stateful=False),
        1: MiddleboxProfile(1, stateful=True),
    }
    scanner = VirtualScanner(automaton, profiles, {CHAIN: (0, 1)})
    oracle = make_scanner(patterns, stateful=False)
    for packet in packetize_at(stream, cuts):
        result = scanner.scan_packet(packet, CHAIN, flow_key="flow")
        isolated = oracle.scan_packet(packet, CHAIN, flow_key=None)
        assert result.matches_for(0) == isolated.matches_for(0)


@given(
    patterns=pattern_list,
    stream=stream_strategy,
    stop=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=100, deadline=None)
def test_stopping_condition_prunes_exactly_deep_matches(patterns, stream, stop):
    automaton = CombinedAutomaton(
        {0: [Pattern(i, p) for i, p in enumerate(patterns)]}
    )
    bounded = VirtualScanner(
        automaton,
        {0: MiddleboxProfile(0, stopping_condition=stop)},
        {CHAIN: (0,)},
    )
    unbounded = VirtualScanner(
        automaton, {0: MiddleboxProfile(0)}, {CHAIN: (0,)}
    )
    got = set(bounded.scan_packet(stream, CHAIN).matches_for(0))
    full = set(unbounded.scan_packet(stream, CHAIN).matches_for(0))
    assert got == {(pid, pos) for pid, pos in full if pos <= stop}
