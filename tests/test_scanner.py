"""Unit tests for the virtual scanner (Section 5.2 semantics)."""

import pytest

from repro.core.combined import CombinedAutomaton
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile, ScanResult, VirtualScanner


def make_scanner(
    stateful=(False, False),
    stopping=(None, None),
    chain=(0, 1),
    layout="sparse",
):
    pattern_sets = {
        0: [Pattern(0, b"attack"), Pattern(1, b"evil")],
        1: [Pattern(0, b"virus"), Pattern(1, b"attack")],
    }
    automaton = CombinedAutomaton(pattern_sets, layout=layout)
    profiles = {
        0: MiddleboxProfile(0, name="ids", stateful=stateful[0], stopping_condition=stopping[0]),
        1: MiddleboxProfile(1, name="av", stateful=stateful[1], stopping_condition=stopping[1]),
    }
    return VirtualScanner(automaton, profiles, {100: chain})


class TestBasicScanning:
    def test_both_middleboxes_see_shared_pattern(self):
        scanner = make_scanner()
        result = scanner.scan_packet(b"an attack here", 100)
        assert (0, 9) in result.matches_for(0)  # "attack" is id 0 for mb 0
        assert (1, 9) in result.matches_for(1)  # ... and id 1 for mb 1

    def test_exclusive_patterns_go_to_owner_only(self):
        scanner = make_scanner()
        result = scanner.scan_packet(b"virus evil", 100)
        assert result.matches_for(0) == [(1, 10)]  # evil ends at 10
        assert result.matches_for(1) == [(0, 5)]  # virus ends at 5

    def test_unknown_chain_raises(self):
        scanner = make_scanner()
        with pytest.raises(KeyError, match="unknown policy chain"):
            scanner.scan_packet(b"x", 999)

    def test_no_matches(self):
        scanner = make_scanner()
        result = scanner.scan_packet(b"all quiet here", 100)
        assert not result.has_matches
        assert result.total_matches() == 0

    def test_chain_with_single_middlebox(self):
        scanner = make_scanner(chain=(1,))
        result = scanner.scan_packet(b"evil attack", 100)
        assert result.matches_for(0) == []
        assert (1, 11) in result.matches_for(1)
        # mb 0 is not on the chain: no entry at all for it.
        assert 0 not in result.matches

    def test_bytes_scanned(self):
        scanner = make_scanner()
        result = scanner.scan_packet(b"0123456789", 100)
        assert result.bytes_scanned == 10


class TestStatefulFlows:
    def test_cross_packet_match_for_stateful(self):
        scanner = make_scanner(stateful=(True, True))
        flow = "flow-1"
        first = scanner.scan_packet(b"xxatt", 100, flow_key=flow)
        assert not first.has_matches
        second = scanner.scan_packet(b"ack", 100, flow_key=flow)
        # Position is within the flow: 5 bytes in packet 1 + 3 in packet 2.
        assert (0, 8) in second.matches_for(0)
        assert (1, 8) in second.matches_for(1)

    def test_stateless_never_sees_cross_packet_match(self):
        # mb 0 stateless, mb 1 stateful on the same chain: the scan resumes
        # mid-DFA, but the stateless middlebox must not get the match.
        scanner = make_scanner(stateful=(False, True))
        flow = "flow-2"
        scanner.scan_packet(b"xxatt", 100, flow_key=flow)
        second = scanner.scan_packet(b"ack", 100, flow_key=flow)
        assert second.matches_for(0) == []
        assert (1, 8) in second.matches_for(1)

    def test_stateless_still_sees_within_packet_match_after_restore(self):
        scanner = make_scanner(stateful=(False, True))
        flow = "flow-3"
        scanner.scan_packet(b"xxatt", 100, flow_key=flow)
        second = scanner.scan_packet(b"ack evil", 100, flow_key=flow)
        # "evil" is fully inside packet 2: stateless mb 0 reports it at its
        # packet-relative position.
        assert (1, 8) in second.matches_for(0)

    def test_positions_relative_to_flow_for_stateful(self):
        scanner = make_scanner(stateful=(True, True))
        flow = "flow-4"
        scanner.scan_packet(b"0123456789", 100, flow_key=flow)
        second = scanner.scan_packet(b"virus", 100, flow_key=flow)
        assert (0, 15) in second.matches_for(1)

    def test_flows_are_isolated(self):
        scanner = make_scanner(stateful=(True, True))
        scanner.scan_packet(b"xxatt", 100, flow_key="a")
        other = scanner.scan_packet(b"ack", 100, flow_key="b")
        assert not other.has_matches

    def test_stateless_chain_keeps_no_flow_state(self):
        scanner = make_scanner(stateful=(False, False))
        scanner.scan_packet(b"xxatt", 100, flow_key="a")
        assert len(scanner.flow_table) == 0

    def test_stateful_chain_records_flow_state(self):
        scanner = make_scanner(stateful=(True, False))
        scanner.scan_packet(b"xxatt", 100, flow_key="a")
        assert len(scanner.flow_table) == 1
        entry = scanner.flow_table.lookup("a")
        assert entry.offset == 5


class TestStoppingConditions:
    def test_stateless_stop_prunes_deep_matches(self):
        scanner = make_scanner(stopping=(4, None))
        result = scanner.scan_packet(b"xxxevil", 100)
        # evil ends at 7 > stop 4 for mb 0; mb 1 doesn't own "evil".
        assert result.matches_for(0) == []

    def test_stateless_stop_keeps_shallow_matches(self):
        scanner = make_scanner(stopping=(10, None))
        result = scanner.scan_packet(b"xxevil", 100)
        assert (1, 6) in result.matches_for(0)

    def test_stateful_stop_is_flow_depth(self):
        scanner = make_scanner(stateful=(True, True), stopping=(None, 12))
        flow = "flow-5"
        scanner.scan_packet(b"0123456789", 100, flow_key=flow)
        result = scanner.scan_packet(b"attack", 100, flow_key=flow)
        # attack ends at flow position 16 > 12: pruned for mb 1.
        assert result.matches_for(1) == []
        # mb 0 (stateful, unbounded) sees it at flow position 16.
        assert (0, 16) in result.matches_for(0)

    def test_scan_stops_at_most_conservative_condition(self):
        # Both middleboxes bounded: the scan itself is truncated.
        scanner = make_scanner(stopping=(4, 6))
        result = scanner.scan_packet(b"0123456789attack", 100)
        assert result.bytes_scanned == 6

    def test_unbounded_middlebox_forces_full_scan(self):
        scanner = make_scanner(stopping=(4, None))
        result = scanner.scan_packet(b"0123456789attack", 100)
        assert result.bytes_scanned == 16

    def test_scan_limit_exhausted_stateful(self):
        scanner = make_scanner(stateful=(True, True), stopping=(5, 5))
        flow = "flow-6"
        scanner.scan_packet(b"01234", 100, flow_key=flow)
        result = scanner.scan_packet(b"56789", 100, flow_key=flow)
        assert result.bytes_scanned == 0


class TestChainManagement:
    def test_set_chain_adds_new_chain(self):
        scanner = make_scanner()
        scanner.set_chain(200, (0,))
        result = scanner.scan_packet(b"evil", 200)
        assert (1, 4) in result.matches_for(0)

    def test_set_chain_unknown_middlebox(self):
        scanner = make_scanner()
        with pytest.raises(KeyError):
            scanner.set_chain(200, (5,))

    def test_remove_chain(self):
        scanner = make_scanner()
        scanner.remove_chain(100)
        with pytest.raises(KeyError):
            scanner.scan_packet(b"x", 100)

    def test_chain_referencing_missing_profile_rejected(self):
        pattern_sets = {0: [Pattern(0, b"abcd")]}
        automaton = CombinedAutomaton(pattern_sets)
        profiles = {0: MiddleboxProfile(0)}
        with pytest.raises(KeyError):
            VirtualScanner(automaton, profiles, {1: (0, 9)})


class TestScanFlowHelper:
    def test_scan_flow_returns_per_packet_results(self):
        scanner = make_scanner(stateful=(True, True))
        results = scanner.scan_flow([b"xxatt", b"ack"], 100, flow_key="f")
        assert len(results) == 2
        assert not results[0].has_matches
        assert results[1].has_matches


class TestProfileValidation:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxProfile(-1)

    def test_nonpositive_stopping_rejected(self):
        with pytest.raises(ValueError):
            MiddleboxProfile(0, stopping_condition=0)

    def test_scan_result_defaults(self):
        result = ScanResult()
        assert not result.has_matches
        assert result.matches_for(3) == []


class TestChainPrecompute:
    def test_set_chain_installs_precomputed_chain_data(self):
        scanner = make_scanner(chain=(0,))
        scanner.set_chain(200, (0, 1))
        result = scanner.scan_packet(b"virus evil", 200)
        assert result.matches_for(1) == [(0, 5)]
        # Chain 100 keeps its original (0,)-only view.
        result = scanner.scan_packet(b"virus evil", 100)
        assert 1 not in result.matches

    def test_set_chain_replaces_existing_chain(self):
        scanner = make_scanner(chain=(0, 1))
        scanner.set_chain(100, (1,))
        result = scanner.scan_packet(b"evil virus", 100)
        assert 0 not in result.matches
        assert result.matches_for(1) == [(0, 10)]

    def test_remove_chain_drops_all_precomputed_state(self):
        scanner = make_scanner()
        scanner.remove_chain(100)
        with pytest.raises(KeyError, match="unknown policy chain"):
            scanner.scan_packet(b"x", 100)
        assert 100 not in scanner.chain_map

    def test_stateful_flag_tracks_chain_membership(self):
        scanner = make_scanner(stateful=(True, False), chain=(1,))
        # Chain holds only the stateless middlebox: no flow state kept.
        scanner.scan_packet(b"att", 100, flow_key="f")
        assert "f" not in scanner.flow_table
        scanner.set_chain(100, (0, 1))
        scanner.scan_packet(b"att", 100, flow_key="f")
        assert "f" in scanner.flow_table

    def test_select_kernel_passthrough(self):
        scanner = make_scanner()
        scanner.select_kernel("flat")
        assert scanner.automaton.kernel_name == "flat"
        result = scanner.scan_packet(b"an attack here", 100)
        assert (0, 9) in result.matches_for(0)
        with pytest.raises(ValueError):
            scanner.select_kernel("turbo")
