"""The evasion & ambiguity robustness suite: corpus + differential gate.

The checked-in ``tests/corpus/regression.json`` is a permanent gate —
every case in it pins either a previously-fixed divergence (reassembly
overflow crash, ambiguous-overlap resolution, truncated gzip) or a
minimized generated case, and every kernel×backend leg must stay in
bit-for-bit agreement on it forever.
"""

import json
from pathlib import Path

import pytest

from repro.adversarial import (
    CASE_KINDS,
    AdversarialCase,
    Corpus,
    default_environment,
    default_legs,
    generate_corpus,
    legs_by_name,
    replay_case,
    run_differential,
)
from repro.adversarial import differential as differential_module
from repro.cli import main

CORPUS_PATH = Path(__file__).parent / "corpus" / "regression.json"


class TestCorpusGenerator:
    def test_same_seed_same_corpus(self):
        assert (
            generate_corpus(77, cases_per_kind=3).to_dict()
            == generate_corpus(77, cases_per_kind=3).to_dict()
        )

    def test_different_seeds_differ(self):
        assert (
            generate_corpus(1, cases_per_kind=3).to_dict()
            != generate_corpus(2, cases_per_kind=3).to_dict()
        )

    def test_covers_every_kind(self):
        corpus = generate_corpus(5, cases_per_kind=2)
        assert {case.kind for case in corpus.cases} == set(CASE_KINDS)
        assert len(corpus.cases) == 2 * len(CASE_KINDS)

    def test_kind_subset(self):
        corpus = generate_corpus(5, cases_per_kind=2, kinds=("gzip",))
        assert {case.kind for case in corpus.cases} == {"gzip"}

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            generate_corpus(5, kinds=("gzip", "nonesuch"))

    def test_dict_round_trip(self):
        corpus = generate_corpus(9, cases_per_kind=2)
        clone = Corpus.from_dict(
            json.loads(json.dumps(corpus.to_dict()))
        )
        assert clone.to_dict() == corpus.to_dict()
        assert clone.cases == corpus.cases
        assert clone.environment.chain_map == corpus.environment.chain_map

    def test_file_round_trip(self, tmp_path):
        corpus = generate_corpus(9, cases_per_kind=1)
        path = tmp_path / "corpus.json"
        corpus.dump(path)
        assert Corpus.load(path).to_dict() == corpus.to_dict()


class TestCaseValidation:
    def test_rejects_unknown_case_kind(self):
        with pytest.raises(ValueError, match="kind"):
            AdversarialCase(
                name="x", kind="bogus", chain_id=100,
                segments=((0, 0, b"a"),),
            )

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            AdversarialCase(
                name="x", kind="split", chain_id=100,
                segments=((0, 0, b"a"),), policy="middle",
            )

    def test_rejects_empty_segments(self):
        with pytest.raises(ValueError, match="segment"):
            AdversarialCase(
                name="x", kind="split", chain_id=100, segments=(),
            )


class TestLegs:
    def test_default_legs_cover_every_kernel_and_backend(self):
        legs = default_legs()
        names = {leg.name for leg in legs}
        assert len(names) == len(legs) == 12
        monolithic = [leg for leg in legs if not leg.shards]
        sharded = [leg for leg in legs if leg.shards]
        assert {leg.kernel for leg in monolithic} == {
            "reference", "flat", "regex",
        }
        assert {leg.shard_kernel for leg in sharded} == {
            "reference", "flat", "regex",
        }
        assert {leg.backend for leg in sharded} == {
            "serial", "process", "zerocopy",
        }

    def test_legs_by_name_preserves_request_order(self):
        legs = legs_by_name(["shard-flat-serial", "mono-regex"])
        assert [leg.name for leg in legs] == [
            "shard-flat-serial", "mono-regex",
        ]

    def test_legs_by_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="nonesuch"):
            legs_by_name(["mono-flat", "nonesuch"])

    def test_run_differential_rejects_empty_legs(self):
        with pytest.raises(ValueError, match="legs"):
            run_differential(generate_corpus(1, cases_per_kind=1), legs=[])


class TestRegressionCorpusGate:
    """The permanent gate: zero divergences on the checked-in corpus."""

    def test_checked_in_corpus_loads(self):
        corpus = Corpus.load(CORPUS_PATH)
        assert len(corpus.cases) >= 10
        names = [case.name for case in corpus.cases]
        assert len(set(names)) == len(names)
        # The historical-divergence pins must stay present.
        assert "reg-overflow-buffererror" in names
        assert "reg-overlap-first-wins" in names
        assert "reg-overlap-last-wins" in names
        assert "reg-gzip-truncated" in names
        assert "reg-stopping-straddle" in names

    def test_zero_divergences_across_all_legs(self):
        report = run_differential(Corpus.load(CORPUS_PATH))
        assert report.errors == []
        assert report.divergences == []
        assert report.ok
        assert report.cases == len(Corpus.load(CORPUS_PATH).cases)
        # The anomaly consumer rides every leg: all twelve kernel×backend
        # combinations must observe byte-identical match metadata, i.e.
        # one distinct flow-feature digest across legs.
        assert len(report.anomaly_digests) == len(report.legs)
        assert len(set(report.anomaly_digests.values())) == 1

    def test_overflow_case_actually_overflows(self):
        # The crash-regression case must keep exercising the overflow
        # path, or the gate silently stops guarding it.
        corpus = Corpus.load(CORPUS_PATH)
        case = next(
            c for c in corpus.cases if c.name == "reg-overflow-buffererror"
        )
        from repro.core.instance import DPIServiceInstance

        legs = legs_by_name(["mono-flat"])
        instance = DPIServiceInstance(
            legs[0].instance_config(corpus.environment)
        )
        record = replay_case(instance, case)
        assert record["reassembly"]["overflow_drops"] >= 1

    def test_policy_pair_diverges_in_released_bytes(self):
        # first-wins and last-wins must resolve the ambiguous retransmit
        # differently — that asymmetry is what the pair of cases pins.
        corpus = Corpus.load(CORPUS_PATH)
        by_name = {case.name: case for case in corpus.cases}
        from repro.core.instance import DPIServiceInstance

        leg = legs_by_name(["mono-flat"])[0]
        instance = DPIServiceInstance(leg.instance_config(corpus.environment))
        first = replay_case(instance, by_name["reg-overlap-first-wins"])
        last = replay_case(instance, by_name["reg-overlap-last-wins"])
        assert first["records"] != last["records"]


class TestDifferentialReporting:
    def test_divergent_leg_is_reported(self, monkeypatch):
        corpus = generate_corpus(3, cases_per_kind=1, kinds=("split",))
        real_replay = differential_module.replay_case

        def skewed_replay(instance, case, overflow_counter=None, **kwargs):
            record = real_replay(
                instance, case, overflow_counter=overflow_counter, **kwargs
            )
            if instance.config.kernel == "sharded":
                record["records"] = record["records"] + [{"extra": True}]
            return record

        monkeypatch.setattr(
            differential_module, "replay_case", skewed_replay
        )
        report = run_differential(
            corpus, legs=legs_by_name(["mono-flat", "shard-flat-serial"])
        )
        assert not report.ok
        assert any(
            "matches" in divergence.fields
            for divergence in report.divergences
        )
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["divergences"][0]["leg"] == "shard-flat-serial"
        assert payload["divergences"][0]["baseline"] == "mono-flat"

    def test_digest_mismatch_is_reported(self, monkeypatch):
        corpus = generate_corpus(3, cases_per_kind=1, kinds=("split",))
        digests = iter(["digest-a", "digest-b"])
        monkeypatch.setattr(
            differential_module,
            "deterministic_digest",
            lambda hub, *, extra_exclude_tokens=frozenset(): next(digests),
        )
        report = run_differential(
            corpus, legs=legs_by_name(["mono-flat", "mono-reference"])
        )
        assert not report.ok
        digest_divergences = [
            divergence
            for divergence in report.divergences
            if divergence.fields == ["telemetry_digest"]
        ]
        assert len(digest_divergences) == 1
        assert digest_divergences[0].case == "<telemetry-digest>"

    def test_crashing_case_is_an_error_not_an_abort(self, monkeypatch):
        corpus = generate_corpus(3, cases_per_kind=1, kinds=("split",))
        real_replay = differential_module.replay_case

        def crashing_replay(instance, case, overflow_counter=None, **kwargs):
            if instance.config.kernel == "sharded":
                raise RuntimeError("engine exploded")
            return real_replay(
                instance, case, overflow_counter=overflow_counter, **kwargs
            )

        monkeypatch.setattr(
            differential_module, "replay_case", crashing_replay
        )
        report = run_differential(
            corpus, legs=legs_by_name(["mono-flat", "shard-flat-serial"])
        )
        assert not report.ok
        assert report.errors
        leg, _case, message = report.errors[0]
        assert leg == "shard-flat-serial"
        assert "engine exploded" in message


class TestFuzzDiffCLI:
    def test_checked_in_corpus_exits_zero(self, capsys):
        code = main(
            [
                "fuzz-diff",
                "--corpus", str(CORPUS_PATH),
                "--legs", "mono-reference", "shard-flat-serial",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result: OK" in out

    def test_generated_corpus_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = main(
            [
                "fuzz-diff",
                "--seed", "3",
                "--cases", "1",
                "--legs", "mono-reference", "mono-flat",
                "--format", "json",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        written = json.loads(out_path.read_text())
        assert printed == written
        assert written["ok"] is True
        assert written["legs"] == ["mono-reference", "mono-flat"]

    def test_missing_corpus_file_exits_two(self, capsys):
        code = main(["fuzz-diff", "--corpus", "/nonexistent/corpus.json"])
        assert code == 2
        assert "cannot load corpus" in capsys.readouterr().err

    def test_unknown_leg_exits_two(self, capsys):
        code = main(["fuzz-diff", "--cases", "1", "--legs", "nonesuch"])
        assert code == 2
        assert "nonesuch" in capsys.readouterr().err


class TestEnvironmentShape:
    def test_default_environment_has_ambiguity_fuel(self):
        env = default_environment()
        # Self-overlapping and shared-prefix literals are the point of the
        # suite; losing them would quietly defang every overlap case.
        all_patterns = [
            pattern.data
            for patterns in env.pattern_sets.values()
            for pattern in patterns
        ]
        assert b"abab" in all_patterns and b"ababab" in all_patterns
        assert b"attack" in all_patterns and b"attach" in all_patterns
        profiles = env.profiles
        assert any(p.stopping_condition for p in profiles.values())
        assert any(p.stateful for p in profiles.values())
        assert any(not p.stateful for p in profiles.values())
