"""Integration: per-flow repinning — MCA^2 migration on the wire.

The stress monitor migrates a heavy flow's scan state between instances
(tested in test_mca2.py); here the *traffic steering* half is exercised:
the pinned flow's packets traverse the dedicated DPI host while every other
flow keeps its original path.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.net.controller import SDNController
from repro.net.flows import FiveTuple
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology

SIGNATURE = b"GET /cgi-bin/exploit"


@pytest.fixture
def pinnable_system():
    topo = Topology()
    topo.add_switch("s1")
    for name in ("user1", "user2", "mb1", "dpi_main", "dpi_dedicated"):
        topo.add_host(name)
        topo.add_link("s1", name)
    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    ids = IntrusionDetectionSystem(middlebox_id=1)
    ids.add_signature(0, SIGNATURE)
    dpi_controller = DPIController()
    ids.register_with(dpi_controller)

    tsa.register_middlebox_instance("ids", "mb1")
    tsa.register_middlebox_instance("dpi", "dpi_main")
    tsa.add_policy_chain(PolicyChain("web", ("ids",)))
    dpi_controller.attach_tsa(tsa)
    tsa.assign_traffic(TrafficAssignment("user1", "user2", "web"))
    tsa.realize()

    main_instance = dpi_controller.instances.provision("dpi_main")
    dedicated_instance = dpi_controller.instances.provision(
        "dpi_dedicated", layout="full"
    )
    topo.hosts["dpi_main"].set_function(DPIServiceFunction(main_instance))
    topo.hosts["dpi_dedicated"].set_function(
        DPIServiceFunction(dedicated_instance)
    )
    topo.hosts["mb1"].set_function(MiddleboxChainFunction(ids))
    return {
        "topo": topo,
        "tsa": tsa,
        "controller": dpi_controller,
        "ids": ids,
        "main": main_instance,
        "dedicated": dedicated_instance,
    }


def send(topo, payload, src_port):
    user1, user2 = topo.hosts["user1"], topo.hosts["user2"]
    packet = make_tcp_packet(
        user1.mac, user2.mac, user1.ip, user2.ip, src_port, 80, payload=payload
    )
    user1.send(packet)
    topo.run()
    return packet


def heavy_flow_tuple(topo, src_port):
    user1, user2 = topo.hosts["user1"], topo.hosts["user2"]
    return FiveTuple(
        src_ip=user1.ip,
        dst_ip=user2.ip,
        protocol=6,
        src_port=src_port,
        dst_port=80,
    )


class TestFlowPinning:
    def test_pinned_flow_uses_dedicated_instance(self, pinnable_system):
        topo = pinnable_system["topo"]
        tsa = pinnable_system["tsa"]
        send(topo, b"before pinning", src_port=6000)
        assert pinnable_system["main"].telemetry.packets_scanned == 1

        # Migrate the heavy flow: scan state + steering.
        flow = heavy_flow_tuple(topo, src_port=6000)
        pinnable_system["controller"].migrate_flow(
            flow, "dpi_main", "dpi_dedicated"
        )
        tsa.pin_flow("web", "user1", flow, {"dpi_main": "dpi_dedicated"})

        send(topo, b"after pinning", src_port=6000)
        assert pinnable_system["main"].telemetry.packets_scanned == 1
        assert pinnable_system["dedicated"].telemetry.packets_scanned == 1

    def test_other_flows_unaffected(self, pinnable_system):
        topo = pinnable_system["topo"]
        tsa = pinnable_system["tsa"]
        flow = heavy_flow_tuple(topo, src_port=6000)
        tsa.pin_flow("web", "user1", flow, {"dpi_main": "dpi_dedicated"})
        send(topo, b"other flow traffic", src_port=7000)
        assert pinnable_system["main"].telemetry.packets_scanned == 1
        assert pinnable_system["dedicated"].telemetry.packets_scanned == 0

    def test_detection_still_works_after_migration(self, pinnable_system):
        topo = pinnable_system["topo"]
        tsa = pinnable_system["tsa"]
        # The signature is split across the migration point.
        half = len(SIGNATURE) // 2
        send(topo, SIGNATURE[:half], src_port=6000)
        flow = heavy_flow_tuple(topo, src_port=6000)
        assert pinnable_system["controller"].migrate_flow(
            flow, "dpi_main", "dpi_dedicated"
        )
        tsa.pin_flow("web", "user1", flow, {"dpi_main": "dpi_dedicated"})
        send(topo, SIGNATURE[half:], src_port=6000)
        # Cross-packet, cross-instance detection: the carried DFA state
        # completes the match on the dedicated instance.
        assert len(pinnable_system["ids"].alerts) == 1

    def test_unpin_restores_original_path(self, pinnable_system):
        topo = pinnable_system["topo"]
        tsa = pinnable_system["tsa"]
        flow = heavy_flow_tuple(topo, src_port=6000)
        installed = tsa.pin_flow(
            "web", "user1", flow, {"dpi_main": "dpi_dedicated"}
        )
        send(topo, b"pinned", src_port=6000)
        assert pinnable_system["dedicated"].telemetry.packets_scanned == 1
        assert tsa.unpin_flow(installed) == 1
        send(topo, b"unpinned", src_port=6000)
        assert pinnable_system["main"].telemetry.packets_scanned == 1

    def test_pin_unknown_chain_rejected(self, pinnable_system):
        flow = heavy_flow_tuple(pinnable_system["topo"], src_port=1)
        with pytest.raises(KeyError):
            pinnable_system["tsa"].pin_flow(
                "ghost", "user1", flow, {"dpi_main": "dpi_dedicated"}
            )

    def test_pin_unknown_hop_rejected(self, pinnable_system):
        flow = heavy_flow_tuple(pinnable_system["topo"], src_port=1)
        with pytest.raises(KeyError):
            pinnable_system["tsa"].pin_flow(
                "web", "user1", flow, {"not-a-hop": "dpi_dedicated"}
            )

    def test_pin_unknown_assignment_rejected(self, pinnable_system):
        flow = heavy_flow_tuple(pinnable_system["topo"], src_port=1)
        with pytest.raises(KeyError):
            pinnable_system["tsa"].pin_flow(
                "web", "user2", flow, {"dpi_main": "dpi_dedicated"}
            )
