"""Unit tests for repro.autoscale: policies and the elastic controller.

Policies are pure decision functions, so they are tested against
hand-built signals; the Autoscaler itself is tested against a real
DPIController + InstanceManager with metrics written straight into the
telemetry registry, exactly as the load driver writes them.
"""

import pytest

from repro.autoscale import (
    LOAD_OFFERED_BYTES,
    LOAD_QUEUE_LATENCY,
    QUEUE_LATENCY_BUCKETS,
    Autoscaler,
    HysteresisPolicy,
    IsolationPolicy,
    LoadSignals,
    ThresholdPolicy,
    build_policies,
)
from repro.load.driver import build_load_controller
from repro.load.profiles import CHAIN_FLOOD
from repro.telemetry import TelemetryHub

RATE = 500_000.0  # bytes/second
EPOCH = 0.1
SLO = 0.05


def signals(**overrides):
    base = dict(
        epoch=0,
        now=0.0,
        alive_instances=2,
        utilization=0.5,
        queue_bytes=0.0,
        p99_latency_seconds=0.01,
        slo_seconds=SLO,
        fault_active=False,
    )
    base.update(overrides)
    return LoadSignals(**base)


class TestThresholdPolicy:
    def test_up_on_slo_breach(self):
        decision = ThresholdPolicy().decide(
            signals(p99_latency_seconds=SLO * 2)
        )
        assert decision.action == "up"
        assert "SLO" in decision.reason

    def test_up_on_hot_utilization(self):
        decision = ThresholdPolicy().decide(signals(utilization=0.95))
        assert decision.action == "up"

    def test_down_when_idle(self):
        decision = ThresholdPolicy().decide(
            signals(utilization=0.1, p99_latency_seconds=0.001)
        )
        assert decision.action == "down"

    def test_no_down_below_two_instances(self):
        decision = ThresholdPolicy().decide(
            signals(alive_instances=1, utilization=0.1,
                    p99_latency_seconds=0.001)
        )
        assert decision.action == "hold"

    def test_no_down_with_backlog(self):
        decision = ThresholdPolicy().decide(
            signals(utilization=0.1, p99_latency_seconds=0.001,
                    queue_bytes=5000.0)
        )
        assert decision.action == "hold"

    def test_hold_in_band(self):
        assert ThresholdPolicy().decide(signals()).action == "hold"


class TestHysteresisPolicy:
    def test_up_needs_consecutive_votes(self):
        policy = HysteresisPolicy(up_after=2)
        breach = signals(p99_latency_seconds=SLO * 2)
        assert policy.decide(breach).action == "hold"
        assert policy.decide(breach).action == "up"

    def test_interrupted_streak_resets(self):
        policy = HysteresisPolicy(up_after=2)
        breach = signals(p99_latency_seconds=SLO * 2)
        assert policy.decide(breach).action == "hold"
        assert policy.decide(signals()).action == "hold"
        assert policy.decide(breach).action == "hold"  # streak restarted

    def test_cooldown_after_action(self):
        policy = HysteresisPolicy(up_after=1, cooldown_epochs=3)
        breach = signals(p99_latency_seconds=SLO * 2)
        assert policy.decide(breach).action == "up"
        for _ in range(3):
            decision = policy.decide(breach)
            assert decision.action == "hold"
            assert decision.reason == "cooldown"
        assert policy.decide(breach).action == "up"

    def test_fault_window_freezes_everything(self):
        policy = HysteresisPolicy(up_after=1, fault_hold_epochs=2)
        breach = signals(p99_latency_seconds=SLO * 2, fault_active=True)
        decision = policy.decide(breach)
        assert decision.action == "hold"
        assert "fault" in decision.reason
        # The freeze outlasts the fault by fault_hold_epochs ticks.
        calm_breach = signals(p99_latency_seconds=SLO * 2)
        assert policy.decide(calm_breach).action == "hold"
        assert policy.decide(calm_breach).action == "hold"
        assert policy.decide(calm_breach).action == "up"

    def test_down_debounced_longer_than_up(self):
        policy = HysteresisPolicy(up_after=1, down_after=3)
        idle = signals(utilization=0.1, p99_latency_seconds=0.001)
        assert policy.decide(idle).action == "hold"
        assert policy.decide(idle).action == "hold"
        assert policy.decide(idle).action == "down"


class TestIsolationPolicy:
    def test_isolates_dominant_flow(self):
        decision = IsolationPolicy(heavy_share_threshold=0.3).decide(
            signals(heavy_flow=17, heavy_share=0.6, heavy_chain=CHAIN_FLOOD)
        )
        assert decision.action == "isolate"
        assert decision.flow_key == 17
        assert decision.chain_id == CHAIN_FLOOD

    def test_holds_below_threshold(self):
        decision = IsolationPolicy(heavy_share_threshold=0.5).decide(
            signals(heavy_flow=17, heavy_share=0.2)
        )
        assert decision.action == "hold"

    def test_holds_without_heavy_flow(self):
        assert IsolationPolicy().decide(signals()).action == "hold"


class TestBuildPolicies:
    def test_known_stacks(self):
        assert [p.name for p in build_policies("threshold")] == ["threshold"]
        assert [p.name for p in build_policies("hysteresis")] == ["hysteresis"]
        assert [p.name for p in build_policies("isolation")] == [
            "isolation",
            "hysteresis",
        ]

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown policy"):
            build_policies("nope")


def build_system(*, instances=1, policies=None, **kwargs):
    hub = TelemetryHub(tracing=False)
    controller = build_load_controller(telemetry=hub)
    for index in range(instances):
        controller.instances.provision(f"dpi-{index + 1}", kernel="flat")
    autoscaler = Autoscaler(
        controller,
        rate_bytes_per_second=RATE,
        epoch_seconds=EPOCH,
        slo_seconds=SLO,
        policies=policies if policies is not None else [ThresholdPolicy()],
        **kwargs,
    )
    return controller, autoscaler


def feed_load(registry, name, offered_bytes, latency):
    registry.counter(LOAD_OFFERED_BYTES, instance=name).inc(offered_bytes)
    histogram = registry.histogram(
        LOAD_QUEUE_LATENCY, buckets=QUEUE_LATENCY_BUCKETS, instance=name
    )
    for _ in range(10):
        histogram.observe(latency)


class TestAutoscaler:
    def test_scales_up_on_breach(self):
        controller, autoscaler = build_system(max_instances=3)
        feed_load(controller.telemetry.registry, "dpi-1", 10_000, SLO * 3)
        events = autoscaler.tick(epoch=0)
        assert [event.action for event in events] == ["up"]
        assert events[0].instance in controller.instances
        assert controller.instances[events[0].instance].alive

    def test_respects_max_instances(self):
        controller, autoscaler = build_system(max_instances=2)
        for epoch in range(4):
            feed_load(
                controller.telemetry.registry, "dpi-1", 10_000, SLO * 3
            )
            autoscaler.tick(epoch=epoch)
        assert len(autoscaler.shared_alive()) == 2

    def test_scales_down_and_drops_metrics(self):
        controller, autoscaler = build_system(max_instances=3)
        registry = controller.telemetry.registry
        feed_load(registry, "dpi-1", 10_000, SLO * 3)
        up_events = autoscaler.tick(epoch=0)
        added = up_events[0].instance
        feed_load(registry, added, 100, 0.0001)
        events = autoscaler.tick(epoch=1)
        assert [event.action for event in events] == ["down"]
        assert events[0].instance == added
        assert added not in controller.instances
        # decommission() drops every metric labeled with the instance.
        assert registry.get(LOAD_OFFERED_BYTES, instance=added) is None

    def test_never_decommissions_below_min(self):
        controller, autoscaler = build_system(instances=2, min_instances=2)
        registry = controller.telemetry.registry
        feed_load(registry, "dpi-1", 100, 0.0001)
        events = autoscaler.tick(epoch=0)
        assert events == []
        assert len(autoscaler.shared_alive()) == 2

    def test_heals_crashed_instance(self):
        controller, autoscaler = build_system()
        controller.instances["dpi-1"].crash()
        events = autoscaler.tick(epoch=0)
        assert [event.action for event in events] == ["heal"]
        assert len(autoscaler.shared_alive()) == 1

    def test_isolation_pins_heavy_flow_once(self):
        controller, autoscaler = build_system(
            policies=[IsolationPolicy(heavy_share_threshold=0.3)]
        )
        events = autoscaler.tick(
            epoch=0, heavy_flow=42, heavy_share=0.7, heavy_chain=CHAIN_FLOOD
        )
        assert [event.action for event in events] == ["isolate"]
        name = events[0].instance
        assert controller.instances.is_dedicated(name)
        assert autoscaler.pins[42] == name
        assert name not in autoscaler.shared_alive()
        # A second identical tick must not provision another instance.
        again = autoscaler.tick(
            epoch=1, heavy_flow=42, heavy_share=0.7, heavy_chain=CHAIN_FLOOD
        )
        assert again == []

    def test_windowed_p99_resets_between_ticks(self):
        controller, autoscaler = build_system()
        registry = controller.telemetry.registry
        feed_load(registry, "dpi-1", 1000, SLO * 4)
        first = autoscaler.observe(epoch=0)
        assert first.p99_latency_seconds > SLO
        # No new observations: the *windowed* p99 collapses to zero even
        # though the cumulative histogram still holds the old spike.
        second = autoscaler.observe(epoch=1)
        assert second.p99_latency_seconds == 0.0

    def test_fault_signal_from_registry(self):
        controller, autoscaler = build_system()
        controller.telemetry.record_fault(
            "instance_crash", "dpi-1", phase="inject"
        )
        observed = autoscaler.observe(epoch=0)
        assert observed.fault_active
        assert not autoscaler.observe(epoch=1).fault_active

    def test_actions_counted_in_registry(self):
        controller, autoscaler = build_system(max_instances=3)
        feed_load(controller.telemetry.registry, "dpi-1", 10_000, SLO * 3)
        autoscaler.tick(epoch=0)
        registry = controller.telemetry.registry
        assert registry.value("autoscale_actions_total", action="up") == 1
        assert registry.value("autoscale_instances") == 2

    def test_rejects_bad_bounds(self):
        controller, _ = build_system()
        with pytest.raises(ValueError, match="min_instances"):
            Autoscaler(
                controller,
                rate_bytes_per_second=RATE,
                epoch_seconds=EPOCH,
                slo_seconds=SLO,
                min_instances=0,
            )
        with pytest.raises(ValueError, match="max_instances"):
            Autoscaler(
                controller,
                rate_bytes_per_second=RATE,
                epoch_seconds=EPOCH,
                slo_seconds=SLO,
                min_instances=3,
                max_instances=2,
            )
