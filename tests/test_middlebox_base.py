"""Unit tests for the middlebox rule engine and the chain adapter."""

import pytest

from repro.core.reports import MatchReport
from repro.middleboxes.base import (
    Action,
    DPIServiceMiddlebox,
    MiddleboxChainFunction,
    Rule,
    RuleEngine,
)
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.nsh import build_result_packet
from repro.net.packet import make_tcp_packet


def make_packet(payload=b"data"):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1234,
        80,
        payload=payload,
    )


class TestRuleEngine:
    def test_single_condition_rule(self):
        engine = RuleEngine([Rule(1, (5,))])
        hits = engine.evaluate([(5, 10)])
        assert [h.rule_id for h in hits] == [1]
        assert hits[0].positions == (10,)

    def test_multi_condition_rule_requires_all(self):
        engine = RuleEngine([Rule(1, (5, 6))])
        assert engine.evaluate([(5, 10)]) == []
        hits = engine.evaluate([(5, 10), (6, 20)])
        assert len(hits) == 1
        assert set(hits[0].positions) == {10, 20}

    def test_rule_without_conditions_rejected(self):
        with pytest.raises(ValueError):
            Rule(1, ())

    def test_duplicate_rule_id_rejected(self):
        engine = RuleEngine([Rule(1, (5,))])
        with pytest.raises(ValueError):
            engine.add_rule(Rule(1, (6,)))

    def test_remove_rule(self):
        engine = RuleEngine([Rule(1, (5,))])
        engine.remove_rule(1)
        assert engine.evaluate([(5, 10)]) == []
        with pytest.raises(KeyError):
            engine.remove_rule(1)

    def test_hits_sorted_by_severity(self):
        engine = RuleEngine(
            [
                Rule(1, (5,), action=Action.ALERT),
                Rule(2, (5,), action=Action.DROP),
            ]
        )
        hits = engine.evaluate([(5, 10)])
        assert [h.rule_id for h in hits] == [2, 1]

    def test_verdict_severity(self):
        engine = RuleEngine(
            [
                Rule(1, (5,), action=Action.ALERT),
                Rule(2, (6,), action=Action.DROP),
            ]
        )
        assert engine.verdict(engine.evaluate([(5, 1)])) is Action.ALERT
        assert engine.verdict(engine.evaluate([(6, 1)])) is Action.DROP
        assert engine.verdict([]) is Action.FORWARD

    def test_rules_for_pattern(self):
        engine = RuleEngine([Rule(1, (5, 6)), Rule(2, (6,))])
        assert engine.rules_for_pattern(6) == {1, 2}
        assert engine.rules_for_pattern(9) == set()


class TestDPIServiceMiddlebox:
    def test_registration_messages(self):
        middlebox = DPIServiceMiddlebox(middlebox_id=7, name="custom")
        middlebox.add_literal_rule(0, b"sig-data")
        registration = middlebox.registration_message()
        assert registration.middlebox_id == 7
        assert registration.name == "custom"
        patterns = middlebox.patterns_message()
        assert [p.data for p in patterns.patterns] == [b"sig-data"]

    def test_consume_report_counts(self):
        middlebox = DPIServiceMiddlebox(middlebox_id=7)
        middlebox.add_literal_rule(0, b"evil")
        report = MatchReport.from_matches({7: [(0, 4)]})
        verdict = middlebox.consume_report(make_packet(), report)
        assert verdict is Action.ALERT
        assert middlebox.stats.rules_fired == 1
        assert middlebox.stats.reports_consumed == 1

    def test_report_for_other_middlebox_ignored(self):
        middlebox = DPIServiceMiddlebox(middlebox_id=7)
        middlebox.add_literal_rule(0, b"evil")
        report = MatchReport.from_matches({8: [(0, 4)]})
        assert middlebox.consume_report(make_packet(), report) is Action.FORWARD


class TestChainFunction:
    def _middlebox(self, action=Action.ALERT):
        middlebox = DPIServiceMiddlebox(middlebox_id=7)
        middlebox.add_literal_rule(0, b"evil", action=action)
        return middlebox

    def test_unmarked_packet_processed_immediately(self):
        function = MiddleboxChainFunction(self._middlebox())
        packet = make_packet()
        assert function.process(packet) == [packet]
        assert function.middlebox.stats.packets_processed == 1

    def test_marked_packet_buffered_until_result(self):
        function = MiddleboxChainFunction(self._middlebox())
        packet = make_packet(b"evil here")
        packet.mark_matched()
        assert function.process(packet) == []
        report = MatchReport.from_matches({7: [(0, 4)]})
        result = build_result_packet(packet, report)
        out = function.process(result)
        assert out == [packet, result]
        assert function.middlebox.stats.alerts == 1

    def test_result_before_data(self):
        function = MiddleboxChainFunction(self._middlebox())
        packet = make_packet(b"evil here")
        packet.mark_matched()
        report = MatchReport.from_matches({7: [(0, 4)]})
        result = build_result_packet(packet, report)
        assert function.process(result) == []
        out = function.process(packet)
        assert out == [packet, result]

    def test_drop_consumes_both_packets(self):
        function = MiddleboxChainFunction(self._middlebox(action=Action.DROP))
        packet = make_packet(b"evil")
        packet.mark_matched()
        function.process(packet)
        report = MatchReport.from_matches({7: [(0, 4)]})
        result = build_result_packet(packet, report)
        assert function.process(result) == []

    def test_max_buffered_tracked(self):
        function = MiddleboxChainFunction(self._middlebox())
        for _ in range(3):
            packet = make_packet(b"evil")
            packet.mark_matched()
            function.process(packet)
        assert function.max_buffered == 3
