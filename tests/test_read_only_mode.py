"""Integration tests for the read-only optimization (Section 4.2, option 3).

Read-only middleboxes (IDS-like monitors) come off the data path entirely:
the DPI service sends match results straight to their hosts, and matchless
packets generate no monitoring traffic at all — the Big Tap-style setup the
paper describes.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.core.reports import MatchReport
from repro.middleboxes.base import MonitoringFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.middleboxes.ips import IntrusionPreventionSystem
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import build_paper_topology

SIGNATURE = b"GET /cgi-bin/exploit"


@pytest.fixture
def monitoring_system():
    topo = build_paper_topology()
    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    ids = IntrusionDetectionSystem(middlebox_id=1)
    ids.add_signature(0, SIGNATURE, severity="high")

    dpi_controller = DPIController()
    ids.register_with(dpi_controller)
    tsa.register_middlebox_instance("ids", "mb1")
    tsa.register_middlebox_instance("dpi", "dpi1")
    tsa.add_policy_chain(PolicyChain("monitor", ("ids",)))
    dpi_controller.attach_tsa(tsa)
    assert tsa.chains["monitor"].middlebox_types == ("dpi", "ids")

    optimized = dpi_controller.optimize_read_only_chains()
    assert optimized == ["monitor"]
    # Routing chain holds only the DPI service now.
    assert tsa.chains["monitor"].middlebox_types == ("dpi",)
    chain_id = tsa.chains["monitor"].chain_id
    # The scanning configuration still includes the IDS.
    assert dpi_controller.chain_middlebox_ids(chain_id) == (1,)

    tsa.assign_traffic(TrafficAssignment("user1", "user2", "monitor"))
    tsa.realize()

    instance = dpi_controller.instances.provision("dpi1")
    mb1 = topo.hosts["mb1"]
    topo.hosts["dpi1"].set_function(
        DPIServiceFunction(
            instance,
            direct_chains=dpi_controller.read_only_chain_ids(),
            middlebox_addresses={1: (mb1.mac, mb1.ip)},
        )
    )
    monitoring = MonitoringFunction(ids)
    mb1.set_function(monitoring)
    return {
        "topo": topo,
        "ids": ids,
        "instance": instance,
        "monitoring": monitoring,
        "chain_id": chain_id,
    }


def send(topo, payload, src_port=40000):
    user1, user2 = topo.hosts["user1"], topo.hosts["user2"]
    packet = make_tcp_packet(
        user1.mac, user2.mac, user1.ip, user2.ip, src_port, 80, payload=payload
    )
    user1.send(packet)
    topo.run()
    return packet


class TestReadOnlyDataPath:
    def test_matchless_packet_generates_no_monitor_traffic(self, monitoring_system):
        send(monitoring_system["topo"], b"perfectly clean payload")
        assert monitoring_system["monitoring"].results_consumed == 0
        user2 = monitoring_system["topo"].hosts["user2"]
        assert len(user2.received_packets) == 1

    def test_matched_packet_sends_result_to_monitor_only(self, monitoring_system):
        packet = send(monitoring_system["topo"], SIGNATURE + b" HTTP/1.1")
        # The IDS consumed a result packet and alerted on the data packet id.
        ids = monitoring_system["ids"]
        assert monitoring_system["monitoring"].results_consumed == 1
        assert len(ids.alerts) == 1
        assert ids.alerts[0].packet_id == packet.packet_id
        # The destination got the data packet but no result packet.
        user2 = monitoring_system["topo"].hosts["user2"]
        assert len(user2.received_packets) == 1
        assert not user2.received_packets[0].is_result_packet
        assert user2.received_packets[0].payload == packet.payload

    def test_data_packet_never_visits_monitor(self, monitoring_system):
        send(monitoring_system["topo"], SIGNATURE)
        mb1 = monitoring_system["topo"].hosts["mb1"]
        # Only the result packet reached mb1; no data packets.
        assert mb1.stats.packets_received == 1
        assert monitoring_system["monitoring"].results_consumed == 1

    def test_direct_result_counter(self, monitoring_system):
        send(monitoring_system["topo"], SIGNATURE, src_port=41000)
        send(monitoring_system["topo"], b"clean", src_port=41001)
        send(monitoring_system["topo"], SIGNATURE, src_port=41002)
        function = monitoring_system["topo"].hosts["dpi1"].function
        assert function.direct_results_sent == 2


class TestGuards:
    def test_monitoring_function_rejects_inline_middlebox(self):
        ips = IntrusionPreventionSystem(middlebox_id=9)
        with pytest.raises(TypeError):
            MonitoringFunction(ips)

    def test_consume_results_only_rejects_inline_middlebox(self):
        ips = IntrusionPreventionSystem(middlebox_id=9)
        ips.add_block_signature(0, b"evil-sig")
        fake_result = make_tcp_packet(
            __import__("repro.net.addresses", fromlist=["MACAddress"]).MACAddress.from_index(0),
            __import__("repro.net.addresses", fromlist=["MACAddress"]).MACAddress.from_index(1),
            __import__("repro.net.addresses", fromlist=["IPv4Address"]).IPv4Address("10.0.0.1"),
            __import__("repro.net.addresses", fromlist=["IPv4Address"]).IPv4Address("10.0.0.2"),
            1, 2,
            payload=MatchReport.from_matches({9: [(0, 8)]}).encode(),
        )
        fake_result.describes_packet_id = 77
        with pytest.raises(TypeError):
            ips.consume_results_only(fake_result)

    def test_mixed_chain_not_optimized(self):
        """A chain with an inline middlebox keeps its routing."""
        topo = build_paper_topology()
        sdn = SDNController(topo, learning=False)
        tsa = TrafficSteeringApplication(sdn, topo)
        ids = IntrusionDetectionSystem(middlebox_id=1)
        ids.add_signature(0, SIGNATURE)
        ips = IntrusionPreventionSystem(middlebox_id=2)
        ips.add_block_signature(0, b"blocked-sig")
        dpi_controller = DPIController()
        ids.register_with(dpi_controller)
        ips.register_with(dpi_controller)
        tsa.register_middlebox_instance("ids", "mb1")
        tsa.register_middlebox_instance("ips", "mb2")
        tsa.register_middlebox_instance("dpi", "dpi1")
        tsa.add_policy_chain(PolicyChain("mixed", ("ids", "ips")))
        dpi_controller.attach_tsa(tsa)
        assert dpi_controller.optimize_read_only_chains() == []
        assert tsa.chains["mixed"].middlebox_types == ("dpi", "ids", "ips")

    def test_direct_chain_requires_addresses(self):
        from repro.core.instance import DPIServiceInstance, InstanceConfig
        from repro.core.patterns import Pattern
        from repro.core.scanner import MiddleboxProfile

        instance = DPIServiceInstance(
            InstanceConfig(
                pattern_sets={1: [Pattern(0, b"sig-data")]},
                profiles={1: MiddleboxProfile(1, read_only=True)},
                chain_map={100: (1,)},
            )
        )
        with pytest.raises(KeyError):
            DPIServiceFunction(instance, direct_chains={100})
