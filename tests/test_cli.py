"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, read_pattern_file, write_pattern_file
from repro.core.patterns import PatternKind
from repro.workloads.traces import load_trace


class TestPatternFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "p.txt"
        count = write_pattern_file(
            path, [b"literal-one", b"\x00binary\xff"], regexes=[rb"reg\d+ex"]
        )
        assert count == 3
        patterns = read_pattern_file(path)
        assert [p.data for p in patterns] == [
            b"literal-one",
            b"\x00binary\xff",
            rb"reg\d+ex",
        ]
        assert patterns[2].kind is PatternKind.REGEX
        assert [p.pattern_id for p in patterns] == [0, 1, 2]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("# comment\n\naGVsbG8=\n")
        patterns = read_pattern_file(path)
        assert [p.data for p in patterns] == [b"hello"]

    def test_bad_base64_reported_with_line(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("!!!notbase64!!!\n")
        with pytest.raises(ValueError, match=":1:"):
            read_pattern_file(path)


class TestCommands:
    def test_generate_patterns(self, tmp_path, capsys):
        out = tmp_path / "pats.txt"
        code = main(
            [
                "generate-patterns",
                "--style", "snort",
                "--count", "50",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert len(read_pattern_file(out)) == 50
        assert "50 snort-like patterns" in capsys.readouterr().out

    def test_generate_trace_with_injection(self, tmp_path, capsys):
        pats = tmp_path / "pats.txt"
        main(["generate-patterns", "--count", "30", "--out", str(pats)])
        trace_path = tmp_path / "t.rtrc"
        code = main(
            [
                "generate-trace",
                "--packets", "40",
                "--patterns", str(pats),
                "--match-rate", "0.5",
                "--flows", "4",
                "--out", str(trace_path),
            ]
        )
        assert code == 0
        trace = load_trace(trace_path)
        assert len(trace) == 40
        assert trace.flow_ids is not None

    @pytest.mark.parametrize("engine_args", [["--engine", "ac"],
                                             ["--engine", "ac", "--layout", "full"],
                                             ["--engine", "wm"]])
    def test_scan_pipeline(self, tmp_path, capsys, engine_args):
        pats = tmp_path / "pats.txt"
        trace_path = tmp_path / "t.rtrc"
        main(["generate-patterns", "--count", "30", "--out", str(pats)])
        main(
            [
                "generate-trace", "--packets", "30",
                "--patterns", str(pats), "--match-rate", "0.9",
                "--out", str(trace_path),
            ]
        )
        code = main(
            ["scan", "--patterns", str(pats), "--trace", str(trace_path)]
            + engine_args
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "matched packets:" in out

    def test_scan_rejects_regex_only_file(self, tmp_path, capsys):
        pats = tmp_path / "p.txt"
        write_pattern_file(pats, [], regexes=[rb"\d+"])
        trace_path = tmp_path / "t.rtrc"
        main(["generate-trace", "--packets", "5", "--out", str(trace_path)])
        code = main(
            ["scan", "--patterns", str(pats), "--trace", str(trace_path)]
        )
        assert code == 2

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "MATCHES" in out
        assert "clean" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestKernelCommands:
    def _corpus(self, tmp_path):
        pats = tmp_path / "pats.txt"
        trace_path = tmp_path / "t.rtrc"
        main(["generate-patterns", "--count", "30", "--out", str(pats)])
        main(
            [
                "generate-trace", "--packets", "30",
                "--patterns", str(pats), "--match-rate", "0.9",
                "--out", str(trace_path),
            ]
        )
        return pats, trace_path

    @pytest.mark.parametrize("kernel", ["reference", "flat", "regex"])
    def test_scan_combined_engine_kernels(self, tmp_path, capsys, kernel):
        pats, trace_path = self._corpus(tmp_path)
        code = main(
            [
                "scan", "--patterns", str(pats), "--trace", str(trace_path),
                "--engine", "combined", "--kernel", kernel,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"kernel={kernel}" in out
        assert "throughput:" in out

    def test_scan_combined_kernels_agree_on_match_counts(
        self, tmp_path, capsys
    ):
        pats, trace_path = self._corpus(tmp_path)
        counts = {}
        for kernel in ("reference", "flat", "regex"):
            main(
                [
                    "scan", "--patterns", str(pats), "--trace",
                    str(trace_path), "--engine", "combined",
                    "--kernel", kernel,
                ]
            )
            out = capsys.readouterr().out
            counts[kernel] = [
                line for line in out.splitlines() if "total matches" in line
            ]
        assert counts["flat"] == counts["reference"]
        assert counts["regex"] == counts["reference"]

    def test_scan_combined_with_cache(self, tmp_path, capsys):
        pats, trace_path = self._corpus(tmp_path)
        code = main(
            [
                "scan", "--patterns", str(pats), "--trace", str(trace_path),
                "--engine", "combined", "--cache-size", "64",
            ]
        )
        assert code == 0
        assert "matched packets:" in capsys.readouterr().out

    def test_bench_kernels_writes_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_kernels.json"
        code = main(
            [
                "bench-kernels", "--pattern-count", "40", "--packets", "6",
                "--rounds", "1", "--out", str(out_path),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "scan kernels" in stdout
        results = json.loads(out_path.read_text())
        assert results["benchmark"] == "scan-kernels"
        for corpus in ("snort-like", "clamav-like"):
            kernels = results["corpora"][corpus]["kernels"]
            assert set(kernels) == {"reference", "flat", "regex"}
            for numbers in kernels.values():
                assert numbers["mbps"] > 0


class TestLoadCommand:
    def test_load_text_run_prints_table_and_digest(self, capsys):
        code = main(
            [
                "load", "service",
                "--profile", "mixed",
                "--flows", "300",
                "--epochs", "4",
                "--seed", "9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch" in out and "p99 ms" in out
        assert "digest:" in out

    def test_load_json_digest_is_reproducible(self, tmp_path, capsys):
        import json

        digests = []
        for _ in range(2):
            out_path = tmp_path / "run.json"
            code = main(
                [
                    "load", "service",
                    "--flows", "300",
                    "--epochs", "4",
                    "--autoscale",
                    "--format", "json",
                    "--out", str(out_path),
                ]
            )
            assert code == 0
            capsys.readouterr()
            digests.append(json.loads(out_path.read_text())["digest"])
        assert digests[0] == digests[1]

    def test_load_invalid_spec_exits_2_with_code(self, capsys):
        code = main(["load", "service", "--flows", "0", "--epochs", "4"])
        assert code == 2
        assert "LOAD002" in capsys.readouterr().err

    def test_load_spec_file_round_trip(self, tmp_path, capsys):
        from repro.load.profiles import LoadSpec

        spec_path = tmp_path / "spec.json"
        LoadSpec(flows=200, epochs=3).save(str(spec_path))
        code = main(["load", "service", "--spec", str(spec_path)])
        assert code == 0
        assert "digest:" in capsys.readouterr().out

    def test_check_load_spec_flag(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"profile_mix": "nope", "flows": -1}))
        code = main(["check", "figure5", "--load-spec", str(bad)])
        assert code == 1
        err_or_out = capsys.readouterr()
        combined = err_or_out.out + err_or_out.err
        assert "LOAD001" in combined
        assert "LOAD002" in combined

    def test_bench_e2e_writes_capacity_curve(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_e2e.json"
        code = main(
            [
                "bench-e2e",
                "--flow-steps", "100,300",
                "--epochs", "6",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["benchmark"] == "e2e"
        for mode in ("static", "autoscaled"):
            assert [
                point["flows"] for point in document["curves"][mode]
            ] == [100, 300]
        headline = document["headline"]
        assert "autoscaled_sustains_more" in headline
        assert "capacity curves" in capsys.readouterr().out
