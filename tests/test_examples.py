"""Every example script must run to completion (they carry assertions of
their own, so exit code 0 means the demonstrated behaviour held)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
