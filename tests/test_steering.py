"""Unit tests for the traffic steering application (policy chains)."""

import pytest

from repro.net.controller import SDNController
from repro.net.host import NetworkFunction
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology, build_paper_topology


class TagRecorder(NetworkFunction):
    """A middlebox stub that records the tags it sees and forwards."""

    def __init__(self):
        self.seen_vids = []

    def process(self, packet):
        outer = packet.outer_vlan
        self.seen_vids.append(outer.vid if outer else None)
        return [packet]


def build_steered_topology(chain_types=("mb_a", "mb_b")):
    topo = build_paper_topology()
    recorder1, recorder2 = TagRecorder(), TagRecorder()
    topo.hosts["mb1"].set_function(recorder1)
    topo.hosts["mb2"].set_function(recorder2)
    controller = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(controller, topo)
    tsa.register_middlebox_instance("mb_a", "mb1")
    tsa.register_middlebox_instance("mb_b", "mb2")
    chain = tsa.add_policy_chain(PolicyChain("c1", tuple(chain_types)))
    tsa.assign_traffic(
        TrafficAssignment(src_host="user1", dst_host="user2", chain_name="c1")
    )
    tsa.realize()
    return topo, tsa, chain, (recorder1, recorder2)


def send(topo, src="user1", dst="user2", payload=b"data"):
    src_host, dst_host = topo.hosts[src], topo.hosts[dst]
    packet = make_tcp_packet(
        src_host.mac, dst_host.mac, src_host.ip, dst_host.ip, 1111, 80,
        payload=payload,
    )
    src_host.send(packet)
    topo.run()
    return packet


class TestPolicyChain:
    def test_with_service_before(self):
        chain = PolicyChain("c", ("fw", "ids", "av"))
        updated = chain.with_service_before("dpi", "ids")
        assert updated.middlebox_types == ("fw", "dpi", "ids", "av")

    def test_with_service_idempotent(self):
        chain = PolicyChain("c", ("dpi", "ids"))
        assert chain.with_service_before("dpi", "ids") is chain

    def test_with_service_unknown_type(self):
        chain = PolicyChain("c", ("ids",))
        with pytest.raises(KeyError):
            chain.with_service_before("dpi", "av")

    def test_without_types(self):
        chain = PolicyChain("c", ("fw", "ids", "av"))
        assert chain.without_types({"ids"}).middlebox_types == ("fw", "av")


class TestSteering:
    def test_packet_traverses_chain_in_order(self):
        topo, tsa, chain, (r1, r2) = build_steered_topology()
        send(topo)
        # Both middleboxes saw the packet; per-segment tagging means hop k
        # observes tag chain_id + k.
        assert r1.seen_vids == [chain.chain_id]
        assert r2.seen_vids == [chain.chain_id + 1]
        # Destination got it untagged.
        received = topo.hosts["user2"].received_packets
        assert len(received) == 1
        assert received[0].outer_vlan is None

    def test_payload_unchanged_through_chain(self):
        topo, _, _, _ = build_steered_topology()
        packet = send(topo, payload=b"precious-payload")
        received = topo.hosts["user2"].received_packets[0]
        assert received.payload == packet.payload

    def test_single_middlebox_chain(self):
        topo, tsa, chain, (r1, r2) = build_steered_topology(chain_types=("mb_a",))
        send(topo)
        assert len(r1.seen_vids) == 1
        assert r2.seen_vids == []

    def test_unassigned_traffic_uses_host_routes(self):
        topo, tsa, _, (r1, r2) = build_steered_topology()
        send(topo, src="user2", dst="user1")  # no chain assigned this way
        assert topo.hosts["user1"].received_packets
        assert r1.seen_vids == []

    def test_chain_ids_allocated_sequentially(self):
        topo = build_paper_topology()
        controller = SDNController(topo, learning=False)
        tsa = TrafficSteeringApplication(controller, topo)
        first = tsa.add_policy_chain(PolicyChain("a", ("x",)))
        second = tsa.add_policy_chain(PolicyChain("b", ("y",)))
        # Each chain owns a tag block of CHAIN_ID_STRIDE contiguous tags.
        assert (
            second.chain_id
            == first.chain_id + TrafficSteeringApplication.CHAIN_ID_STRIDE
        )

    def test_duplicate_chain_name_rejected(self):
        topo = build_paper_topology()
        tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)
        tsa.add_policy_chain(PolicyChain("a", ("x",)))
        with pytest.raises(ValueError):
            tsa.add_policy_chain(PolicyChain("a", ("y",)))

    def test_assignment_requires_known_chain(self):
        topo = build_paper_topology()
        tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)
        with pytest.raises(KeyError):
            tsa.assign_traffic(
                TrafficAssignment("user1", "user2", "missing-chain")
            )

    def test_unresolvable_chain_raises_at_realize(self):
        topo = build_paper_topology()
        tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)
        tsa.add_policy_chain(PolicyChain("c", ("ghost-type",)))
        tsa.assign_traffic(TrafficAssignment("user1", "user2", "c"))
        with pytest.raises(KeyError):
            tsa.realize()

    def test_register_unknown_host_rejected(self):
        topo = build_paper_topology()
        tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)
        with pytest.raises(KeyError):
            tsa.register_middlebox_instance("ids", "nohost")


class TestChainListeners:
    def test_listener_notified_on_add_and_rewrite(self):
        topo = build_paper_topology()
        tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)

        class Listener:
            def __init__(self):
                self.updates = []

            def policy_chains_changed(self, chains):
                self.updates.append(
                    {name: c.middlebox_types for name, c in chains.items()}
                )

        listener = Listener()
        tsa.add_chain_listener(listener)
        assert listener.updates == [{}]
        tsa.add_policy_chain(PolicyChain("c", ("ids",)))
        assert listener.updates[-1] == {"c": ("ids",)}
        tsa.rewrite_chain("c", ("dpi", "ids"))
        assert listener.updates[-1] == {"c": ("dpi", "ids")}

    def test_rewrite_keeps_chain_id(self):
        topo = build_paper_topology()
        tsa = TrafficSteeringApplication(SDNController(topo, learning=False), topo)
        chain = tsa.add_policy_chain(PolicyChain("c", ("ids",)))
        updated = tsa.rewrite_chain("c", ("dpi", "ids"))
        assert updated.chain_id == chain.chain_id


class TestMultiSwitchSteering:
    def test_chain_across_switches(self):
        """Figure 5-style: middleboxes attached to different switches."""
        topo = Topology()
        for name in ("s1", "s2"):
            topo.add_switch(name)
        topo.add_host("user1")
        topo.add_host("user2")
        recorder = TagRecorder()
        topo.add_host("mb1", function=recorder)
        topo.add_link("user1", "s1")
        topo.add_link("s1", "s2")
        topo.add_link("s2", "mb1")
        topo.add_link("s2", "user2")
        controller = SDNController(topo, learning=False)
        tsa = TrafficSteeringApplication(controller, topo)
        tsa.register_middlebox_instance("mb_a", "mb1")
        chain = tsa.add_policy_chain(PolicyChain("c", ("mb_a",)))
        tsa.assign_traffic(TrafficAssignment("user1", "user2", "c"))
        tsa.realize()
        send(topo)
        assert recorder.seen_vids == [chain.chain_id]
        received = topo.hosts["user2"].received_packets
        assert len(received) == 1
        assert received[0].outer_vlan is None
