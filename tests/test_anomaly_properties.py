"""Property-based tests for the flow-feature anomaly layer.

Two invariants the record-then-fold extractor must hold by construction:

* **batch-boundary invariance** — how observations are chunked into
  ``observe`` / ``observe_batch`` calls must not change any feature;
* **permutation stability** — interleaving flows differently (while
  preserving each flow's own packet order, as any single-queue pipeline
  does) must not change features or classifier verdicts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anomaly import (
    AnomalyClassifier,
    FeatureExtractor,
    features_digest,
    verdict_digest,
)

# A synthetic observation stream: a handful of flows, each packet a
# (size, matches, gap) triple.  Gaps are non-negative so per-flow
# timestamps are monotone, as on a real pipeline.
packet = st.tuples(
    st.integers(min_value=1, max_value=2048),   # size
    st.integers(min_value=0, max_value=16),     # matches
    st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=32),
)
flow = st.lists(packet, min_size=1, max_size=12)
stream = st.dictionaries(
    st.integers(min_value=0, max_value=7).map(lambda i: f"flow-{i}"),
    flow,
    min_size=1,
    max_size=6,
)


def rows_of(flows):
    """Flatten a {flow: [(size, matches, gap), ...]} dict into observe rows."""
    rows = []
    for flow_key, packets in sorted(flows.items()):
        now = 0.0
        chain_id = hash(flow_key) % 3 + 1
        for size, matches, gap in packets:
            now += gap
            rows.append((flow_key, chain_id, size, matches, now))
    return rows


def interleave(flows, order_seed):
    """Round-robin flows into one stream, rotating start by order_seed.

    Every flow's internal packet order is preserved; only the global
    interleaving changes — exactly the freedom a multi-queue NIC has.
    """
    queues = [list(packets) for _, packets in sorted(flows.items())]
    keys = [key for key, _ in sorted(flows.items())]
    clocks = {key: 0.0 for key in keys}
    rows = []
    start = order_seed % max(len(queues), 1)
    while any(queues):
        for offset in range(len(queues)):
            index = (start + offset) % len(queues)
            if queues[index]:
                size, matches, gap = queues[index].pop(0)
                key = keys[index]
                clocks[key] += gap
                rows.append(
                    (key, hash(key) % 3 + 1, size, matches, clocks[key])
                )
        start += 1
    return rows


@given(flows=stream, cut=st.integers(min_value=0, max_value=60))
@settings(max_examples=120, deadline=None)
def test_features_invariant_to_batch_boundaries(flows, cut):
    rows = rows_of(flows)
    loop = FeatureExtractor()
    for row in rows:
        flow_key, chain_id, size, matches, now = row
        loop.observe(
            flow_key, chain_id=chain_id, size=size, matches=matches, now=now
        )
    split = min(cut, len(rows))
    batched = FeatureExtractor()
    batched.observe_batch(rows[:split])
    batched.observe_batch(rows[split:])
    assert features_digest(loop.features_map()) == features_digest(
        batched.features_map()
    )
    assert loop.observations == batched.observations


@given(flows=stream, cut=st.integers(min_value=0, max_value=60))
@settings(max_examples=80, deadline=None)
def test_reads_between_batches_do_not_change_features(flows, cut):
    rows = rows_of(flows)
    split = min(cut, len(rows))
    quiet = FeatureExtractor()
    quiet.observe_batch(rows)
    noisy = FeatureExtractor()
    noisy.observe_batch(rows[:split])
    noisy.features_map()  # interleaved read forces a fold mid-stream
    noisy.observe_batch(rows[split:])
    assert features_digest(quiet.features_map()) == features_digest(
        noisy.features_map()
    )


@given(flows=stream, order_seed=st.integers(min_value=0, max_value=11))
@settings(max_examples=120, deadline=None)
def test_verdicts_stable_across_flow_interleavings(flows, order_seed):
    baseline = FeatureExtractor()
    baseline.observe_batch(rows_of(flows))
    shuffled = FeatureExtractor()
    shuffled.observe_batch(interleave(flows, order_seed))

    base_features = baseline.features_map()
    shuffled_features = shuffled.features_map()
    assert features_digest(base_features) == features_digest(
        shuffled_features
    )

    classifier = AnomalyClassifier(threshold=3.0, seed=7)
    base_verdicts = classifier.classify_all(
        base_features, self_calibrate=True
    )
    shuffled_verdicts = classifier.classify_all(
        shuffled_features, self_calibrate=True
    )
    assert verdict_digest(base_verdicts) == verdict_digest(shuffled_verdicts)
