"""Unit and integration tests for MCA^2-style robustness (Section 4.3.1)."""

import pytest

from repro.core.controller import DPIController
from repro.core.mca2 import StressMonitor
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.net.steering import PolicyChain
from repro.workloads.attacks import (
    heavy_payload,
    match_flood_payload,
    near_miss_payload,
)
from repro.workloads.patterns import generate_snort_like
from repro.workloads.traffic import TrafficGenerator

CHAIN = 100


def build_controller(patterns):
    controller = DPIController()
    controller.handle_message(
        RegisterMiddleboxMessage(middlebox_id=1, name="ids", stateful=True)
    )
    controller.handle_message(
        AddPatternsMessage(
            middlebox_id=1,
            patterns=[Pattern(i, p) for i, p in enumerate(patterns)],
        )
    )
    controller.policy_chains_changed(
        {"c": PolicyChain("c", ("ids",), chain_id=CHAIN)}
    )
    return controller


@pytest.fixture(scope="module")
def snort_patterns():
    return generate_snort_like(count=150, seed=3)


class TestAttackWorkloads:
    def test_near_miss_payload_is_deterministic(self, snort_patterns):
        a = near_miss_payload(snort_patterns, 500, seed=1)
        b = near_miss_payload(snort_patterns, 500, seed=1)
        assert a == b
        assert len(a) == 500

    def test_heavy_payload_contains_matches(self, snort_patterns):
        from repro.core.aho_corasick import AhoCorasick

        payload = heavy_payload(snort_patterns, 3000, seed=2)
        ac = AhoCorasick(snort_patterns)
        assert ac.count_matches(payload) > 0

    def test_validation(self, snort_patterns):
        with pytest.raises(ValueError):
            near_miss_payload([], 10)
        with pytest.raises(ValueError):
            near_miss_payload(snort_patterns, 0)

    def test_flood_payload_is_match_dense(self, snort_patterns):
        from repro.core.aho_corasick import AhoCorasick

        flood = match_flood_payload(snort_patterns, 3000)
        ac = AhoCorasick(snort_patterns)
        # At least one match every ~40 bytes on average.
        assert ac.count_matches(flood) > len(flood) / 40

    def test_attack_costs_more_per_byte_than_benign(self, snort_patterns):
        """The premise of MCA^2: heavy traffic inflates the engine's
        per-byte cost (here via the match-handling path)."""
        import time

        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-x")
        benign = TrafficGenerator(seed=1).benign_payload(3000)
        attack = match_flood_payload(snort_patterns, 3000)

        def cost(payload, key):
            # Best of several rounds: robust to scheduler noise under load.
            best = float("inf")
            for round_index in range(5):
                started = time.perf_counter()
                for index in range(10):
                    instance.inspect(
                        payload, chain_id=CHAIN, flow_key=f"{key}-{round_index}-{index}"
                    )
                best = min(
                    best, (time.perf_counter() - started) / (10 * len(payload))
                )
            return best

        cost(benign, "warmup")
        # Typical ratio is ~2x; 1.2 leaves headroom for noisy machines.
        assert cost(attack, "attack") > cost(benign, "benign") * 1.2


class TestStressMonitor:
    def _warm(self, controller, instance, patterns, packets=30):
        generator = TrafficGenerator(seed=9)
        for index in range(packets):
            instance.inspect(
                generator.benign_payload(800), chain_id=CHAIN, flow_key=f"benign-{index}"
            )

    def test_calibration_records_baseline(self, snort_patterns):
        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller)
        self._warm(controller, instance, snort_patterns)
        baselines = monitor.calibrate()
        assert "dpi-1" in baselines
        assert baselines["dpi-1"] > 0

    def test_no_stress_under_benign_traffic(self, snort_patterns):
        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=3.0)
        self._warm(controller, instance, snort_patterns)
        monitor.calibrate()
        self._warm(controller, instance, snort_patterns)
        assert monitor.observe() == []

    def test_attack_detected_and_mitigated(self, snort_patterns):
        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=1.5)
        self._warm(controller, instance, snort_patterns, packets=40)
        monitor.calibrate()
        # Attack: a few flows sending complexity-attack payloads.
        attack = match_flood_payload(snort_patterns, 3000)
        for index in range(15):
            instance.inspect(attack, chain_id=CHAIN, flow_key=f"attacker-{index % 3}")
        events = monitor.observe()
        assert events, "stress not detected"
        assert events[0].stress_factor > 1.5
        action = monitor.mitigate(events[0])
        assert action.dedicated_created
        assert action.migrated_flows
        # Migrated flows now live on the dedicated instance.
        dedicated = controller.instances[action.dedicated_instance]
        for flow_key in action.migrated_flows:
            assert dedicated.export_flow(flow_key) is not None
        assert dedicated.config.layout == "full"

    def test_migration_callback_invoked(self, snort_patterns):
        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=1.2)
        self._warm(controller, instance, snort_patterns, packets=40)
        monitor.calibrate()
        attack = match_flood_payload(snort_patterns, 3000)
        for _ in range(15):
            instance.inspect(attack, chain_id=CHAIN, flow_key="attacker")
        steering_calls = []
        monitor.on_flow_migrated = lambda flow, target: steering_calls.append(
            (flow, target)
        )
        actions = monitor.observe_and_mitigate()
        if actions and actions[0].migrated_flows:
            assert steering_calls

    def test_dedicated_instance_reused(self, snort_patterns):
        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=1.2)
        self._warm(controller, instance, snort_patterns, packets=40)
        monitor.calibrate()
        attack = match_flood_payload(snort_patterns, 3000)
        for _ in range(15):
            instance.inspect(attack, chain_id=CHAIN, flow_key="attacker")
        events = monitor.observe()
        assert events
        first = monitor.mitigate(events[0])
        second = monitor.mitigate(events[0])
        assert first.dedicated_instance == second.dedicated_instance
        assert not second.dedicated_created

    def test_deallocate_dedicated(self, snort_patterns):
        controller = build_controller(snort_patterns)
        instance = controller.instances.provision("dpi-1")
        monitor = StressMonitor(controller, threshold_factor=1.2)
        self._warm(controller, instance, snort_patterns, packets=40)
        monitor.calibrate()
        attack = match_flood_payload(snort_patterns, 3000)
        for _ in range(15):
            instance.inspect(attack, chain_id=CHAIN, flow_key="attacker")
        for event in monitor.observe():
            monitor.mitigate(event)
        released = monitor.deallocate_dedicated()
        for name in released:
            assert name not in controller.instances

    def test_threshold_validation(self, snort_patterns):
        controller = build_controller(snort_patterns)
        with pytest.raises(ValueError):
            StressMonitor(controller, threshold_factor=1.0)
