"""Property-based tests: the AC matcher against a brute-force oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aho_corasick import AhoCorasick
from tests.conftest import naive_find_all

# Small alphabet makes collisions (shared prefixes, suffix patterns) likely.
alphabet = st.sampled_from([0x41, 0x42, 0x43])
pattern = st.binary(min_size=1, max_size=6).map(
    lambda raw: bytes(b % 3 + 0x41 for b in raw)
)
patterns_strategy = st.lists(pattern, min_size=1, max_size=8, unique=True)
text_strategy = st.binary(min_size=0, max_size=60).map(
    lambda raw: bytes(b % 3 + 0x41 for b in raw)
)


@given(patterns=patterns_strategy, text=text_strategy)
@settings(max_examples=150, deadline=None)
def test_sparse_matches_oracle(patterns, text):
    ac = AhoCorasick(patterns, layout="sparse")
    matches, _ = ac.scan(text)
    assert sorted(matches) == naive_find_all(patterns, text)


@given(patterns=patterns_strategy, text=text_strategy)
@settings(max_examples=150, deadline=None)
def test_full_matches_oracle(patterns, text):
    ac = AhoCorasick(patterns, layout="full")
    matches, _ = ac.scan(text)
    assert sorted(matches) == naive_find_all(patterns, text)


@given(
    patterns=patterns_strategy,
    text=text_strategy,
    cut=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=150, deadline=None)
def test_stateful_split_equals_whole(patterns, text, cut):
    """Scanning a split stream with carried state equals a single scan."""
    cut = min(cut, len(text))
    ac = AhoCorasick(patterns)
    whole, end_state = ac.scan(text)
    first, mid_state = ac.scan(text[:cut])
    second, final_state = ac.scan(text[cut:], mid_state)
    combined = sorted(first + [(cut + end, idx) for end, idx in second])
    assert combined == sorted(whole)
    assert final_state == end_state


@given(patterns=patterns_strategy, text=text_strategy)
@settings(max_examples=100, deadline=None)
def test_layouts_agree(patterns, text):
    sparse, _ = AhoCorasick(patterns, layout="sparse").scan(text)
    full, _ = AhoCorasick(patterns, layout="full").scan(text)
    assert sorted(sparse) == sorted(full)


@given(patterns=patterns_strategy)
@settings(max_examples=100, deadline=None)
def test_every_pattern_matches_itself(patterns):
    ac = AhoCorasick(patterns)
    for index, p in enumerate(patterns):
        matches, _ = ac.scan(p)
        assert (len(p), index) in matches


@given(patterns=patterns_strategy, text=text_strategy)
@settings(max_examples=100, deadline=None)
def test_match_positions_are_consistent(patterns, text):
    """Every reported match really is the pattern at that position."""
    ac = AhoCorasick(patterns)
    matches, _ = ac.scan(text)
    for end, index in matches:
        p = patterns[index]
        assert text[end - len(p) : end] == p
