"""Unit tests for payload preprocessing (decompression before DPI)."""

import gzip
import zlib

import pytest

from repro.core.preprocess import (
    PayloadPreprocessor,
    ScanView,
    decompress_gzip_regions,
    find_gzip_offsets,
)


def gzipped(data: bytes) -> bytes:
    return gzip.compress(data)


class TestGzipDetection:
    def test_finds_stream_at_offset(self):
        payload = b"HTTP/1.1 200 OK\r\n\r\n" + gzipped(b"hello body")
        offsets = find_gzip_offsets(payload)
        assert offsets == [19]

    def test_multiple_streams(self):
        payload = gzipped(b"one") + b"gap" + gzipped(b"two")
        assert len(find_gzip_offsets(payload)) == 2

    def test_magic_without_deflate_method_ignored(self):
        payload = b"\x1f\x8b\x00junk"
        assert find_gzip_offsets(payload) == []

    def test_no_magic(self):
        assert find_gzip_offsets(b"plain text") == []


class TestDecompression:
    def test_round_trip(self):
        body = b"secret pattern inside the compressed body"
        payload = b"headers\r\n\r\n" + gzipped(body)
        regions = decompress_gzip_regions(payload)
        assert len(regions) == 1
        offset, inflated = regions[0]
        assert inflated == body
        assert payload[offset : offset + 2] == b"\x1f\x8b"

    def test_corrupt_stream_skipped(self):
        payload = b"\x1f\x8b\x08" + b"\x00" * 20
        assert decompress_gzip_regions(payload) == []

    def test_bomb_capped(self):
        bomb = gzip.compress(b"\x00" * (4 << 20))  # 4 MB of zeros
        regions = decompress_gzip_regions(bomb, max_inflated=1024)
        assert len(regions) == 1
        assert len(regions[0][1]) == 1024


class TestPayloadPreprocessor:
    def test_raw_view_always_first(self):
        preprocessor = PayloadPreprocessor()
        views = preprocessor.views(b"plain")
        assert views == [ScanView(data=b"plain")]

    def test_compressed_view_appended(self):
        preprocessor = PayloadPreprocessor()
        body = b"malware-marker-inside"
        payload = b"HDR" + gzipped(body)
        views = preprocessor.views(payload)
        assert len(views) == 2
        assert views[0].data == payload
        assert views[1].data == body
        assert views[1].compressed
        assert views[1].source_offset == 3

    def test_stats(self):
        preprocessor = PayloadPreprocessor()
        preprocessor.views(b"plain")
        preprocessor.views(gzipped(b"body"))
        preprocessor.views(b"\x1f\x8b\x08 corrupt")
        stats = preprocessor.stats
        assert stats.payloads == 3
        assert stats.gzip_regions_inflated == 1
        assert stats.inflate_failures == 1

    def test_bomb_counter(self):
        preprocessor = PayloadPreprocessor(max_inflated=512)
        preprocessor.views(gzip.compress(b"\x00" * 100_000))
        assert preprocessor.stats.bombs_stopped == 1

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            PayloadPreprocessor(max_inflated=0)


class TestScanOnceIntegration:
    def test_pattern_hidden_by_compression_found_in_view(self):
        """The paper's motivation: decompress once at the service, then the
        merged automaton scans the decompressed view for everyone."""
        from repro.core.combined import CombinedAutomaton
        from repro.core.patterns import Pattern

        automaton = CombinedAutomaton({1: [Pattern(0, b"hidden-threat")]})
        preprocessor = PayloadPreprocessor()
        payload = b"HTTP/1.1 200 OK\r\n\r\n" + gzipped(b"a hidden-threat lives here")
        # Raw scan misses it; the decompressed view finds it.
        raw_result = automaton.scan(payload)
        assert raw_result.raw_matches == []
        hits = []
        for view in preprocessor.views(payload):
            result = automaton.scan(view.data)
            hits.extend(result.raw_matches)
        assert hits, "pattern not found in any scan view"
