"""Unit tests for repro.load: profiles, ramp schedules, the generator.

Pins the subsystem's two structural claims: bit-for-bit determinism from a
seed (batches, payload pools, heavy-hitter selection) and compact per-flow
state that really does hold about a million concurrent flows.
"""

import json

import pytest

from repro.load.generator import (
    SIGNATURES,
    LoadGenerator,
    all_signatures,
    profile_of_chain,
)
from repro.load.profiles import (
    MIXES,
    PROFILES,
    RAMP_KINDS,
    LoadSpec,
    RampSchedule,
    profile_vocabulary,
    resolve_mix,
)


def drain(spec):
    generator = LoadGenerator(spec)
    return generator, list(generator.batches())


class TestProfiles:
    def test_vocabulary_covers_mixes_and_profiles(self):
        names = profile_vocabulary()
        for name in MIXES:
            assert name in names
        for name in PROFILES:
            assert name in names

    def test_resolve_mix_normalizes_weights(self):
        resolved = resolve_mix("mixed")
        assert sum(weight for _, weight in resolved) == pytest.approx(1.0)

    def test_resolve_single_profile(self):
        resolved = resolve_mix("benign-http")
        assert len(resolved) == 1
        assert resolved[0][0].name == "benign-http"
        assert resolved[0][1] == pytest.approx(1.0)

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown profile"):
            resolve_mix("nope")

    def test_every_ramp_kind_terminates_and_peaks(self):
        for kind in RAMP_KINDS:
            ramp = RampSchedule(kind=kind, step_epoch=2)
            fractions = [ramp.fraction(epoch, 8) for epoch in range(8)]
            assert all(0.0 < f <= 1.0 for f in fractions), (kind, fractions)
            assert max(fractions) == pytest.approx(1.0), kind

    def test_linear_ramp_is_monotonic(self):
        ramp = RampSchedule(kind="linear", floor_fraction=0.2)
        fractions = [ramp.fraction(epoch, 10) for epoch in range(10)]
        assert fractions == sorted(fractions)
        assert fractions[0] == pytest.approx(0.2)

    def test_unknown_ramp_kind_raises(self):
        with pytest.raises(ValueError, match="unknown ramp kind"):
            RampSchedule(kind="bogus").fraction(0, 4)

    def test_spec_json_round_trip(self, tmp_path):
        spec = LoadSpec(
            profile_mix="flood",
            flows=1234,
            epochs=9,
            seed=42,
            ramp=RampSchedule(kind="step", step_epoch=3),
        )
        path = tmp_path / "spec.json"
        spec.save(str(path))
        assert LoadSpec.load(str(path)) == spec
        # The file is plain JSON a validator can read structurally.
        document = json.loads(path.read_text())
        assert document["profile_mix"] == "flood"
        assert document["ramp"]["kind"] == "step"

    def test_with_overrides(self):
        spec = LoadSpec().with_overrides(flows=77, slo_ms=5.0)
        assert spec.flows == 77
        assert spec.slo_ms == 5.0
        assert spec.epochs == LoadSpec().epochs


class TestGeneratorDeterminism:
    def test_same_seed_identical_batches(self):
        spec = LoadSpec(flows=600, epochs=6, ramp=RampSchedule(kind="linear"))
        _, first = drain(spec)
        _, second = drain(spec)
        assert [batch.items for batch in first] == [
            batch.items for batch in second
        ]
        assert [batch.suppressed for batch in first] == [
            batch.suppressed for batch in second
        ]

    def test_different_seed_differs(self):
        base = LoadSpec(flows=600, epochs=4)
        _, first = drain(base)
        _, second = drain(base.with_overrides(seed=base.seed + 1))
        assert [b.items for b in first] != [b.items for b in second]

    def test_batches_stream_lazily(self):
        generator = LoadGenerator(LoadSpec(flows=300, epochs=50))
        iterator = generator.batches()
        first = next(iterator)
        assert first.epoch == 0
        # Only epoch 0 has been generated; the rest of the run has not.
        assert generator.stats.packets_emitted == len(first.items)


class TestGeneratorBehavior:
    def test_profile_mix_respected(self):
        generator, _ = drain(LoadSpec(flows=3000, epochs=2))
        by_profile = generator.stats.spawned_by_profile
        total = sum(by_profile.values())
        assert by_profile["benign-http"] / total == pytest.approx(0.7, abs=0.1)
        assert by_profile["mirai-burst"] / total == pytest.approx(0.2, abs=0.1)

    def test_flows_complete_and_respawn(self):
        generator, batches = drain(LoadSpec(flows=400, epochs=12))
        assert generator.stats.flows_completed > 0
        # Constant ramp: the pool is topped back up every epoch.
        for batch in batches:
            assert batch.concurrent_flows <= 400

    def test_heavy_hitters_flagged_and_oversized(self):
        spec = LoadSpec(profile_mix="flood", flows=600, epochs=3)
        generator, batches = drain(spec)
        assert generator.stats.heavy_flows > 0
        heavy_payloads = [
            payload
            for batch in batches
            for _, _, payload, heavy in batch.items
            if heavy
        ]
        assert heavy_payloads
        signatures = all_signatures()
        for payload in heavy_payloads:
            assert any(signature in payload for signature in signatures)

    def test_packet_cap_suppresses_deterministically(self):
        spec = LoadSpec(flows=2000, epochs=3, max_packets_per_epoch=100)
        _, batches = drain(spec)
        for batch in batches:
            assert len(batch.items) <= 100
        assert sum(batch.suppressed for batch in batches) > 0

    def test_chain_ids_match_profiles(self):
        _, batches = drain(LoadSpec(flows=500, epochs=3))
        chains = {chain for _, chain, _, _ in batches[0].items}
        for chain in chains:
            assert profile_of_chain(chain) in PROFILES

    def test_signature_corpus_is_stable(self):
        # The middlebox registrations and payload pools share this corpus.
        assert set(SIGNATURES) == {"ids", "av"}
        assert all_signatures() == sorted(all_signatures())


class TestMillionFlows:
    def test_million_concurrent_flows_compact_state(self):
        spec = LoadSpec(
            flows=1_000_000, epochs=1, max_packets_per_epoch=500
        )
        generator = LoadGenerator(spec)
        batch = next(generator.batches())
        assert batch.concurrent_flows > 900_000
        assert len(batch.items) == 500
        # Columnar state: ~5 bytes/flow + the active-id array, not objects.
        column_bytes = (
            generator._profile_of.itemsize * len(generator._profile_of)
            + generator._packets_left.itemsize * len(generator._packets_left)
            + generator._active.itemsize * len(generator._active)
        )
        assert column_bytes < 32 * 1_000_000
