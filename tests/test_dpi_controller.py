"""Unit tests for the DPI controller (Section 4.1)."""

import pytest

from repro.core.controller import DPIController
from repro.core.messages import (
    AddPatternsMessage,
    RegisterMiddleboxMessage,
    RemovePatternsMessage,
    UnregisterMiddleboxMessage,
)
from repro.core.patterns import Pattern
from repro.net.steering import PolicyChain


def register(controller, middlebox_id, name, patterns=(), **kwargs):
    ack = controller.handle_message(
        RegisterMiddleboxMessage(middlebox_id=middlebox_id, name=name, **kwargs)
    )
    assert ack.ok, ack.detail
    if patterns:
        ack = controller.handle_message(
            AddPatternsMessage(
                middlebox_id=middlebox_id,
                patterns=[Pattern(i, p) for i, p in enumerate(patterns)],
            )
        )
        assert ack.ok, ack.detail


class TestRegistration:
    def test_register_and_profile(self):
        controller = DPIController()
        register(controller, 1, "ids", stateful=True, read_only=True)
        profile = controller.profile_of(1)
        assert profile.stateful and profile.read_only
        assert controller.middlebox_ids == [1]

    def test_duplicate_registration_rejected(self):
        controller = DPIController()
        register(controller, 1, "ids")
        ack = controller.handle_message(RegisterMiddleboxMessage(1, "other"))
        assert not ack.ok
        assert "already registered" in ack.detail

    def test_json_channel(self):
        controller = DPIController()
        ack = controller.handle_message(
            RegisterMiddleboxMessage(2, "av").to_json()
        )
        assert ack.ok

    def test_inherit_pattern_set(self):
        """A middlebox may inherit the set of an already-registered one."""
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"aaaa", b"bbbb"])
        register(controller, 2, "ids2", inherit_from=1)
        inherited = controller.pattern_set_of(2)
        assert sorted(p.data for p in inherited) == [b"aaaa", b"bbbb"]
        # Inherited patterns are shared in the registry, not duplicated.
        assert len(controller.registry) == 2

    def test_inherit_from_unknown_rejected(self):
        controller = DPIController()
        ack = controller.handle_message(
            RegisterMiddleboxMessage(2, "x", inherit_from=99)
        )
        assert not ack.ok
        assert controller.middlebox_ids == []

    def test_unregister_releases_patterns(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"aaaa"])
        controller.handle_message(UnregisterMiddleboxMessage(1))
        assert controller.middlebox_ids == []
        assert len(controller.registry) == 0

    def test_unregister_unknown_rejected(self):
        controller = DPIController()
        ack = controller.handle_message(UnregisterMiddleboxMessage(9))
        assert not ack.ok


class TestPatternManagement:
    def test_add_and_remove(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"aaaa", b"bbbb"])
        ack = controller.handle_message(
            RemovePatternsMessage(middlebox_id=1, pattern_ids=[0])
        )
        assert ack.ok
        assert len(controller.pattern_set_of(1)) == 1
        assert len(controller.registry) == 1

    def test_shared_pattern_survives_one_removal(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"shared"])
        register(controller, 2, "av", patterns=[b"shared"])
        controller.handle_message(RemovePatternsMessage(1, [0]))
        assert len(controller.registry) == 1
        controller.handle_message(RemovePatternsMessage(2, [0]))
        assert len(controller.registry) == 0

    def test_add_to_unknown_middlebox_rejected(self):
        controller = DPIController()
        ack = controller.handle_message(
            AddPatternsMessage(middlebox_id=7, patterns=[Pattern(0, b"aaaa")])
        )
        assert not ack.ok


class TestChains:
    def _controller_with_chains(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"aaaa"])
        register(controller, 2, "av", patterns=[b"bbbb"])
        controller.policy_chains_changed(
            {
                "c1": PolicyChain("c1", ("l2l4_fw", "ids"), chain_id=100),
                "c2": PolicyChain("c2", ("ids", "av"), chain_id=101),
            }
        )
        return controller

    def test_chain_middlebox_ids(self):
        controller = self._controller_with_chains()
        assert controller.chain_middlebox_ids(100) == (1,)
        assert controller.chain_middlebox_ids(101) == (1, 2)

    def test_chain_map_subset(self):
        controller = self._controller_with_chains()
        assert controller.chain_map([100]) == {100: (1,)}

    def test_non_dpi_types_ignored(self):
        controller = self._controller_with_chains()
        # l2l4_fw never registered with the DPI service.
        assert 100 in controller.chain_map()
        assert controller.chain_middlebox_ids(100) == (1,)


class TestInstances:
    def _controller(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"attack-sig"], stateful=True)
        register(controller, 2, "av", patterns=[b"virus-sig"], stateful=True)
        controller.policy_chains_changed(
            {"c": PolicyChain("c", ("ids", "av"), chain_id=100)}
        )
        return controller

    def test_create_instance_and_scan(self):
        controller = self._controller()
        instance = controller.instances.provision("dpi-1")
        output = instance.inspect(b"an attack-sig and virus-sig", chain_id=100)
        assert output.matches[1] == [(0, 13)]
        assert output.matches[2] == [(0, 27)]

    def test_duplicate_instance_name_rejected(self):
        controller = self._controller()
        controller.instances.provision("dpi-1")
        with pytest.raises(ValueError):
            controller.instances.provision("dpi-1")

    def test_instance_chain_filter(self):
        controller = self._controller()
        controller.policy_chains_changed(
            {
                "c": PolicyChain("c", ("ids", "av"), chain_id=100),
                "d": PolicyChain("d", ("ids",), chain_id=101),
            }
        )
        instance = controller.instances.provision("dpi-d", chain_ids=[101])
        assert 101 in instance.scanner.chain_map
        assert 100 not in instance.scanner.chain_map
        # Only the IDS's patterns are loaded.
        assert list(instance.config.pattern_sets) == [1]

    def test_refresh_after_pattern_change(self):
        controller = self._controller()
        instance = controller.instances.provision("dpi-1")
        controller.add_patterns(1, [Pattern(1, b"new-threat")])
        controller.instances.refresh()
        output = instance.inspect(b"a new-threat arrives", chain_id=100)
        assert (1, 12) in output.matches[1]

    def test_remove_instance(self):
        controller = self._controller()
        controller.instances.provision("dpi-1")
        controller.instances.decommission("dpi-1")
        assert controller.instances == {}
        with pytest.raises(KeyError):
            controller.instances.decommission("dpi-1")

    def test_collect_telemetry(self):
        controller = self._controller()
        instance = controller.instances.provision("dpi-1")
        instance.inspect(b"data", chain_id=100)
        telemetry = controller.telemetry_snapshot().instances
        assert telemetry["dpi-1"]["packets_scanned"] == 1

    def test_migrate_flow(self):
        controller = self._controller()
        source = controller.instances.provision("dpi-1")
        target = controller.instances.provision("dpi-2")
        source.inspect(b"partial attack-si", chain_id=100, flow_key="f")
        assert controller.migrate_flow("f", "dpi-1", "dpi-2")
        # The scan completes on the target with the carried state.
        output = target.inspect(b"g", chain_id=100, flow_key="f")
        assert (0, 18) in output.matches[1]
        # And the source no longer holds the flow.
        assert source.export_flow("f") is None

    def test_migrate_unknown_flow(self):
        controller = self._controller()
        controller.instances.provision("dpi-1")
        controller.instances.provision("dpi-2")
        assert not controller.migrate_flow("ghost", "dpi-1", "dpi-2")


class TestChainNames:
    def test_chain_name_lookup(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"aaaa"])
        controller.policy_chains_changed(
            {"edge": PolicyChain("edge", ("ids",), chain_id=300)}
        )
        assert controller.chain_name_of(300) == "edge"
        assert controller.chain_name_of(999) is None

    def test_chain_name_uses_visible_tag(self):
        controller = DPIController()
        register(controller, 1, "ids", patterns=[b"aaaa"])
        controller.policy_chains_changed(
            {"edge": PolicyChain("edge", ("fw", "dpi", "ids"), chain_id=400)}
        )
        # The DPI sits at hop 1: the visible tag is base + 1.
        assert controller.chain_name_of(401) == "edge"
        assert controller.chain_name_of(400) is None
        assert controller.chain_middlebox_ids(401) == (1,)
