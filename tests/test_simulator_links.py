"""Unit tests for the discrete-event simulator and links."""

import pytest

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.links import Link
from repro.net.packet import make_tcp_packet
from repro.net.simulator import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        processed = sim.run(until=2.0)
        assert processed == 1
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_max_events(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending_events == 1

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(1.0, lambda: None)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0


class _Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet, port):
        self.received.append((packet, port))

    def attach_link(self, port, link):
        pass


def make_packet(payload=b"x" * 100):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1,
        2,
        payload=payload,
    )


class TestLink:
    def test_delivery_with_latency(self):
        sim = Simulator()
        a, b = _Sink(), _Sink()
        link = Link(sim, bandwidth_bps=8e6, propagation_delay=0.001)
        link.attach(a, 1, b, 2)
        packet = make_packet(b"x" * 100)  # wire length 154
        link.send_from(a, packet)
        sim.run()
        assert len(b.received) == 1
        # 154 bytes * 8 bits / 8e6 bps = 154 us, + 1 ms propagation.
        assert sim.now == pytest.approx(154e-6 + 0.001)

    def test_bidirectional(self):
        sim = Simulator()
        a, b = _Sink(), _Sink()
        link = Link(sim)
        link.attach(a, 1, b, 2)
        link.send_from(a, make_packet())
        link.send_from(b, make_packet())
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_serialization_delay_orders_packets(self):
        sim = Simulator()
        a, b = _Sink(), _Sink()
        link = Link(sim, bandwidth_bps=8e3)  # 1 KB/s: very slow
        link.attach(a, 1, b, 2)
        first, second = make_packet(b"1" * 100), make_packet(b"2" * 100)
        link.send_from(a, first)
        link.send_from(a, second)
        sim.run()
        assert [p.packet_id for p, _ in b.received] == [
            first.packet_id,
            second.packet_id,
        ]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        a, b = _Sink(), _Sink()
        link = Link(sim, queue_capacity=2)
        link.attach(a, 1, b, 2)
        results = [link.send_from(a, make_packet()) for _ in range(4)]
        # First send starts transmitting immediately (leaves the queue),
        # so 3 are accepted and 1 dropped.
        assert results.count(True) == 3
        assert link.stats_from(a).packets_dropped == 1

    def test_stats(self):
        sim = Simulator()
        a, b = _Sink(), _Sink()
        link = Link(sim)
        link.attach(a, 1, b, 2)
        packet = make_packet()
        link.send_from(a, packet)
        sim.run()
        stats = link.stats_from(a)
        assert stats.packets_sent == 1
        assert stats.bytes_sent == packet.wire_length

    def test_unattached_link_rejects_send(self):
        link = Link(Simulator())
        with pytest.raises(RuntimeError):
            link.send_from(_Sink(), make_packet())

    def test_foreign_node_rejected(self):
        sim = Simulator()
        a, b, c = _Sink(), _Sink(), _Sink()
        link = Link(sim)
        link.attach(a, 1, b, 2)
        with pytest.raises(ValueError):
            link.send_from(c, make_packet())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Link(Simulator(), bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(Simulator(), propagation_delay=-1)
