"""Unit tests for the Aho-Corasick matcher (both layouts)."""

import pytest

from repro.core.aho_corasick import ROOT, AhoCorasick
from tests.conftest import PAPER_SET_0, PAPER_SET_1, naive_find_all

LAYOUTS = ["sparse", "full"]


@pytest.mark.parametrize("layout", LAYOUTS)
class TestBasicMatching:
    def test_single_pattern(self, layout):
        ac = AhoCorasick([b"abc"], layout=layout)
        matches, _ = ac.scan(b"xxabcxxabc")
        assert matches == [(5, 0), (10, 0)]

    def test_no_match(self, layout):
        ac = AhoCorasick([b"abc"], layout=layout)
        matches, state = ac.scan(b"xyzxyz")
        assert matches == []
        assert state == ROOT

    def test_empty_input(self, layout):
        ac = AhoCorasick([b"abc"], layout=layout)
        matches, state = ac.scan(b"")
        assert matches == []
        assert state == ROOT

    def test_overlapping_matches(self, layout):
        ac = AhoCorasick([b"aa"], layout=layout)
        matches, _ = ac.scan(b"aaaa")
        assert matches == [(2, 0), (3, 0), (4, 0)]

    def test_suffix_pattern_reported(self, layout):
        # "he" is a suffix of "she"; both end at the same position.
        ac = AhoCorasick([b"she", b"he"], layout=layout)
        matches, _ = ac.scan(b"she")
        assert sorted(matches) == [(3, 0), (3, 1)]

    def test_classic_aho_corasick_example(self, layout):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"], layout=layout)
        matches, _ = ac.scan(b"ushers")
        assert sorted(matches) == [(4, 0), (4, 1), (6, 3)]

    def test_paper_set_0(self, layout):
        ac = AhoCorasick(PAPER_SET_0, layout=layout)
        matches, _ = ac.scan(b"BCDBCAB")
        # BCD ends at 3, BD does not appear, CDBCAB ends at 7.
        assert sorted(matches) == [(3, 3), (7, 5)]

    def test_binary_patterns(self, layout):
        ac = AhoCorasick([b"\x00\xff\x00", b"\xde\xad\xbe\xef"], layout=layout)
        matches, _ = ac.scan(b"\x01\x00\xff\x00\xde\xad\xbe\xef")
        assert sorted(matches) == [(4, 0), (8, 1)]

    def test_matches_against_oracle(self, layout):
        patterns = [b"ab", b"bc", b"abc", b"cab", b"aabb"]
        text = b"aabbcabcababcab"
        ac = AhoCorasick(patterns, layout=layout)
        matches, _ = ac.scan(text)
        assert sorted(matches) == naive_find_all(patterns, text)

    def test_duplicate_patterns_both_reported(self, layout):
        ac = AhoCorasick([b"dup", b"dup"], layout=layout)
        matches, _ = ac.scan(b"xdup")
        assert sorted(matches) == [(4, 0), (4, 1)]


@pytest.mark.parametrize("layout", LAYOUTS)
class TestStatefulScanning:
    def test_state_resumes_across_packets(self, layout):
        ac = AhoCorasick([b"hello"], layout=layout)
        matches1, state = ac.scan(b"xxhel")
        assert matches1 == []
        matches2, _ = ac.scan(b"lo", state)
        assert matches2 == [(2, 0)]

    def test_state_after_matches_scan(self, layout):
        ac = AhoCorasick([b"abcd"], layout=layout)
        _, state_via_scan = ac.scan(b"xxabc")
        assert ac.state_after(b"xxabc") == state_via_scan

    def test_split_anywhere_equals_whole(self, layout):
        patterns = [b"needle", b"edl", b"dle"]
        text = b"xxneedleyyneedle"
        ac = AhoCorasick(patterns, layout=layout)
        whole, _ = ac.scan(text)
        for cut in range(len(text) + 1):
            first, state = ac.scan(text[:cut])
            second, _ = ac.scan(text[cut:], state)
            shifted = [(cut + end, idx) for end, idx in second]
            assert sorted(first + shifted) == sorted(whole), f"cut={cut}"


class TestConstruction:
    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b"ok", b""])

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b"x"], layout="dense")

    def test_num_states_counts_shared_prefixes_once(self):
        # "abc" and "abd" share states for "", "a", "ab".
        ac = AhoCorasick([b"abc", b"abd"])
        assert ac.num_states == 5  # root, a, ab, abc, abd

    def test_depth_tracks_label_length(self):
        ac = AhoCorasick([b"abc"])
        state = ROOT
        for depth, byte in enumerate(b"abc", start=1):
            state = ac.next_state(state, byte)
            assert ac.depth_of(state) == depth

    def test_accepting_states_match_output(self):
        ac = AhoCorasick(PAPER_SET_0)
        for state in ac.accepting_states:
            assert ac.output_of(state)
        assert ac.is_accepting(ac.accepting_states[0])

    def test_output_includes_suffix_closure(self):
        ac = AhoCorasick([b"abcdef", b"def"])
        state = ac.state_after(b"abcdef")
        assert set(ac.output_of(state)) == {0, 1}

    def test_layouts_agree_on_transitions(self):
        patterns = PAPER_SET_0 + PAPER_SET_1
        sparse = AhoCorasick(patterns, layout="sparse")
        full = AhoCorasick(patterns, layout="full")
        assert sparse.num_states == full.num_states
        for state in range(sparse.num_states):
            for byte in b"ABCDEX":
                assert sparse.next_state(state, byte) == full.next_state(
                    state, byte
                ), (state, byte)


class TestStats:
    def test_full_layout_memory_exceeds_sparse(self):
        patterns = [bytes([65 + i % 26]) * 8 for i in range(20)]
        sparse = AhoCorasick(patterns, layout="sparse")
        full = AhoCorasick(patterns, layout="full")
        assert full.stats.memory_bytes > sparse.stats.memory_bytes

    def test_stats_fields(self):
        ac = AhoCorasick(PAPER_SET_0, layout="full")
        stats = ac.stats
        assert stats.num_patterns == len(PAPER_SET_0)
        assert stats.layout == "full"
        assert stats.num_states == ac.num_states
        assert stats.memory_megabytes == stats.memory_bytes / (1024 * 1024)

    def test_more_patterns_more_states(self):
        small = AhoCorasick([b"pattern-one"])
        large = AhoCorasick([b"pattern-one", b"pattern-two", b"unrelated"])
        assert large.num_states > small.num_states


class TestHelpers:
    def test_count_matches(self):
        ac = AhoCorasick([b"aa"])
        assert ac.count_matches(b"aaaa") == 3

    def test_find_all_reports_start_offsets(self):
        ac = AhoCorasick([b"bcd"])
        assert ac.find_all(b"abcd") == [(1, 0)]

    def test_patterns_property_is_copy(self):
        ac = AhoCorasick([b"abc"])
        ac.patterns.append(b"nope")
        assert ac.patterns == [b"abc"]
