"""Unit tests for anchor extraction (Section 5.3)."""

import re

import pytest

from repro.core.anchors import MIN_ANCHOR_LENGTH, extract_anchors


class TestPaperExample:
    def test_paper_example(self):
        # The example given in the paper, Section 5.3.
        anchors = extract_anchors(rb"regular\s*expression\s*\d+")
        assert anchors == [b"regular", b"expression"]


class TestLiteralHandling:
    def test_plain_literal(self):
        assert extract_anchors(b"justliteral") == [b"justliteral"]

    def test_short_literal_not_extracted(self):
        assert extract_anchors(b"abc") == []

    def test_minimum_length_boundary(self):
        assert extract_anchors(b"abcd") == [b"abcd"]
        assert extract_anchors(b"abc") == []

    def test_custom_min_length(self):
        assert extract_anchors(b"abc", min_length=3) == [b"abc"]

    def test_escaped_metacharacters_are_literals(self):
        anchors = extract_anchors(rb"index\.html")
        assert anchors == [b"index.html"]

    def test_escaped_control_bytes(self):
        anchors = extract_anchors(rb"head\r\n\r\ntail")
        assert b"head\r\n\r\ntail" in anchors

    def test_hex_escape(self):
        anchors = extract_anchors(rb"ab\x41\x42cd")
        assert anchors == [b"abABcd"]

    def test_deduplication(self):
        anchors = extract_anchors(rb"duplicate\d+duplicate")
        assert anchors == [b"duplicate"]


class TestQuantifiers:
    def test_optional_char_drops_it(self):
        # 's?' may be absent: "http" is required, "https" is not.
        anchors = extract_anchors(rb"https?://")
        assert anchors == [b"http"]

    def test_star_drops_char(self):
        anchors = extract_anchors(rb"abcdz*")
        assert anchors == [b"abcd"]

    def test_plus_keeps_char_but_cuts_run(self):
        # 'd+' guarantees at least one 'd'; what follows is non-contiguous.
        anchors = extract_anchors(rb"abcd+efgh")
        assert b"abcd" in anchors
        assert b"efgh" in anchors
        assert b"abcdefgh" not in anchors

    def test_exact_one_repeat_is_transparent(self):
        anchors = extract_anchors(rb"abc{1}d")
        assert anchors == [b"abcd"]

    def test_zero_min_brace_drops_char(self):
        anchors = extract_anchors(rb"abcde{0,3}")
        assert anchors == [b"abcd"]

    def test_lazy_quantifiers(self):
        anchors = extract_anchors(rb"abcd.*?efgh")
        assert anchors == [b"abcd", b"efgh"]


class TestClassesAndWildcards:
    def test_wildcard_cuts_run(self):
        anchors = extract_anchors(rb"abcd.efgh")
        assert anchors == [b"abcd", b"efgh"]

    def test_character_class_cuts_run(self):
        anchors = extract_anchors(rb"abcd[xyz]efgh")
        assert anchors == [b"abcd", b"efgh"]

    def test_class_with_bracket_inside(self):
        anchors = extract_anchors(rb"abcd[]x]efgh")
        assert anchors == [b"abcd", b"efgh"]

    def test_negated_class(self):
        anchors = extract_anchors(rb"abcd[^0-9]efgh")
        assert anchors == [b"abcd", b"efgh"]

    def test_class_escape_sequences_cut(self):
        anchors = extract_anchors(rb"user\w+name")
        assert b"user" in anchors
        assert b"name" in anchors


class TestAnchorsAndBoundaries:
    def test_caret_and_dollar_do_not_cut(self):
        anchors = extract_anchors(rb"^HTTP/1.1")
        assert b"HTTP" in anchors[0] or anchors[0].startswith(b"HTTP")

    def test_caret_literal_run_continues(self):
        assert extract_anchors(rb"^POST") == [b"POST"]


class TestAlternation:
    def test_top_level_alternation_yields_nothing(self):
        # Either side may match: no substring is required.
        assert extract_anchors(rb"attack|malware") == []

    def test_group_alternation_discards_group_content(self):
        anchors = extract_anchors(rb"prefix(aaaa|bbbb)suffix")
        assert b"prefix" in anchors
        assert b"suffix" in anchors
        assert b"aaaa" not in anchors

    def test_single_branch_group_contributes(self):
        anchors = extract_anchors(rb"(required)\d+")
        assert anchors == [b"required"]

    def test_optional_group_discarded(self):
        anchors = extract_anchors(rb"base(optional)?tail")
        assert b"base" in anchors
        assert b"tail" in anchors
        assert b"optional" not in anchors

    def test_non_capturing_group(self):
        anchors = extract_anchors(rb"(?:mandatory)rest")
        assert b"mandatory" in anchors

    def test_lookahead_discarded(self):
        anchors = extract_anchors(rb"(?=peekpeek)realreal")
        assert anchors == [b"realreal"]


class TestSoundness:
    """Every anchor must occur in every string the regex matches."""

    CASES = [
        (rb"regular\s*expression\s*\d+", ["regular  expression 42", "regularexpression9"]),
        (rb"https?://[a-z]+\.com", ["http://site.com", "https://other.com"]),
        (rb"abcd+efgh", ["abcdefgh", "abcddddefgh"]),
        (rb"prefix(aaaa|bbbb)suffix", ["prefixaaaasuffix", "prefixbbbbsuffix"]),
        (rb"GET /(index|home)\.html", ["GET /index.html", "GET /home.html"]),
    ]

    @pytest.mark.parametrize("regex,examples", CASES)
    def test_anchors_present_in_matches(self, regex, examples):
        anchors = extract_anchors(regex)
        compiled = re.compile(regex)
        for example in examples:
            data = example.encode()
            assert compiled.search(data), f"test case broken: {example!r}"
            for anchor in anchors:
                assert anchor in data, (anchor, example)

    def test_string_input_accepted(self):
        assert extract_anchors("textpattern") == [b"textpattern"]
