"""The custom AST lint engine: rules, suppressions, reporters, self-check.

Every registered rule must demonstrably fire on a crafted bad fixture and
stay quiet on the equivalent good code; the engine-level tests cover
suppression comments, sim-scope gating, parse failures and the JSON
reporter schema CI consumers rely on.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_REGISTRY,
    default_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.engine import module_name_for
from repro.analysis.reporters import JSON_SCHEMA_VERSION

SIM_PATH = "repro/net/fake.py"
OUTSIDE_PATH = "repro/workloads/fake.py"

REPO_ROOT = Path(__file__).resolve().parents[1]


def codes(findings):
    return [finding.code for finding in findings]


# --- per-rule negative fixtures (each rule must fire) -----------------------

#: rule code -> source that must trigger it on a simulation path.
BAD_FIXTURES = {
    "DET001": "import time\nstamp = time.time()\n",
    "DET002": "for item in {1, 2, 3}:\n    print(item)\n",
    "TEL001": (
        "def f(registry, addr):\n"
        "    registry.counter('pkts', peer=f'{addr}')\n"
    ),
    "API001": "def handler(queue=[]):\n    return queue\n",
    "API002": (
        "def deploy(controller):\n"
        "    return controller.create_instance('dpi-1')\n"
    ),
    "KER001": (
        "class ShinyKernel:\n"
        "    def scan(self, data, active_bitmap, state, limit):\n"
        "        return None\n"
        "    def warm_up(self):\n"
        "        return None\n"
    ),
    "DET003": (
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
        "def schedule(event):\n"
        "    event.at = stamp()\n"
    ),
    "RES001": (
        "from multiprocessing import shared_memory\n"
        "def provision(nbytes, publish):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=nbytes)\n"
        "    publish(segment.name)\n"
        "    return segment.name\n"
    ),
    "RES002": (
        "import multiprocessing\n"
        "class Runner:\n"
        "    def boot(self):\n"
        "        self.pool = multiprocessing.Pool(2)\n"
        "    def submit(self, work):\n"
        "        return self.pool.apply(work)\n"
    ),
    "CON001": (
        "import threading\n"
        "import multiprocessing\n"
        "def boot(fn):\n"
        "    guard = threading.Lock()\n"
        "    worker = multiprocessing.Process(target=fn)\n"
        "    worker.start()\n"
        "    worker.join()\n"
        "    return guard\n"
    ),
    "CON002": (
        "import multiprocessing\n"
        "def drain(items):\n"
        "    queue = multiprocessing.Queue()\n"
        "    for item in items:\n"
        "        queue.put(item)\n"
        "    queue.close()\n"
        "    queue.put(None)\n"
        "    queue.join_thread()\n"
    ),
    "NOQ001": "x = 1  # repro: noqa[DET001]\n",
}


@pytest.mark.parametrize("code", sorted(RULE_REGISTRY))
def test_every_registered_rule_fires_on_its_bad_fixture(code):
    assert code in BAD_FIXTURES, f"no negative fixture for rule {code}"
    findings = lint_source(BAD_FIXTURES[code], path=SIM_PATH)
    assert code in codes(findings)


def test_rule_registry_matches_default_rules():
    assert sorted(RULE_REGISTRY) == sorted(r.code for r in default_rules())


# --- DET001 -----------------------------------------------------------------

@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.time_ns()\n",
        "from datetime import datetime\nd = datetime.now()\n",
        "import datetime\nd = datetime.datetime.utcnow()\n",
        "import random\nx = random.random()\n",
        "import random\nx = random.randint(1, 6)\n",
        "import random\nrng = random.Random()\n",
        "import random\nrng = random.SystemRandom(7)\n",
    ],
)
def test_det001_flags_wall_clock_and_global_rng(snippet):
    assert codes(lint_source(snippet, path=SIM_PATH)) == ["DET001"]


@pytest.mark.parametrize(
    "snippet",
    [
        # Durations (never simulated behaviour) are deliberately allowed.
        "import time\nt = time.perf_counter()\n",
        "import time\nt = time.monotonic()\n",
        # A seeded RNG is the sanctioned source of randomness.
        "import random\nrng = random.Random(7)\n",
        "import random\nrng = random.Random(seed)\n",
    ],
)
def test_det001_allows_durations_and_seeded_rng(snippet):
    assert lint_source(snippet, path=SIM_PATH) == []


def test_det001_only_applies_on_simulation_paths():
    snippet = "import time\nt = time.time()\n"
    assert lint_source(snippet, path=OUTSIDE_PATH) == []
    assert lint_source(snippet, path="scripts/tool.py") == []


# --- DET002 -----------------------------------------------------------------

@pytest.mark.parametrize(
    "snippet",
    [
        "for x in {1, 2}:\n    pass\n",
        "for x in set(items):\n    pass\n",
        "for x in frozenset(items):\n    pass\n",
        "for x in left | {3}:\n    pass\n",
        "for x in set(a) - b:\n    pass\n",
        "out = [x for x in {1, 2}]\n",
        "out = {k: 1 for k in set(names)}\n",
    ],
)
def test_det002_flags_unordered_iteration(snippet):
    snippet = "left = {0}\n" + snippet
    assert "DET002" in codes(lint_source(snippet, path=SIM_PATH))


def test_det002_flags_set_typed_attribute_iteration():
    snippet = (
        "class Box:\n"
        "    def __init__(self):\n"
        "        self.members = set()\n"
        "    def walk(self):\n"
        "        for member in self.members:\n"
        "            print(member)\n"
    )
    findings = lint_source(snippet, path=SIM_PATH)
    assert codes(findings) == ["DET002"]
    assert ".members" in findings[0].message


def test_det002_flags_annotated_set_field_iteration():
    snippet = (
        "from dataclasses import dataclass, field\n"
        "@dataclass\n"
        "class Entry:\n"
        "    referrers: set[int] = field(default_factory=set)\n"
        "def walk(entry):\n"
        "    return [r for r in entry.referrers]\n"
    )
    assert "DET002" in codes(lint_source(snippet, path=SIM_PATH))


@pytest.mark.parametrize(
    "snippet",
    [
        # sorted() restores determinism.
        "class Box:\n"
        "    def __init__(self):\n"
        "        self.members = set()\n"
        "    def walk(self):\n"
        "        for member in sorted(self.members):\n"
        "            print(member)\n",
        # Lists and dicts iterate deterministically.
        "for x in [1, 2]:\n    pass\n",
        "for k in {'a': 1}:\n    pass\n",
    ],
)
def test_det002_allows_deterministic_iteration(snippet):
    assert lint_source(snippet, path=SIM_PATH) == []


def test_det002_silent_outside_sim_scope():
    snippet = "for x in {1, 2}:\n    pass\n"
    assert lint_source(snippet, path=OUTSIDE_PATH) == []


# --- TEL001 -----------------------------------------------------------------

@pytest.mark.parametrize(
    "snippet",
    [
        "registry.counter('pkts', peer=f'{addr}')\n",
        "registry.gauge('depth', queue='q-' + name)\n",
        "registry.histogram('lat', flow=str(flow_key))\n",
        "registry.counter('pkts', peer=addr.format())\n",
    ],
)
def test_tel001_flags_unbounded_label_values(snippet):
    snippet = "addr = name = flow_key = 'x'\nregistry = object()\n" + snippet
    assert "TEL001" in codes(lint_source(snippet, path=OUTSIDE_PATH))


@pytest.mark.parametrize(
    "snippet",
    [
        "registry.counter('pkts', instance='dpi1')\n",
        "registry.counter('pkts', instance=name)\n",
        "registry.histogram('lat', buckets=[b * 2 for b in bounds])\n",
        "registry.gauge_callback('flows', callback=lambda: str(x))\n",
    ],
)
def test_tel001_allows_bounded_labels_and_non_label_kwargs(snippet):
    snippet = "name = 'dpi1'\nbounds = [1.0]\nx = 1\nregistry = object()\n" + snippet
    assert lint_source(snippet, path=OUTSIDE_PATH) == []


# --- API001 -----------------------------------------------------------------

@pytest.mark.parametrize(
    "snippet",
    [
        "def f(x=[]):\n    pass\n",
        "def f(x={}):\n    pass\n",
        "def f(x=set()):\n    pass\n",
        "def f(*, x=dict()):\n    pass\n",
        "async def f(x=[]):\n    pass\n",
        "g = lambda x=[]: x\n",
        "import collections\ndef f(x=collections.defaultdict(list)):\n    pass\n",
    ],
)
def test_api001_flags_mutable_defaults(snippet):
    assert "API001" in codes(lint_source(snippet, path=OUTSIDE_PATH))


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(x=None):\n    pass\n",
        "def f(x=()):\n    pass\n",
        "def f(x=frozenset()):\n    pass\n",
        "def f(x=0, y='a'):\n    pass\n",
    ],
)
def test_api001_allows_immutable_defaults(snippet):
    assert lint_source(snippet, path=OUTSIDE_PATH) == []


# --- API002 (keyword-only inspection surface) -------------------------------

@pytest.mark.parametrize(
    "snippet",
    [
        "def scan(instance, p):\n    return instance.inspect(p, 100)\n",
        (
            "def scan(instance, p):\n"
            "    return instance.inspect(p, 100, 'flow', 0.0)\n"
        ),
        (
            "def scan(instance, batch):\n"
            "    return instance.inspect_batch(batch, 100)\n"
        ),
    ],
)
def test_api002_flags_positional_inspection_calls(snippet):
    assert "API002" in codes(lint_source(snippet, path=OUTSIDE_PATH))


@pytest.mark.parametrize(
    "snippet",
    [
        (
            "def scan(instance, p):\n"
            "    return instance.inspect(p, chain_id=100, flow_key='f')\n"
        ),
        (
            "def scan(instance, batch):\n"
            "    return instance.inspect_batch(batch, chain_id=100)\n"
        ),
        # Unrelated single-positional .inspect() on other objects is fine.
        "def peek(conn):\n    return conn.inspect(42)\n",
    ],
)
def test_api002_allows_keyword_inspection_calls(snippet):
    assert lint_source(snippet, path=OUTSIDE_PATH) == []


# --- KER001 -----------------------------------------------------------------

def test_ker001_flags_methods_outside_the_kernel_contract():
    snippet = (
        "class FancyKernel:\n"
        "    def __init__(self, automaton):\n"
        "        pass\n"
        "    def scan(self, data, active_bitmap, state, limit):\n"
        "        return None\n"
        "    def precompute(self):\n"
        "        return None\n"
        "    def __len__(self):\n"
        "        return 0\n"
    )
    findings = lint_source(snippet, path="repro/core/kernels.py")
    assert codes(findings) == ["KER001", "KER001"]
    messages = " ".join(f.message for f in findings)
    assert "precompute" in messages and "__len__" in messages


@pytest.mark.parametrize(
    "snippet",
    [
        # Private helpers are allowed.
        "class FancyKernel:\n"
        "    def scan(self, data, active_bitmap, state, limit):\n"
        "        return self._helper()\n"
        "    def _helper(self):\n"
        "        return None\n",
        # Not a kernel: no scan method.
        "class ResultKernel:\n"
        "    def combine(self):\n"
        "        return None\n",
        # Not a kernel: name does not end in Kernel.
        "class Scanner:\n"
        "    def scan(self, data, active_bitmap, state, limit):\n"
        "        return None\n"
        "    def reset(self):\n"
        "        return None\n",
    ],
)
def test_ker001_ignores_private_helpers_and_non_kernels(snippet):
    assert lint_source(snippet, path="repro/core/kernels.py") == []


# --- suppressions -----------------------------------------------------------

def test_blanket_noqa_suppresses_everything_on_the_line():
    snippet = "import time\nt = time.time()  # repro: noqa\n"
    assert lint_source(snippet, path=SIM_PATH) == []


def test_coded_noqa_suppresses_only_listed_codes():
    suppressed = "import time\nt = time.time()  # repro: noqa[DET001]\n"
    assert lint_source(suppressed, path=SIM_PATH) == []
    # A wrong-code noqa suppresses nothing — and is flagged for it.
    wrong_code = "import time\nt = time.time()  # repro: noqa[DET002]\n"
    assert sorted(codes(lint_source(wrong_code, path=SIM_PATH))) == [
        "DET001",
        "NOQ001",
    ]


def test_noqa_with_multiple_codes():
    snippet = (
        "import time, random\n"
        "t = time.time() + random.random()  # repro: noqa[DET001, DET002]\n"
    )
    assert lint_source(snippet, path=SIM_PATH) == []


def test_noqa_only_covers_its_own_line():
    snippet = (
        "import time\n"
        "a = time.time()  # repro: noqa\n"
        "b = time.time()\n"
    )
    findings = lint_source(snippet, path=SIM_PATH)
    assert [(f.code, f.line) for f in findings] == [("DET001", 3)]


# --- NOQ001: the suppression audit ------------------------------------------

def test_noq001_flags_unused_coded_suppression():
    findings = lint_source("x = 1  # repro: noqa[DET001]\n", path=SIM_PATH)
    assert codes(findings) == ["NOQ001"]
    assert findings[0].severity == "warning"
    assert "suppresses nothing" in findings[0].message


def test_noq001_flags_unused_blanket_suppression():
    findings = lint_source("x = 1  # repro: noqa\n", path=SIM_PATH)
    assert codes(findings) == ["NOQ001"]


def test_noq001_flags_unknown_codes():
    findings = lint_source("x = 1  # repro: noqa[BOGUS9]\n", path=SIM_PATH)
    assert codes(findings) == ["NOQ001"]
    assert "BOGUS9" in findings[0].message


def test_noq001_quiet_for_used_suppressions():
    used = "import time\nt = time.time()  # repro: noqa[DET001]\n"
    assert lint_source(used, path=SIM_PATH) == []
    blanket = "import time\nt = time.time()  # repro: noqa\n"
    assert lint_source(blanket, path=SIM_PATH) == []


def test_noq001_is_not_itself_suppressible():
    findings = lint_source("x = 1  # repro: noqa[NOQ001]\n", path=SIM_PATH)
    assert codes(findings) == ["NOQ001"]


def test_noq001_ignores_noqa_mentions_in_docstrings_and_prose():
    snippet = (
        '"""Docs.\n'
        "\n"
        "    flagged()  # repro: noqa[DET001]\n"
        '"""\n'
        "#: syntax note: ``# repro: noqa[DET001]`` suppresses a line\n"
        "x = 1\n"
    )
    assert lint_source(snippet, path=SIM_PATH) == []


def test_noq001_skipped_when_named_rules_did_not_run():
    from repro.analysis import LintEngine
    from repro.analysis.rules import RULE_REGISTRY as registry

    selected = [
        cls()
        for code, cls in registry.items()
        if code.startswith(("RES", "NOQ"))
    ]
    engine = LintEngine(selected)
    # DET001 did not run, so the comment cannot be judged...
    findings = engine.lint_source(
        "x = 1  # repro: noqa[DET001]\n", path=SIM_PATH
    )
    assert findings == []
    # ...but a suppression naming only selected codes still is.
    findings = engine.lint_source(
        "x = 1  # repro: noqa[RES001]\n", path=SIM_PATH
    )
    assert codes(findings) == ["NOQ001"]
    # Blanket suppressions are only auditable on full-catalog runs.
    findings = engine.lint_source("x = 1  # repro: noqa\n", path=SIM_PATH)
    assert findings == []


def test_warning_severity_renders_with_a_tag():
    findings = lint_source("x = 1  # repro: noqa[DET001]\n", path=SIM_PATH)
    assert findings[0].render() == (
        f"{SIM_PATH}:1:0: warning: NOQ001 '# repro: noqa[DET001]' "
        "suppresses nothing; delete it"
    )


# --- engine behaviour -------------------------------------------------------

def test_syntax_error_becomes_parse_finding():
    findings = lint_source("def broken(:\n", path=SIM_PATH)
    assert codes(findings) == ["PARSE001"]
    assert "parse" in findings[0].message


def test_findings_are_sorted_and_carry_positions():
    snippet = (
        "import time\n"
        "b = time.time()\n"
        "a = time.time()\n"
    )
    findings = lint_source(snippet, path=SIM_PATH)
    assert [f.line for f in findings] == [2, 3]
    assert all(f.path == SIM_PATH for f in findings)
    assert "repro/net/fake.py:2:" in findings[0].render()


def test_module_name_for_handles_real_and_fixture_paths():
    assert module_name_for("src/repro/net/switch.py") == "repro.net.switch"
    assert module_name_for("repro/net/fake.py") == "repro.net.fake"
    assert module_name_for("src/repro/core/__init__.py") == "repro.core"
    assert module_name_for("scripts/tool.py") == "tool"


def test_lint_paths_over_a_directory(tmp_path):
    package = tmp_path / "repro" / "net"
    package.mkdir(parents=True)
    (package / "bad.py").write_text("import time\nt = time.time()\n")
    (package / "good.py").write_text("x = 1\n")
    findings = lint_paths([tmp_path])
    assert codes(findings) == ["DET001"]


# --- reporters --------------------------------------------------------------

def test_render_text_summarizes_by_code():
    findings = lint_source(
        "import time, random\nt = time.time()\nx = random.random()\n",
        path=SIM_PATH,
    )
    text = render_text(findings)
    assert "2 finding(s) (DET001: 2)" in text


def test_render_text_reports_no_findings():
    assert render_text([]) == "no findings\n"


def test_render_json_schema():
    findings = lint_source(
        "import time\nt = time.time()\n", path=SIM_PATH
    )
    document = json.loads(render_json(findings))
    assert document["version"] == JSON_SCHEMA_VERSION
    assert document["counts"] == {"DET001": 1}
    assert len(document["findings"]) == 1
    entry = document["findings"][0]
    assert set(entry) == {"path", "line", "col", "code", "message", "severity"}
    assert entry["path"] == SIM_PATH
    assert entry["line"] == 2
    assert entry["severity"] == "error"


def test_render_json_empty_input():
    document = json.loads(render_json([]))
    assert document == {
        "version": JSON_SCHEMA_VERSION, "counts": {}, "findings": []
    }


# --- the codebase holds its own invariants ----------------------------------

def test_src_repro_is_lint_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro"])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"src/repro has lint findings:\n{rendered}"
