"""Unit tests for the synthetic workload generators."""

import pytest

from repro.core.aho_corasick import AhoCorasick
from repro.workloads.patterns import (
    MIN_PATTERN_LENGTH,
    generate_clamav_like,
    generate_snort_like,
    random_split,
    to_pattern_list,
    to_pattern_set,
)
from repro.workloads.traffic import Trace, TrafficGenerator, packetize


class TestPatternGenerators:
    def test_snort_like_properties(self):
        patterns = generate_snort_like(count=500, seed=1)
        assert len(patterns) == 500
        assert len(set(patterns)) == 500
        assert all(len(p) >= MIN_PATTERN_LENGTH for p in patterns)
        # ASCII protocol-ish content.
        assert all(all(32 <= b < 127 for b in p) for p in patterns[:50])

    def test_snort_like_deterministic(self):
        assert generate_snort_like(100, seed=5) == generate_snort_like(100, seed=5)
        assert generate_snort_like(100, seed=5) != generate_snort_like(100, seed=6)

    def test_clamav_like_longer_and_binary(self):
        snort = generate_snort_like(300, seed=1)
        clam = generate_clamav_like(300, seed=1)
        snort_mean = sum(map(len, snort)) / len(snort)
        clam_mean = sum(map(len, clam)) / len(clam)
        assert clam_mean > snort_mean
        # High-entropy binary: some bytes outside printable ASCII.
        assert any(any(b < 32 or b >= 127 for b in p) for p in clam[:20])

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_snort_like(0)

    def test_shared_prefixes_exist(self):
        """Snort-like corpora must exercise shared trie prefixes."""
        patterns = generate_snort_like(500, seed=1)
        ac = AhoCorasick(patterns)
        total_chars = sum(len(p) for p in patterns)
        # With no sharing, states ~= total characters + 1.
        assert ac.num_states < total_chars * 0.9


class TestRandomSplit:
    def test_split_partitions(self):
        patterns = generate_snort_like(100, seed=1)
        part_a, part_b = random_split(patterns, parts=2, seed=2)
        assert len(part_a) + len(part_b) == 100
        assert set(part_a) | set(part_b) == set(patterns)
        assert not set(part_a) & set(part_b)

    def test_split_deterministic(self):
        patterns = generate_snort_like(50, seed=1)
        assert random_split(patterns, seed=3) == random_split(patterns, seed=3)

    def test_shared_fraction(self):
        patterns = generate_snort_like(100, seed=1)
        part_a, part_b = random_split(
            patterns, parts=2, seed=2, shared_fraction=0.2
        )
        shared = set(part_a) & set(part_b)
        assert len(shared) == 20

    def test_three_way_split(self):
        patterns = generate_snort_like(90, seed=1)
        parts = random_split(patterns, parts=3, seed=1)
        assert len(parts) == 3
        assert sum(len(p) for p in parts) == 90

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_split([b"x"], parts=0)
        with pytest.raises(ValueError):
            random_split([b"x"], shared_fraction=1.5)


class TestPatternWrappers:
    def test_to_pattern_list(self):
        patterns = to_pattern_list([b"aaaa", b"bbbb"])
        assert [p.pattern_id for p in patterns] == [0, 1]

    def test_to_pattern_set(self):
        pattern_set = to_pattern_set("s", [b"aaaa"])
        assert pattern_set.name == "s" and len(pattern_set) == 1


class TestTrafficGenerator:
    def test_trace_sizes(self):
        generator = TrafficGenerator(seed=1)
        trace = generator.trace(50)
        assert len(trace) == 50
        assert all(64 <= len(p) <= 1460 for p in trace)
        assert trace.total_bytes == sum(len(p) for p in trace)

    def test_deterministic(self):
        a = TrafficGenerator(seed=1).trace(20).payloads
        b = TrafficGenerator(seed=1).trace(20).payloads
        assert a == b

    def test_match_rate_controls_matches(self, snort_like_small):
        generator = TrafficGenerator(seed=2)
        ac = AhoCorasick(snort_like_small)
        no_matches = generator.trace(60, patterns=snort_like_small, match_rate=0.0)
        all_matches = TrafficGenerator(seed=2).trace(
            60, patterns=snort_like_small, match_rate=1.0
        )
        clean_hits = sum(1 for p in no_matches if ac.count_matches(p) > 0)
        dirty_hits = sum(1 for p in all_matches if ac.count_matches(p) > 0)
        assert dirty_hits > clean_hits
        assert dirty_hits >= 55  # injection virtually guarantees a match

    def test_paper_match_profile(self, snort_like_small):
        """>90 % of packets matchless at the default match rate."""
        generator = TrafficGenerator(seed=3)
        trace = generator.trace(200, patterns=snort_like_small)
        ac = AhoCorasick(snort_like_small)
        matchless = sum(1 for p in trace if ac.count_matches(p) == 0)
        assert matchless / len(trace) > 0.85

    def test_flows(self):
        generator = TrafficGenerator(seed=1)
        trace = generator.trace(30, num_flows=3)
        assert set(trace.flow_ids) <= {0, 1, 2}
        flows = trace.by_flow()
        assert sum(len(v) for v in flows.values()) == 30

    def test_by_flow_requires_flow_ids(self):
        with pytest.raises(ValueError):
            Trace(payloads=[b"x"]).by_flow()

    def test_campus_style(self):
        generator = TrafficGenerator(seed=1, style="campus")
        trace = generator.trace(10)
        assert len(trace) == 10

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            TrafficGenerator(style="carrier")

    def test_invalid_match_rate(self):
        with pytest.raises(ValueError):
            TrafficGenerator(seed=1).trace(5, match_rate=2.0)

    def test_straddling_flow(self, snort_like_small):
        generator = TrafficGenerator(seed=4)
        packets = generator.flow(
            20, patterns=snort_like_small, match_rate=1.0, mtu=100,
            straddle_boundaries=True,
        )
        assert all(len(p) <= 100 for p in packets)
        # Reassembled stream contains matches even if single packets may not.
        ac = AhoCorasick(snort_like_small)
        whole = b"".join(packets)
        assert ac.count_matches(whole) > 0


class TestPacketize:
    def test_exact_division(self):
        parts = packetize(b"x" * 100, mtu=25)
        assert [len(p) for p in parts] == [25, 25, 25, 25]

    def test_remainder(self):
        parts = packetize(b"x" * 10, mtu=4)
        assert [len(p) for p in parts] == [4, 4, 2]

    def test_reassembly_identity(self):
        stream = bytes(range(256)) * 3
        assert b"".join(packetize(stream, mtu=7)) == stream

    def test_invalid_mtu(self):
        with pytest.raises(ValueError):
            packetize(b"x", mtu=0)


class TestControlPlaneTrafficClaim:
    """Paper Section 4.1: pattern sets themselves are compact (kilobytes to
    a few megabytes; no more than ~2 MB compressed), so shipping them to
    the controller is cheap — unlike shipping DFAs."""

    def test_pattern_sets_are_compact_vs_their_dfa(self):
        import zlib

        from repro.core.aho_corasick import AhoCorasick

        patterns = generate_snort_like(count=2000, seed=1)
        raw_bytes = sum(len(p) for p in patterns)
        compressed = len(zlib.compress(b"\n".join(patterns)))
        dfa_bytes = AhoCorasick(patterns, layout="full").stats.memory_bytes
        assert compressed < raw_bytes
        assert raw_bytes < 1 << 20  # the set itself: well under a megabyte
        # The DFA is orders of magnitude bigger than the transmitted set.
        assert dfa_bytes > raw_bytes * 100

    def test_clamav_like_set_within_paper_bounds(self):
        import zlib

        patterns = generate_clamav_like(count=4000, seed=2)
        compressed = len(zlib.compress(b"\n".join(patterns)))
        # Extrapolated to the full 31,827 signatures this stays in the
        # single-megabyte range the paper cites (<= 2 MB compressed).
        assert compressed * (31827 / 4000) < 2 * (1 << 20)
