"""Property-based differential test: all kernels are byte-identical.

Random pattern sets over a small alphabet (to force overlaps, shared
prefixes, and suffix matches) are scanned over random payloads — from the
root, resumed mid-flow, and under byte limits — and every kernel must
produce exactly the reference kernel's raw matches, end state, and byte
count.  A second property checks the same at the instance level, where raw
matches become middlebox reports.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.combined import CombinedAutomaton
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.kernels import KERNEL_NAMES
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.net.reassembly import OVERLAP_POLICIES, StreamReassembler

# A tiny alphabet plus one binary byte: overlap-heavy, and exercises the
# regex kernel's anchor classes on both printable and non-printable bytes.
ALPHABET = list(b"ab\x00c")

pattern_bytes = st.builds(
    bytes, st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=6)
)
pattern_lists = st.lists(pattern_bytes, min_size=1, max_size=8)
payloads = st.builds(
    bytes, st.lists(st.sampled_from(ALPHABET), min_size=0, max_size=96)
)


def build_automaton(patterns, second_set, layout):
    sets = {1: [Pattern(i, p) for i, p in enumerate(patterns)]}
    if second_set:
        sets[2] = [Pattern(i, p) for i, p in enumerate(second_set)]
    return CombinedAutomaton(sets, layout=layout)


@settings(max_examples=120, deadline=None)
@given(
    patterns=pattern_lists,
    second_set=st.one_of(st.just([]), pattern_lists),
    payload=payloads,
    layout=st.sampled_from(("sparse", "full")),
    bitmap_choice=st.sampled_from(("all", "none", "first", "zero")),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_kernels_scan_identically(
    patterns, second_set, payload, layout, bitmap_choice, limit, cut_fraction
):
    automaton = build_automaton(patterns, second_set, layout)
    bitmap = {
        "all": None,
        "none": automaton.all_middleboxes_bitmap,
        "first": automaton.bitmask_of([1]),
        "zero": 0,
    }[bitmap_choice]

    # A mid-flow resume state, derived with the reference kernel.
    cut = int(len(payload) * cut_fraction)
    automaton.select_kernel("reference")
    resume_state = automaton.scan(payload[:cut]).end_state

    expected_root = None
    expected_resumed = None
    for name in KERNEL_NAMES:
        automaton.select_kernel(name)
        root_scan = automaton.scan(payload, bitmap, None, limit)
        resumed_scan = automaton.scan(payload[cut:], bitmap, resume_state, limit)
        root = (root_scan.raw_matches, root_scan.end_state, root_scan.bytes_scanned)
        resumed = (
            resumed_scan.raw_matches,
            resumed_scan.end_state,
            resumed_scan.bytes_scanned,
        )
        if name == "reference":
            expected_root, expected_resumed = root, resumed
        else:
            assert root == expected_root, name
            assert resumed == expected_resumed, name


@settings(max_examples=40, deadline=None)
@given(
    patterns=pattern_lists,
    chunks=st.lists(payloads, min_size=1, max_size=4),
    layout=st.sampled_from(("sparse", "full")),
    stateful=st.booleans(),
)
def test_instances_report_identically(patterns, chunks, layout, stateful):
    instances = {}
    for name in KERNEL_NAMES:
        config = InstanceConfig(
            pattern_sets={1: [Pattern(i, p) for i, p in enumerate(patterns)]},
            profiles={1: MiddleboxProfile(1, name="ids", stateful=stateful)},
            chain_map={100: (1,)},
            layout=layout,
            kernel=name,
        )
        instances[name] = DPIServiceInstance(config)
    for chunk in chunks:
        outputs = {
            name: instance.inspect(chunk, chain_id=100, flow_key="flow")
            for name, instance in instances.items()
        }
        reference = outputs["reference"]
        for name in ("flat", "regex"):
            assert outputs[name].matches == reference.matches, name
            assert outputs[name].report.encode() == reference.report.encode()
            assert outputs[name].bytes_scanned == reference.bytes_scanned


@settings(max_examples=40, deadline=None)
@given(
    patterns=pattern_lists,
    stream=st.builds(
        bytes, st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=80)
    ),
    cut_points=st.lists(
        st.integers(min_value=1, max_value=79), max_size=5
    ),
    order_seed=st.integers(min_value=0, max_value=2**16),
    policy=st.sampled_from(OVERLAP_POLICIES),
    duplicate=st.booleans(),
    conflict=st.booleans(),
)
def test_reassembled_ambiguous_streams_scan_identically(
    patterns, stream, cut_points, order_seed, policy, duplicate, conflict
):
    """Reassembly-aware equivalence: segment a stream adversarially
    (reordered, duplicated, conflictingly-overlapped), reassemble under a
    policy, and every kernel must agree on every released chunk — with
    per-flow DFA state carried across chunk boundaries."""
    cuts = sorted({cut for cut in cut_points if cut < len(stream)})
    bounds = [0, *cuts, len(stream)]
    segments = [
        (bounds[i], stream[bounds[i] : bounds[i + 1]])
        for i in range(len(bounds) - 1)
    ]
    rng = random.Random(order_seed)
    if duplicate:
        segments.append(rng.choice(segments))
    if conflict:
        seq, data = rng.choice(segments)
        segments.append((seq, bytes(byte ^ 0x01 for byte in data)))
    rng.shuffle(segments)

    instances = {}
    for name in KERNEL_NAMES:
        config = InstanceConfig(
            pattern_sets={1: [Pattern(i, p) for i, p in enumerate(patterns)]},
            profiles={1: MiddleboxProfile(1, name="ids", stateful=True)},
            chain_map={100: (1,)},
            kernel=name,
        )
        instances[name] = DPIServiceInstance(config)

    reassembler = StreamReassembler(policy=policy)
    released_total = 0
    for seq, data in segments:
        released = reassembler.add_segment(seq, data)
        released_total += len(released)
        if not released:
            continue
        outputs = {
            name: instance.inspect(released, chain_id=100, flow_key="flow")
            for name, instance in instances.items()
        }
        reference = outputs["reference"]
        for name in ("flat", "regex"):
            assert outputs[name].matches == reference.matches, name
            assert outputs[name].bytes_scanned == reference.bytes_scanned

    # Policy choice resolves WHICH bytes win an ambiguous overlap, never
    # HOW MANY bytes the stream covers: the other policy must release
    # exactly the same amount from the same segment plan.
    other = StreamReassembler(
        policy="last" if policy == "first" else "first"
    )
    other_total = sum(
        len(other.add_segment(seq, data)) for seq, data in segments
    )
    assert other_total == released_total
