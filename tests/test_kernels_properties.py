"""Property-based differential test: all kernels are byte-identical.

Random pattern sets over a small alphabet (to force overlaps, shared
prefixes, and suffix matches) are scanned over random payloads — from the
root, resumed mid-flow, and under byte limits — and every kernel must
produce exactly the reference kernel's raw matches, end state, and byte
count.  A second property checks the same at the instance level, where raw
matches become middlebox reports.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.combined import CombinedAutomaton
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.kernels import KERNEL_NAMES
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile

# A tiny alphabet plus one binary byte: overlap-heavy, and exercises the
# regex kernel's anchor classes on both printable and non-printable bytes.
ALPHABET = list(b"ab\x00c")

pattern_bytes = st.builds(
    bytes, st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=6)
)
pattern_lists = st.lists(pattern_bytes, min_size=1, max_size=8)
payloads = st.builds(
    bytes, st.lists(st.sampled_from(ALPHABET), min_size=0, max_size=96)
)


def build_automaton(patterns, second_set, layout):
    sets = {1: [Pattern(i, p) for i, p in enumerate(patterns)]}
    if second_set:
        sets[2] = [Pattern(i, p) for i, p in enumerate(second_set)]
    return CombinedAutomaton(sets, layout=layout)


@settings(max_examples=120, deadline=None)
@given(
    patterns=pattern_lists,
    second_set=st.one_of(st.just([]), pattern_lists),
    payload=payloads,
    layout=st.sampled_from(("sparse", "full")),
    bitmap_choice=st.sampled_from(("all", "none", "first", "zero")),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    cut_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_kernels_scan_identically(
    patterns, second_set, payload, layout, bitmap_choice, limit, cut_fraction
):
    automaton = build_automaton(patterns, second_set, layout)
    bitmap = {
        "all": None,
        "none": automaton.all_middleboxes_bitmap,
        "first": automaton.bitmask_of([1]),
        "zero": 0,
    }[bitmap_choice]

    # A mid-flow resume state, derived with the reference kernel.
    cut = int(len(payload) * cut_fraction)
    automaton.select_kernel("reference")
    resume_state = automaton.scan(payload[:cut]).end_state

    expected_root = None
    expected_resumed = None
    for name in KERNEL_NAMES:
        automaton.select_kernel(name)
        root_scan = automaton.scan(payload, bitmap, None, limit)
        resumed_scan = automaton.scan(payload[cut:], bitmap, resume_state, limit)
        root = (root_scan.raw_matches, root_scan.end_state, root_scan.bytes_scanned)
        resumed = (
            resumed_scan.raw_matches,
            resumed_scan.end_state,
            resumed_scan.bytes_scanned,
        )
        if name == "reference":
            expected_root, expected_resumed = root, resumed
        else:
            assert root == expected_root, name
            assert resumed == expected_resumed, name


@settings(max_examples=40, deadline=None)
@given(
    patterns=pattern_lists,
    chunks=st.lists(payloads, min_size=1, max_size=4),
    layout=st.sampled_from(("sparse", "full")),
    stateful=st.booleans(),
)
def test_instances_report_identically(patterns, chunks, layout, stateful):
    instances = {}
    for name in KERNEL_NAMES:
        config = InstanceConfig(
            pattern_sets={1: [Pattern(i, p) for i, p in enumerate(patterns)]},
            profiles={1: MiddleboxProfile(1, name="ids", stateful=stateful)},
            chain_map={100: (1,)},
            layout=layout,
            kernel=name,
        )
        instances[name] = DPIServiceInstance(config)
    for chunk in chunks:
        outputs = {
            name: instance.inspect(chunk, 100, flow_key="flow")
            for name, instance in instances.items()
        }
        reference = outputs["reference"]
        for name in ("flat", "regex"):
            assert outputs[name].matches == reference.matches, name
            assert outputs[name].report.encode() == reference.report.encode()
            assert outputs[name].bytes_scanned == reference.bytes_scanned
