"""Unit tests for the three result-passing modes (Section 4.2)."""

from repro.core.reports import MatchReport
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.nsh import (
    MAX_TAG_RECORDS,
    attach_nsh_results,
    build_result_packet,
    decode_tag_results,
    encode_tag_results,
    extract_nsh_results,
    strip_nsh,
)
from repro.net.packet import VlanTag, make_tcp_packet


def make_packet(payload=b"data"):
    packet = make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        5555,
        80,
        payload=payload,
    )
    packet.push_vlan(VlanTag(vid=100))
    return packet


def sample_report(matches=None):
    return MatchReport.from_matches(matches or {1: [(0, 4)], 2: [(3, 9)]})


class TestNSHMode:
    def test_attach_and_extract(self):
        packet = make_packet()
        report = sample_report()
        attach_nsh_results(packet, report, service_path=100)
        restored = extract_nsh_results(packet)
        assert restored.matches_for(1) == [(0, 4)]
        assert restored.matches_for(2) == [(3, 9)]
        assert packet.nsh.service_path == 100

    def test_extract_without_nsh(self):
        assert extract_nsh_results(make_packet()) is None

    def test_strip_restores_original(self):
        packet = make_packet()
        attach_nsh_results(packet, sample_report(), service_path=1)
        length_with = packet.wire_length
        strip_nsh(packet)
        assert packet.nsh is None
        assert packet.wire_length < length_with


class TestTagMode:
    def test_round_trip_small_report(self):
        packet = make_packet()
        encoded = encode_tag_results(packet, sample_report())
        assert encoded == 2
        assert decode_tag_results(packet) == [(1, 0), (2, 3)]
        # Result labels removed; the chain tag remains.
        assert packet.outer_vlan.vid == 100
        assert packet.mpls_stack == []

    def test_overflow_drops_records(self):
        packet = make_packet()
        big = MatchReport.from_matches(
            {1: [(i, 10 * (i + 1)) for i in range(10)]}
        )
        encoded = encode_tag_results(packet, big)
        assert encoded == MAX_TAG_RECORDS

    def test_decode_on_clean_packet(self):
        assert decode_tag_results(make_packet()) == []


class TestResultPacketMode:
    def test_result_packet_structure(self):
        packet = make_packet(b"original-payload")
        packet.mark_matched()
        report = sample_report()
        result = build_result_packet(packet, report)
        assert result.is_result_packet
        assert result.describes_packet_id == packet.packet_id
        assert result.packet_id != packet.packet_id
        assert not result.is_marked_matched
        decoded = MatchReport.decode(result.payload)
        assert decoded.matches_for(1) == [(0, 4)]

    def test_result_packet_follows_same_chain(self):
        packet = make_packet()
        result = build_result_packet(packet, sample_report())
        assert result.outer_vlan.vid == packet.outer_vlan.vid
        assert result.ip.dst == packet.ip.dst

    def test_result_packet_tag_stack_independent(self):
        packet = make_packet()
        result = build_result_packet(packet, sample_report())
        result.pop_vlan()
        assert packet.outer_vlan is not None
