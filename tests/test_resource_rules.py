"""The dataflow rule family: RES001/RES002, CON001/CON002, DET003.

Includes the acceptance regression for the analyzer PR: the exact
exception-window leak patterns that used to live in
``repro.core.zerocopy`` (segment acquired, then a queue/process call
that can raise before the finalizer guard exists) are reintroduced here
as source fixtures and must be flagged — and their fixed forms must be
clean.  The call-graph unit tests cover resolution and transitive fact
propagation directly.
"""

import ast
import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import LintContext, lint_source

SIM_PATH = "repro/core/fake.py"
OUTSIDE_PATH = "repro/workloads/fake.py"


def codes(findings):
    return [finding.code for finding in findings]


def lint(source, path=SIM_PATH):
    return lint_source(textwrap.dedent(source), path=path)


# --- RES001 -----------------------------------------------------------------

def test_res001_flags_leak_on_exit_path():
    findings = lint(
        """
        from multiprocessing import shared_memory

        def provision(nbytes):
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            return segment.name
        """
    )
    assert codes(findings) == ["RES001"]
    assert "'segment'" in findings[0].message
    assert "close/unlink" in findings[0].message


def test_res001_flags_branch_that_skips_release():
    findings = lint(
        """
        import multiprocessing

        def run(jobs, risky):
            pool = multiprocessing.Pool(2)
            if risky:
                return 0
            pool.close()
            pool.join()
            return len(jobs)
        """
    )
    assert "RES001" in codes(findings)


def test_res001_clean_when_released_on_every_path():
    findings = lint(
        """
        from multiprocessing import shared_memory

        def provision(nbytes):
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            try:
                fill(segment)
                return segment.name
            finally:
                segment.close()
                segment.unlink()

        def fill(segment):
            segment.buf[:1] = b"x"
        """
    )
    assert findings == []


def test_res001_clean_for_with_managed_and_escaping_resources():
    findings = lint(
        """
        import multiprocessing

        def managed(items):
            with multiprocessing.Pool(2) as pool:
                return pool.map(len, items)

        def handed_off(sink):
            queue = multiprocessing.Queue()
            sink.adopt(queue)

        def factory():
            return multiprocessing.Queue()
        """
    )
    assert findings == []


def test_res001_window_catches_the_zerocopy_bug_pattern():
    # The pre-fix _ensure_started shape: segment acquired, then queue
    # and process calls that can raise BEFORE any teardown guard exists.
    findings = lint(
        """
        import multiprocessing
        from multiprocessing import shared_memory
        import weakref

        def _create_segment(nbytes):
            return shared_memory.SharedMemory(create=True, size=nbytes)

        class Backend:
            def ensure_started(self, specs, owner, teardown):
                state = make_state()
                state.segment = _create_segment(1 << 20)
                state.result_queue = multiprocessing.Queue()
                self.finalizer = weakref.finalize(owner, teardown, state)
                return state
        """
    )
    assert codes(findings) == ["RES001"]
    assert "'state.segment'" in findings[0].message
    assert "if the call raises" in findings[0].message


def test_res001_quiet_on_the_fixed_zerocopy_shape():
    # The post-fix shape: the raise window is guarded, failure paths
    # tear down, success registers the finalizer.
    findings = lint(
        """
        import multiprocessing
        from multiprocessing import shared_memory
        import weakref

        def _create_segment(nbytes):
            return shared_memory.SharedMemory(create=True, size=nbytes)

        class Backend:
            def ensure_started(self, specs, owner, teardown):
                state = make_state()
                state.segment = _create_segment(1 << 20)
                try:
                    state.result_queue = multiprocessing.Queue()
                except BaseException:
                    teardown(state)
                    raise
                self.finalizer = weakref.finalize(owner, teardown, state)
                return state
        """
    )
    assert findings == []


def test_res001_tracks_factory_acquisitions_transitively():
    findings = lint(
        """
        from multiprocessing import shared_memory

        def _create(nbytes):
            return shared_memory.SharedMemory(create=True, size=nbytes)

        def _create_big():
            return _create(1 << 24)

        def leaky():
            arena = _create_big()
            return arena.name
        """
    )
    assert codes(findings) == ["RES001"]
    assert "'arena'" in findings[0].message


def test_res001_applies_outside_sim_scope_too():
    findings = lint(
        """
        import multiprocessing

        def leak():
            q = multiprocessing.Queue()
            return q.qsize()
        """,
        path=OUTSIDE_PATH,
    )
    assert "RES001" in codes(findings)


# --- RES002 -----------------------------------------------------------------

def test_res002_flags_self_stored_resource_with_no_teardown():
    findings = lint(
        """
        import multiprocessing

        class Runner:
            def boot(self):
                self.pool = multiprocessing.Pool(2)

            def submit(self, work):
                return self.pool.apply(work)
        """
    )
    assert codes(findings) == ["RES002"]
    assert "self.pool" in findings[0].message


def test_res002_clean_with_alias_aware_release():
    # The workers.py shutdown idiom: alias the attribute, release the
    # alias.
    findings = lint(
        """
        import multiprocessing

        class Runner:
            def boot(self):
                self.pool = multiprocessing.Pool(2)

            def shutdown(self):
                pool = self.pool
                if pool is not None:
                    pool.close()
                    pool.join()
        """
    )
    assert findings == []


def test_res002_clean_when_attr_is_handed_to_a_teardown_helper():
    findings = lint(
        """
        import multiprocessing

        class Runner:
            def boot(self):
                self.queue = multiprocessing.Queue()

            def stop(self):
                drain_and_close(self.queue)
        """
    )
    assert findings == []


# --- CON001 -----------------------------------------------------------------

def test_con001_flags_thread_started_before_fork():
    findings = lint(
        """
        import threading
        import multiprocessing

        def boot(fn):
            pump = threading.Thread(target=fn)
            pump.start()
            worker = multiprocessing.Process(target=fn)
            worker.start()
            worker.join()
            pump.join()
        """
    )
    assert "CON001" in codes(findings)
    con = next(f for f in findings if f.code == "CON001")
    assert "pump" in con.message


def test_con001_flags_fed_queue_before_fork():
    findings = lint(
        """
        import multiprocessing

        def boot(fn, items):
            tasks = multiprocessing.Queue()
            for item in items:
                tasks.put(item)
            worker = multiprocessing.Process(target=fn, args=(tasks,))
            worker.start()
            worker.join()
        """
    )
    assert "CON001" in codes(findings)


def test_con001_clean_for_create_then_fork_then_feed():
    # The normal inheritance pattern: queues created before the fork,
    # fed only after the workers are up.
    findings = lint(
        """
        import multiprocessing

        def boot(fn, items):
            tasks = multiprocessing.Queue()
            worker = multiprocessing.Process(target=fn, args=(tasks,))
            worker.start()
            for item in items:
                tasks.put(item)
            worker.join()
        """
    )
    assert "CON001" not in codes(findings)


# --- CON002 -----------------------------------------------------------------

def test_con002_flags_put_after_close():
    findings = lint(
        """
        import multiprocessing

        def drain(items):
            queue = multiprocessing.Queue()
            queue.close()
            queue.put(None)
            queue.join_thread()
        """
    )
    con = [f for f in findings if f.code == "CON002"]
    assert len(con) == 1
    assert "put() on queue 'queue' after close()" in con[0].message


def test_con002_flags_double_close_but_not_loop_carried_close():
    double = lint(
        """
        import multiprocessing

        def stop(queue=None):
            queue = multiprocessing.Queue()
            queue.close()
            queue.close()
        """
    )
    assert any(
        f.code == "CON002" and "closed again" in f.message for f in double
    )
    looped = lint(
        """
        import multiprocessing

        def cycle(n):
            for _ in range(n):
                queue = multiprocessing.Queue()
                queue.put(1)
                queue.close()
        """
    )
    assert "CON002" not in codes(looped)


def test_con002_clean_for_put_then_close():
    findings = lint(
        """
        import multiprocessing

        def send(items):
            queue = multiprocessing.Queue()
            for item in items:
                queue.put(item)
            queue.close()
            queue.join_thread()
        """
    )
    assert "CON002" not in codes(findings)


# --- DET003 -----------------------------------------------------------------

def test_det003_flags_transitive_wall_clock_reach():
    findings = lint(
        """
        import time

        def stamp():
            return time.time()

        def indirection():
            return stamp()

        def schedule(event):
            event.at = indirection()
        """,
        path="repro/net/fake.py",
    )
    det3 = [f for f in findings if f.code == "DET003"]
    # Both sim-scoped call sites into the tainted chain are flagged.
    assert len(det3) == 2
    assert all("time.time" in f.message for f in det3)
    # The direct call inside stamp() is DET001's, not DET003's.
    assert [f.code for f in findings if f.line == 5] == ["DET001"]


def test_det003_quiet_outside_sim_scope_and_for_clean_helpers():
    outside = lint(
        """
        import time

        def stamp():
            return time.time()

        def schedule(event):
            event.at = stamp()
        """,
        path=OUTSIDE_PATH,
    )
    assert codes(outside) == []
    clean = lint(
        """
        def helper(clock):
            return clock.now()

        def schedule(event, clock):
            event.at = helper(clock)
        """,
        path="repro/net/fake.py",
    )
    assert codes(clean) == []


# --- the call graph ----------------------------------------------------------

def graph_of(**modules):
    contexts = [
        LintContext(
            path=f"{module.replace('.', '/')}.py",
            source=textwrap.dedent(source),
            tree=ast.parse(textwrap.dedent(source)),
        )
        for module, source in modules.items()
    ]
    return CallGraph.build(contexts)


def test_callgraph_resolves_same_module_and_self_calls():
    graph = graph_of(
        **{
            "repro.net.fake": """
            def helper():
                pass

            class Box:
                def a(self):
                    return self.b()

                def b(self):
                    return helper()
            """
        }
    )
    assert set(graph.functions) == {
        "repro.net.fake.helper",
        "repro.net.fake.Box.a",
        "repro.net.fake.Box.b",
    }
    a_calls = graph.functions["repro.net.fake.Box.a"].calls
    assert a_calls[0].target == "repro.net.fake.Box.b"
    b_calls = graph.functions["repro.net.fake.Box.b"].calls
    assert b_calls[0].target == "repro.net.fake.helper"


def test_callgraph_resolves_imports_across_modules():
    graph = graph_of(
        **{
            "repro.net.clockwork": """
            import time

            def now():
                return time.time()
            """,
            "repro.net.user": """
            from repro.net.clockwork import now
            import repro.net.clockwork as cw

            def a():
                return now()

            def b():
                return cw.now()
            """,
        }
    )
    for fn in ("a", "b"):
        calls = graph.functions[f"repro.net.user.{fn}"].calls
        assert calls[0].target == "repro.net.clockwork.now"
    reaches = graph.transitive_reach(lambda name: name == "time.time")
    assert set(reaches) == {
        "repro.net.clockwork.now",
        "repro.net.user.a",
        "repro.net.user.b",
    }
    assert reaches["repro.net.clockwork.now"].via is None
    assert reaches["repro.net.user.a"].via == "repro.net.clockwork.now"


def test_callgraph_excludes_nested_function_bodies_from_parents():
    graph = graph_of(
        **{
            "repro.net.fake": """
            def outer():
                def inner():
                    return target()
                return inner

            def target():
                pass
            """
        }
    )
    outer_targets = [
        site.target for site in graph.functions["repro.net.fake.outer"].calls
    ]
    assert "repro.net.fake.target" not in outer_targets
    inner_targets = [
        site.target
        for site in graph.functions["repro.net.fake.outer.inner"].calls
    ]
    assert inner_targets == ["repro.net.fake.target"]


def test_callgraph_returning_functions_propagates_factories():
    graph = graph_of(
        **{
            "repro.net.fake": """
            import multiprocessing

            def make():
                return multiprocessing.Queue()

            def make_indirect():
                return make()

            def not_a_factory():
                return 7
            """
        }
    )
    factories = graph.returning_functions(
        lambda expression, info: isinstance(expression, ast.Call)
        and getattr(expression.func, "attr", None) == "Queue"
    )
    assert factories == {
        "repro.net.fake.make",
        "repro.net.fake.make_indirect",
    }
