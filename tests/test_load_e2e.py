"""End-to-end load-harness tests: determinism, elasticity, chaos.

These are the acceptance tests from the load-harness milestone:

* the same seed + profile yields an identical telemetry digest across two
  full runs — including with ``--autoscale`` on, where scaling decisions
  feed back into placement;
* an autoscaled run sustains strictly more flows within the latency SLO
  than the static single-instance baseline (the capacity-curve headline);
* a fault plan that crashes an instance mid-ramp triggers failover (a
  ``heal`` action) without the controller flapping (no ``down`` actions
  in the post-fault cooldown window).
"""

import json

import pytest

from repro.analysis.validators import ValidationError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.load.driver import run_load_scenario
from repro.load.profiles import LoadSpec, RampSchedule


def small_spec(**overrides):
    base = LoadSpec(
        profile_mix="mixed",
        flows=900,
        epochs=12,
        epoch_seconds=0.1,
        seed=11,
        slo_ms=50.0,
        rate_mbps=20.0,
        max_packets_per_epoch=1500,
        ramp=RampSchedule(kind="linear"),
    )
    return base.with_overrides(**overrides)


class TestDigestDeterminism:
    def test_static_run_digest_stable(self):
        first = run_load_scenario(small_spec())
        second = run_load_scenario(small_spec())
        assert first.digest == second.digest
        assert [r.to_dict() for r in first.epochs] == [
            r.to_dict() for r in second.epochs
        ]

    def test_autoscaled_run_digest_stable(self):
        first = run_load_scenario(small_spec(), autoscale=True)
        second = run_load_scenario(small_spec(), autoscale=True)
        assert first.digest == second.digest
        assert [
            (e.epoch, e.action, e.instance) for e in first.autoscaler.events
        ] == [
            (e.epoch, e.action, e.instance) for e in second.autoscaler.events
        ]

    def test_different_seed_changes_digest(self):
        first = run_load_scenario(small_spec())
        second = run_load_scenario(small_spec(seed=12))
        assert first.digest != second.digest

    def test_autoscale_changes_digest_when_it_acts(self):
        static = run_load_scenario(small_spec())
        scaled = run_load_scenario(small_spec(), autoscale=True)
        assert scaled.autoscaler.events, "expected scaling under this load"
        assert static.digest != scaled.digest

    def test_summary_is_json_serializable(self):
        result = run_load_scenario(small_spec(), autoscale=True)
        document = json.loads(json.dumps(result.summary()))
        assert document["digest"] == result.digest
        assert document["autoscale"] is True
        assert len(document["epochs"]) == result.spec.epochs


class TestElasticity:
    def test_autoscaling_relieves_slo_pressure(self):
        spec = small_spec(flows=1500, epochs=14)
        static = run_load_scenario(spec)
        scaled = run_load_scenario(spec, autoscale=True, max_instances=6)
        assert any(
            event.action == "up" for event in scaled.autoscaler.events
        )
        assert scaled.total_slo_violations < static.total_slo_violations

    def test_autoscaled_sustains_more_than_static(self):
        # The capacity-curve acceptance criterion, via the benchmark's own
        # steady-state (final-third epochs within SLO) definition.
        from repro.bench.e2e import run_e2e_benchmark, validate_e2e_schema

        results = run_e2e_benchmark(flow_steps=(150, 500), epochs=8)
        assert validate_e2e_schema(results) == []
        headline = results["headline"]
        assert (
            headline["autoscaled_max_flows_within_slo"]
            > headline["static_max_flows_within_slo"]
        )
        assert headline["autoscaled_sustains_more"] is True

    def test_matches_are_genuine_scan_output(self):
        # The queueing model is synthetic; the pattern matches are not.
        result = run_load_scenario(small_spec(profile_mix="flood"))
        assert result.total_matches > 0

    def test_validation_gate(self):
        with pytest.raises(ValidationError, match="LOAD002"):
            run_load_scenario(small_spec(flows=0))
        # Opting out skips the gate but a zero-flow run is then refused
        # upstream by the generator's own arithmetic — keep flows valid.
        result = run_load_scenario(small_spec(flows=10), validate=False)
        assert result.total_packets > 0


class TestChaosDuringRamp:
    def fault_plan(self, crash_at, restart_at=None, target="dpi-1"):
        specs = [
            FaultSpec(at=crash_at, kind=FaultKind.INSTANCE_CRASH, target=target)
        ]
        if restart_at is not None:
            specs.append(
                FaultSpec(
                    at=restart_at,
                    kind=FaultKind.INSTANCE_RESTART,
                    target=target,
                )
            )
        return FaultPlan.of(specs, seed=3)

    def test_failover_without_flapping(self):
        # Two seed instances = healing floor of two; killing one mid-ramp
        # must trigger replacement regardless of policy cooldown state.
        spec = small_spec(flows=1200, epochs=14, initial_instances=2)
        plan = self.fault_plan(crash_at=0.55)
        result = run_load_scenario(
            spec, autoscale=True, max_instances=6, plan=plan
        )
        events = result.autoscaler.events
        heals = [event for event in events if event.action == "heal"]
        assert heals, f"expected a heal event, got {events}"
        heal_epoch = heals[0].epoch
        assert heal_epoch >= 5
        # No-flap criterion: nothing gets torn down in the cooldown window
        # right after the failover.
        flaps = [
            event
            for event in events
            if event.action == "down"
            and heal_epoch <= event.epoch <= heal_epoch + 4
        ]
        assert flaps == []
        # The run keeps serving traffic after the crash.
        post_fault = [r for r in result.epochs if r.epoch > heal_epoch]
        assert all(r.alive_instances >= 1 for r in post_fault)
        assert sum(r.offered_packets for r in post_fault) > 0

    def test_chaos_run_is_deterministic(self):
        spec = small_spec(flows=1200, epochs=14)
        first = run_load_scenario(
            spec, autoscale=True, plan=self.fault_plan(0.55, 0.95)
        )
        second = run_load_scenario(
            spec, autoscale=True, plan=self.fault_plan(0.55, 0.95)
        )
        assert first.digest == second.digest

    def test_requeue_counter_accounts_dead_backlog(self):
        # Crash late in the ramp, once the victim has accumulated backlog.
        # A deliberately slow service rate guarantees standing backlog.
        spec = small_spec(
            flows=1500, epochs=12, initial_instances=2, rate_mbps=5.0
        )
        plan = self.fault_plan(crash_at=0.95, target="dpi-2")
        result = run_load_scenario(spec, plan=plan)
        registry = result.hub.registry
        assert registry.value("load_requeued_bytes_total") > 0

    def test_restart_rejoins_the_pool(self):
        spec = small_spec(flows=900, epochs=14, initial_instances=2)
        plan = self.fault_plan(crash_at=0.45, restart_at=0.85, target="dpi-2")
        result = run_load_scenario(spec, plan=plan)
        dipped = min(r.alive_instances for r in result.epochs)
        assert dipped == 1
        assert result.epochs[-1].alive_instances == 2


class TestPlacementHonorsIsolationPins:
    """Regression: a dedicated instance provisioned by placement-time
    isolation must serve its pinned flow in the SAME epoch, not the next.

    A zero heavy-share threshold forces an isolate decision on the very
    first epoch; with only one epoch in the run, any deferred placement
    would leave the dedicated instance without a single packet.
    """

    def test_dedicated_instance_serves_pinned_flow_same_epoch(self):
        from repro.autoscale.policies import IsolationPolicy

        result = run_load_scenario(
            small_spec(epochs=1),
            autoscale=True,
            policies=[IsolationPolicy(heavy_share_threshold=0.0)],
        )
        isolations = [
            e for e in result.autoscaler.events if e.action == "isolate"
        ]
        assert isolations, "zero threshold must trigger isolation"
        assert isolations[0].epoch == 0
        dedicated = isolations[0].instance
        assert result.autoscaler.pins  # the flow is pinned...
        registry = result.hub.registry
        # ...and the dedicated instance already carried load in epoch 0.
        assert registry.value("load_packets_total", instance=dedicated) > 0
        assert (
            registry.value("load_offered_bytes_total", instance=dedicated) > 0
        )
