"""Integration tests for the service orchestrator (Section 4.3's loop)."""

import pytest

from repro.core.controller import DPIController
from repro.core.deployment import DecisionKind, DeploymentPlanner
from repro.core.instance import DPIServiceFunction
from repro.core.orchestrator import ServiceOrchestrator
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology

SIGNATURE = b"orchestrated-threat"


@pytest.fixture
def orchestrated_system():
    topo = Topology()
    topo.add_switch("s1")
    for name in ("user1", "user2", "mb1", "dpi_one", "dpi_spare"):
        topo.add_host(name)
        topo.add_link("s1", name)
    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    ids = IntrusionDetectionSystem(middlebox_id=1)
    ids.add_signature(0, SIGNATURE)
    controller = DPIController()
    ids.register_with(controller)
    tsa.register_middlebox_instance("ids", "mb1")
    tsa.register_middlebox_instance("dpi", "dpi_one")
    tsa.add_policy_chain(PolicyChain("web", ("ids",)))
    controller.attach_tsa(tsa)
    tsa.assign_traffic(TrafficAssignment("user1", "user2", "web"))
    tsa.realize()

    instance = controller.instances.provision("dpi-one")
    topo.hosts["dpi_one"].set_function(DPIServiceFunction(instance))
    topo.hosts["mb1"].set_function(MiddleboxChainFunction(ids))

    orchestrator = ServiceOrchestrator(
        controller, tsa, spare_hosts=["dpi_spare"]
    )
    orchestrator.register_instance("dpi-one", "dpi_one")
    spawned = []

    def install(host_name, new_instance):
        topo.hosts[host_name].set_function(DPIServiceFunction(new_instance))
        spawned.append((host_name, new_instance.name))

    orchestrator.on_instance_spawned = install
    return {
        "topo": topo,
        "tsa": tsa,
        "controller": controller,
        "orchestrator": orchestrator,
        "instance": instance,
        "spawned": spawned,
    }


def send(topo, payload, src_port):
    user1, user2 = topo.hosts["user1"], topo.hosts["user2"]
    packet = make_tcp_packet(
        user1.mac, user2.mac, user1.ip, user2.ip, src_port, 80, payload=payload
    )
    user1.send(packet)
    topo.run()
    return packet


class TestControlLoop:
    def test_idle_system_no_actions(self, orchestrated_system):
        orchestrator = orchestrated_system["orchestrator"]
        assert orchestrator.tick(window_seconds=1.0) == []

    def test_overload_scales_out_onto_spare_host(self, orchestrated_system):
        orchestrator = orchestrated_system["orchestrator"]
        topo = orchestrated_system["topo"]
        orchestrator.tick(window_seconds=1.0)  # baseline window
        for port in range(48000, 48020):
            send(topo, b"traffic " * 50, src_port=port)
        # A microscopic window makes the instance look saturated.
        executed = orchestrator.tick(window_seconds=1e-9)
        assert len(executed) == 1
        action = executed[0]
        assert action.kind is DecisionKind.SCALE_OUT
        assert action.new_instance is not None
        assert orchestrated_system["spawned"] == [
            ("dpi_spare", action.new_instance)
        ]
        # The new host is registered with the TSA for future chains.
        assert "dpi_spare" in orchestrated_system["tsa"].instances_of("dpi")
        assert not orchestrator.spare_hosts

    def test_scale_out_without_spares_reports(self, orchestrated_system):
        orchestrator = orchestrated_system["orchestrator"]
        orchestrator.spare_hosts.clear()
        topo = orchestrated_system["topo"]
        orchestrator.tick(window_seconds=1.0)
        for port in range(48100, 48110):
            send(topo, b"traffic " * 50, src_port=port)
        executed = orchestrator.tick(window_seconds=1e-9)
        assert executed[0].new_instance is None
        assert "no spare hosts" in executed[0].detail

    def test_migration_between_instances_repins_flows(self, orchestrated_system):
        orchestrator = orchestrated_system["orchestrator"]
        controller = orchestrated_system["controller"]
        topo = orchestrated_system["topo"]
        # Baseline while only dpi-one exists (the last instance is never
        # scaled in), then bring up the idle second instance.
        orchestrator.tick(window_seconds=1.0)
        second = controller.instances.provision("dpi-two")
        topo.hosts["dpi_spare"].set_function(DPIServiceFunction(second))
        orchestrator.register_instance("dpi-two", "dpi_spare")
        orchestrator.spare_hosts.clear()

        for port in range(48200, 48210):
            send(topo, b"heavy flow " * 40, src_port=port)
        executed = orchestrator.tick(window_seconds=1e-9)
        migrations = [
            a for a in executed if a.kind is DecisionKind.MIGRATE_FLOWS
        ]
        assert migrations, executed
        action = migrations[0]
        assert action.new_instance == "dpi-two"
        assert action.migrated_flows
        # The repinned flows now scan on dpi-two.
        flow = action.migrated_flows[0]
        before = second.telemetry.packets_scanned
        send(topo, b"follow-up", src_port=flow.src_port)
        assert second.telemetry.packets_scanned == before + 1

    def test_scale_in_releases_host(self, orchestrated_system):
        orchestrator = orchestrated_system["orchestrator"]
        controller = orchestrated_system["controller"]
        topo = orchestrated_system["topo"]
        second = controller.instances.provision("dpi-two")
        orchestrator.register_instance("dpi-two", "dpi_spare")
        orchestrator.spare_hosts.clear()
        # Both instances idle over an enormous window: both fall under the
        # low watermark and one is scaled in (never the last).
        send(topo, b"light", src_port=48300)
        executed = orchestrator.tick(window_seconds=1e9)
        scale_ins = [a for a in executed if a.kind is DecisionKind.SCALE_IN]
        assert len(scale_ins) == 1
        assert len(controller.instances) == 1
        assert orchestrator.spare_hosts or "dpi-one" not in controller.instances
