"""Property tests: the combined automaton is equivalent to private ones.

This is the paper's central correctness requirement — merging pattern sets
must not change what each middlebox would have seen with its own engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aho_corasick import AhoCorasick
from repro.core.combined import CombinedAutomaton
from repro.core.patterns import Pattern


def _to_bytes(raw: bytes) -> bytes:
    return bytes(b % 4 + 0x41 for b in raw)


pattern = st.binary(min_size=1, max_size=5).map(_to_bytes)
pattern_list = st.lists(pattern, min_size=1, max_size=6, unique=True)
text_strategy = st.binary(min_size=0, max_size=50).map(_to_bytes)


@given(set_a=pattern_list, set_b=pattern_list, text=text_strategy)
@settings(max_examples=120, deadline=None)
def test_combined_equals_private_per_middlebox(set_a, set_b, text):
    pattern_sets = {
        0: [Pattern(i, p) for i, p in enumerate(set_a)],
        1: [Pattern(i, p) for i, p in enumerate(set_b)],
    }
    combined = CombinedAutomaton(pattern_sets)
    result = combined.scan(text)
    merged = {0: set(), 1: set()}
    for state, cnt in result.raw_matches:
        for middlebox_id, pattern_id in combined.match_entry(state):
            merged[middlebox_id].add((cnt, pattern_id))
    for middlebox_id, patterns in ((0, set_a), (1, set_b)):
        private = AhoCorasick(patterns)
        assert merged[middlebox_id] == set(private.scan(text)[0])


@given(set_a=pattern_list, set_b=pattern_list, text=text_strategy)
@settings(max_examples=80, deadline=None)
def test_bitmap_filter_equals_post_filter(set_a, set_b, text):
    """Scanning with an active bitmap equals scanning everything and
    filtering afterwards."""
    pattern_sets = {
        0: [Pattern(i, p) for i, p in enumerate(set_a)],
        1: [Pattern(i, p) for i, p in enumerate(set_b)],
    }
    combined = CombinedAutomaton(pattern_sets)
    only_0 = combined.bitmask_of([0])
    filtered = combined.scan(text, active_bitmap=only_0)
    full = combined.scan(text)
    expected = set()
    for state, cnt in full.raw_matches:
        for (middlebox_id, pattern_id), _len in combined.resolve(state, only_0):
            expected.add((cnt, middlebox_id, pattern_id))
    actual = set()
    for state, cnt in filtered.raw_matches:
        for (middlebox_id, pattern_id), _len in combined.resolve(state, only_0):
            actual.add((cnt, middlebox_id, pattern_id))
    assert actual == expected


@given(set_a=pattern_list, text=text_strategy, cut=st.integers(0, 50))
@settings(max_examples=80, deadline=None)
def test_combined_stateful_split(set_a, text, cut):
    cut = min(cut, len(text))
    pattern_sets = {0: [Pattern(i, p) for i, p in enumerate(set_a)]}
    combined = CombinedAutomaton(pattern_sets)
    whole = combined.scan(text)
    first = combined.scan(text[:cut])
    second = combined.scan(text[cut:], state=first.end_state)
    rebuilt = sorted(
        first.raw_matches + [(s, cut + c) for s, c in second.raw_matches]
    )
    assert rebuilt == sorted(whole.raw_matches)
    assert second.end_state == whole.end_state


@given(set_a=pattern_list, set_b=pattern_list, text=text_strategy)
@settings(max_examples=60, deadline=None)
def test_layouts_equivalent(set_a, set_b, text):
    pattern_sets = {
        0: [Pattern(i, p) for i, p in enumerate(set_a)],
        1: [Pattern(i, p) for i, p in enumerate(set_b)],
    }
    sparse = CombinedAutomaton(pattern_sets, layout="sparse")
    full = CombinedAutomaton(pattern_sets, layout="full")
    sparse_result = sparse.scan(text)
    full_result = full.scan(text)

    def expand(automaton, result):
        return sorted(
            (cnt, pair)
            for state, cnt in result.raw_matches
            for pair in automaton.match_entry(state)
        )

    assert expand(sparse, sparse_result) == expand(full, full_result)


@given(set_a=pattern_list, set_b=pattern_list)
@settings(max_examples=60, deadline=None)
def test_accepting_state_count_bounds(set_a, set_b):
    """f >= number of distinct patterns (extra states only from suffix-
    closure of prefixes) and every accepting state has a non-empty entry."""
    pattern_sets = {
        0: [Pattern(i, p) for i, p in enumerate(set_a)],
        1: [Pattern(i, p) for i, p in enumerate(set_b)],
    }
    combined = CombinedAutomaton(pattern_sets)
    distinct = len({p for p in set_a} | {p for p in set_b})
    assert combined.num_accepting >= distinct
    for state in range(combined.num_accepting):
        assert combined.match_entry(state)
        assert combined.bitmap_of_state(state)
