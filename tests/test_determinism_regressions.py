"""Regression tests for the set-iteration-order defects DET002 surfaced.

Both fixes replace iteration over a set with ``sorted(...)`` so the
observable behaviour (dict key order, which error raises first) no
longer depends on hash seeding. The tests pin the now-deterministic
outcome directly.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.core.messages import RegisterMiddleboxMessage
from repro.core.patterns import GlobalPatternRegistry, Pattern
from repro.net.steering import PolicyChain


def test_pattern_sets_by_middlebox_orders_shared_referrers():
    """A pattern shared by several middleboxes reconstructs in id order.

    ``referrers`` is a set of ``(middlebox_id, pattern_id)`` tuples;
    before the fix the returned dict's key order followed set iteration
    order, which varies with PYTHONHASHSEED.
    """
    registry = GlobalPatternRegistry()
    # Register out of order so sorted() visibly differs from insertion.
    for middlebox_id in (3, 1, 2):
        registry.add(middlebox_id, Pattern(0, b"shared-signature"))
    sets = registry.pattern_sets_by_middlebox()
    assert list(sets) == [1, 2, 3]
    assert all(len(ps) == 1 for ps in sets.values())


def test_pattern_sets_by_middlebox_one_entry_many_referrers():
    registry = GlobalPatternRegistry()
    for middlebox_id in (3, 1, 2):
        registry.add(middlebox_id, Pattern(0, b"shared-signature"))
    # Deduplication holds: one registry entry backs all three referrers.
    assert len(registry) == 1
    assert len(registry.pattern_sets_by_middlebox()) == 3


def make_instance_with_two_chains():
    controller = DPIController()
    for middlebox_id, name in ((1, "ids"), (2, "av")):
        controller.handle_message(RegisterMiddleboxMessage(middlebox_id, name))
        controller.add_patterns(middlebox_id, [Pattern(0, b"sig-%d" % middlebox_id)])
    controller.policy_chains_changed({
        "chain-a": PolicyChain("chain-a", ("ids",), chain_id=100),
        "chain-b": PolicyChain("chain-b", ("av",), chain_id=116),
    })
    return controller.instances.provision("inst")


def test_direct_chain_missing_address_raises_lowest_chain_first():
    """With two unaddressed direct chains, chain 100 must raise, not 116.

    ``direct_chains`` is a set; before the fix whichever chain set
    iteration yielded first named the KeyError, so the message differed
    run to run.
    """
    instance = make_instance_with_two_chains()
    with pytest.raises(KeyError, match="direct chain 100"):
        DPIServiceFunction(
            instance, direct_chains={116, 100}, middlebox_addresses={}
        )


def test_direct_chain_with_all_addresses_constructs():
    instance = make_instance_with_two_chains()
    function = DPIServiceFunction(
        instance,
        direct_chains={116, 100},
        middlebox_addresses={
            1: ("00:00:00:00:00:01", "10.0.0.1"),
            2: ("00:00:00:00:00:02", "10.0.0.2"),
        },
    )
    assert function.direct_chains == {100, 116}


class TestShardedMergeDeterminism:
    """Two same-seed figure-5 runs with ``--kernel sharded --shards 4``
    must produce bit-identical telemetry digests.

    The sharded kernel merges per-shard results and (with the process
    backend) crosses process boundaries; nothing about that may leak into
    the workload-determined telemetry.  ``deterministic_digest`` hashes
    every metric, span and fault event that is a pure function of the
    workload — a drifting merge order or shard numbering changes it.
    """

    def run_digest(self, backend="serial"):
        from repro.telemetry.digest import deterministic_digest
        from repro.telemetry.scenario import run_figure5_scenario

        result = run_figure5_scenario(
            packets=24,
            seed=7,
            kernel="sharded",
            shards=4,
            shard_backend=backend,
        )
        digest = deterministic_digest(result.hub)
        result.instance.automaton.shutdown()
        return digest

    def test_same_seed_runs_digest_identically(self):
        assert self.run_digest() == self.run_digest()

    def test_process_backend_digests_like_serial(self):
        """Backend choice is an execution detail: the digest (which
        excludes wall-clock quantities) must not see it."""
        assert self.run_digest("process") == self.run_digest("serial")

    def test_zerocopy_backend_digests_like_serial(self):
        """The shared-memory arena backend (and its extra gauges, which
        the digest excludes as backend internals) digests identically."""
        assert self.run_digest("zerocopy") == self.run_digest("serial")

    def test_sharded_digest_is_stable_across_shard_counts_for_matches(self):
        """Match-derived metrics agree between shard counts; the full
        digest differs only through the per-shard counter labels."""
        from repro.telemetry.scenario import run_figure5_scenario

        def match_total(result):
            (counter,) = result.hub.registry.collect_named(
                "dpi_matches_total"
            )
            return counter.value

        two = run_figure5_scenario(packets=24, kernel="sharded", shards=2)
        six = run_figure5_scenario(packets=24, kernel="sharded", shards=6)
        assert match_total(two) == match_total(six)
        two.instance.automaton.shutdown()
        six.instance.automaton.shutdown()
