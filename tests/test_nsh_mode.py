"""Integration: NSH in-band result passing end to end (Section 4.2,
option 1).

The DPI instance attaches match results as NSH metadata on the data packet;
middleboxes on the chain read it without buffering; the last DPI-aware
middlebox strips the layer so the destination receives the original packet.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.base import NSHChainFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import build_paper_topology

SIGNATURE = b"GET /cgi-bin/exploit"
VIRUS = b"VIRUS-BODY-MARKER"


@pytest.fixture
def nsh_system():
    topo = build_paper_topology()
    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)
    ids = IntrusionDetectionSystem(middlebox_id=1)
    ids.add_signature(0, SIGNATURE)
    antivirus = AntiVirus(middlebox_id=2)
    antivirus.add_signature(0, VIRUS)
    dpi_controller = DPIController()
    ids.register_with(dpi_controller)
    antivirus.register_with(dpi_controller)
    tsa.register_middlebox_instance("ids", "mb1")
    tsa.register_middlebox_instance("av", "mb2")
    tsa.register_middlebox_instance("dpi", "dpi1")
    tsa.add_policy_chain(PolicyChain("web", ("ids", "av")))
    dpi_controller.attach_tsa(tsa)
    tsa.assign_traffic(TrafficAssignment("user1", "user2", "web"))
    tsa.realize()
    instance = dpi_controller.instances.provision("dpi1")
    topo.hosts["dpi1"].set_function(
        DPIServiceFunction(instance, result_mode="nsh")
    )
    topo.hosts["mb1"].set_function(NSHChainFunction(ids))
    # The AV is the last DPI-aware middlebox: it strips the layer.
    topo.hosts["mb2"].set_function(NSHChainFunction(antivirus, strip=True))
    return {"topo": topo, "ids": ids, "av": antivirus, "instance": instance}


def send(topo, payload, src_port=46000):
    user1, user2 = topo.hosts["user1"], topo.hosts["user2"]
    packet = make_tcp_packet(
        user1.mac, user2.mac, user1.ip, user2.ip, src_port, 80, payload=payload
    )
    user1.send(packet)
    topo.run()
    return packet


class TestNSHOnTheWire:
    def test_single_packet_no_extra_traffic(self, nsh_system):
        send(nsh_system["topo"], SIGNATURE + b" HTTP/1.1")
        user2 = nsh_system["topo"].hosts["user2"]
        # Exactly one packet arrives — no dedicated result packet exists.
        assert len(user2.received_packets) == 1
        assert len(nsh_system["ids"].alerts) == 1

    def test_last_middlebox_strips_metadata(self, nsh_system):
        packet = send(nsh_system["topo"], SIGNATURE)
        received = nsh_system["topo"].hosts["user2"].received_packets[0]
        assert received.nsh is None
        assert not received.is_marked_matched
        assert received.payload == packet.payload

    def test_av_acts_on_inband_results(self, nsh_system):
        send(nsh_system["topo"], b"attachment " + VIRUS)
        assert nsh_system["av"].stats.packets_dropped == 1
        assert nsh_system["topo"].hosts["user2"].received_packets == []

    def test_clean_traffic_passes_without_metadata(self, nsh_system):
        send(nsh_system["topo"], b"totally clean")
        received = nsh_system["topo"].hosts["user2"].received_packets[0]
        assert received.nsh is None
        assert nsh_system["ids"].stats.packets_processed == 1

    def test_both_middleboxes_read_same_metadata(self, nsh_system):
        send(nsh_system["topo"], SIGNATURE + b" " + VIRUS)
        assert len(nsh_system["ids"].alerts) == 1
        assert nsh_system["av"].stats.packets_dropped == 1
        assert nsh_system["instance"].telemetry.packets_scanned == 1
