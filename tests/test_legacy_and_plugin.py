"""Unit tests for the legacy (embedded DPI) baseline and the plugin."""

import pytest

from repro.core.patterns import Pattern, PatternKind
from repro.core.reports import MatchReport
from repro.middleboxes.base import Action, Rule
from repro.middleboxes.legacy import LegacyChainFunction, LegacyDPIMiddlebox
from repro.middleboxes.plugin import DPIResultsPlugin
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet


def make_packet(payload=b"data"):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1234,
        80,
        payload=payload,
    )


def build_legacy(action=Action.ALERT):
    middlebox = LegacyDPIMiddlebox(middlebox_id=1, name="snort")
    middlebox.add_literal_rule(0, b"exploit", action=action)
    middlebox.add_regex_rule(1, rb"worm\d{2}", action=action)
    middlebox.build_engine()
    return middlebox


class TestLegacyMiddlebox:
    def test_scan_literal(self):
        middlebox = build_legacy()
        matches = middlebox.scan(b"an exploit here")
        assert (0, 10) in matches

    def test_scan_regex(self):
        middlebox = build_legacy()
        matches = middlebox.scan(b"worm42 detected")
        assert (1, 6) in matches

    def test_process_packet_fires_rules(self):
        middlebox = build_legacy()
        verdict = middlebox.process_packet(make_packet(b"the exploit"))
        assert verdict is Action.ALERT
        assert middlebox.stats.rules_fired == 1

    def test_bytes_scanned_accumulates(self):
        middlebox = build_legacy()
        middlebox.scan(b"12345")
        middlebox.scan(b"1234567890")
        assert middlebox.bytes_scanned == 15

    def test_scan_before_build_raises(self):
        middlebox = LegacyDPIMiddlebox(middlebox_id=1)
        middlebox.add_literal_rule(0, b"sig1")
        with pytest.raises(RuntimeError):
            middlebox.scan(b"data")

    def test_stateful_legacy_scan(self):
        middlebox = LegacyDPIMiddlebox(middlebox_id=1)
        middlebox.STATEFUL = True
        middlebox.add_literal_rule(0, b"crosses")
        middlebox.build_engine()
        assert middlebox.scan(b"xxcro", flow_key="f") == []
        matches = middlebox.scan(b"sses", flow_key="f")
        assert (0, 9) in matches

    def test_chain_function_forwards_and_drops(self):
        middlebox = build_legacy(action=Action.DROP)
        function = LegacyChainFunction(middlebox)
        clean = make_packet(b"clean")
        assert function.process(clean) == [clean]
        bad = make_packet(b"exploit")
        assert function.process(bad) == []

    def test_chain_function_ignores_result_packets(self):
        function = LegacyChainFunction(build_legacy())
        packet = make_packet()
        packet.describes_packet_id = 5
        assert function.process(packet) == [packet]


class TestPlugin:
    def test_plugin_bypasses_scanning(self):
        """The paper's Snort plugin: rule logic runs off service reports,
        the embedded engine stays idle."""
        middlebox = build_legacy()
        plugin = DPIResultsPlugin(middlebox)
        report = MatchReport.from_matches({1: [(0, 10)]})
        verdict = plugin.consume_report(make_packet(b"an exploit here"), report)
        assert verdict is Action.ALERT
        assert middlebox.stats.rules_fired == 1
        # The engine never scanned: bytes_scanned untouched.
        assert middlebox.bytes_scanned == 0
        assert plugin.bypassed_scans == 1
        assert plugin.bypassed_bytes == len(b"an exploit here")

    def test_plugin_equivalent_to_scanning(self):
        """Rule outcomes agree between embedded scan and plugin+report."""
        scanning = build_legacy()
        plugged = DPIResultsPlugin(build_legacy())
        payload = b"the exploit and worm07"
        scan_verdict = scanning.process_packet(make_packet(payload))
        matches = scanning.scan(payload)
        report = MatchReport.from_matches({1: matches})
        plugin_verdict = plugged.consume_report(make_packet(payload), report)
        assert scan_verdict == plugin_verdict
        assert (
            plugged.middlebox.stats.rules_fired == 1 + 1  # both rules
        ) == (scanning.stats.rules_fired == 2)

    def test_plugin_unmarked(self):
        plugin = DPIResultsPlugin(build_legacy())
        verdict = plugin.consume_unmarked(make_packet(b"clean"))
        assert verdict is Action.FORWARD
        assert plugin.middlebox.stats.packets_processed == 1
