"""Unit tests for deployment planning (Section 4.3)."""

import pytest

from repro.core.deployment import (
    DecisionKind,
    DeploymentPlanner,
    LoadSample,
    group_chains_by_similarity,
    group_chains_by_traffic_class,
    jaccard_similarity,
)


class TestSimilarity:
    def test_identical_sets(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert jaccard_similarity(set(), set()) == 1.0


class TestChainGrouping:
    CHAINS = {
        100: (1, 2),
        101: (1, 2, 3),
        102: (7, 8),
        103: (8, 9),
    }

    def test_group_to_two(self):
        groups = group_chains_by_similarity(self.CHAINS, max_groups=2)
        as_sets = {frozenset(g) for g in groups}
        assert frozenset({100, 101}) in as_sets
        assert frozenset({102, 103}) in as_sets

    def test_group_to_one(self):
        groups = group_chains_by_similarity(self.CHAINS, max_groups=1)
        assert sorted(groups[0]) == [100, 101, 102, 103]

    def test_more_groups_than_chains(self):
        groups = group_chains_by_similarity(self.CHAINS, max_groups=10)
        assert len(groups) == 4

    def test_min_similarity_stops_merging(self):
        groups = group_chains_by_similarity(
            self.CHAINS, max_groups=1, min_similarity=0.5
        )
        # 100+101 merge (similarity 2/3); 102 and 103 (1/3) stay apart.
        as_sets = {frozenset(g) for g in groups}
        assert as_sets == {
            frozenset({100, 101}),
            frozenset({102}),
            frozenset({103}),
        }

    def test_invalid_max_groups(self):
        with pytest.raises(ValueError):
            group_chains_by_similarity(self.CHAINS, max_groups=0)

    def test_group_by_traffic_class(self):
        groups = group_chains_by_traffic_class(
            {100: "http", 101: "ftp", 102: "http"}
        )
        assert groups == {"http": [100, 102], "ftp": [101]}


class TestPlanner:
    def _sample(self, name, utilization):
        return LoadSample(
            instance_name=name,
            bytes_scanned=1000,
            scan_seconds=utilization,
            window_seconds=1.0,
        )

    def test_no_samples_no_decisions(self):
        assert DeploymentPlanner().plan([]) == []

    def test_balanced_load_no_decisions(self):
        planner = DeploymentPlanner()
        decisions = planner.plan([self._sample("a", 0.5), self._sample("b", 0.5)])
        assert decisions == []

    def test_overload_with_spare_migrates(self):
        planner = DeploymentPlanner()
        decisions = planner.plan([self._sample("hot", 0.95), self._sample("cold", 0.05)])
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.kind is DecisionKind.MIGRATE_FLOWS
        assert decision.instance_name == "hot"
        assert decision.target_instance == "cold"

    def test_overload_without_spare_scales_out(self):
        planner = DeploymentPlanner()
        decisions = planner.plan([self._sample("hot", 0.95), self._sample("warm", 0.6)])
        assert decisions == [
            d for d in decisions if d.kind is DecisionKind.SCALE_OUT
        ]
        assert decisions[0].instance_name == "hot"

    def test_idle_instances_scaled_in_but_not_last(self):
        planner = DeploymentPlanner()
        decisions = planner.plan([self._sample("idle1", 0.01), self._sample("idle2", 0.02)])
        kinds = [d.kind for d in decisions]
        assert kinds.count(DecisionKind.SCALE_IN) == 1

    def test_single_idle_instance_kept(self):
        planner = DeploymentPlanner()
        assert planner.plan([self._sample("only", 0.0)]) == []

    def test_migration_target_not_scaled_in(self):
        planner = DeploymentPlanner()
        decisions = planner.plan(
            [self._sample("hot", 0.99), self._sample("cold", 0.01)]
        )
        scale_ins = [d for d in decisions if d.kind is DecisionKind.SCALE_IN]
        assert all(d.instance_name != "cold" for d in scale_ins)

    def test_utilization_property(self):
        sample = LoadSample("x", 100, 0.25, 1.0)
        assert sample.utilization == 0.25
        zero_window = LoadSample("x", 100, 0.25, 0.0)
        assert zero_window.utilization == 0.0

    def test_history_recorded(self):
        planner = DeploymentPlanner()
        planner.plan([self._sample("a", 0.5)])
        planner.plan([self._sample("a", 0.6)])
        assert len(planner.history) == 2
