"""Unit tests for the active-flow table."""

from repro.core.flow_table import FlowTable


class TestLookup:
    def test_new_flow_is_none(self):
        table = FlowTable(initial_state=7)
        assert table.lookup("flow") is None

    def test_lookup_or_create_uses_initial_state(self):
        table = FlowTable(initial_state=7)
        entry = table.lookup_or_create("flow")
        assert entry.state == 7
        assert entry.offset == 0

    def test_update_and_lookup(self):
        table = FlowTable()
        table.update("flow", state=12, offset=1460, now=1.0)
        entry = table.lookup("flow")
        assert (entry.state, entry.offset, entry.last_seen) == (12, 1460, 1.0)
        assert entry.packets == 1

    def test_update_counts_packets(self):
        table = FlowTable()
        table.update("flow", 1, 100)
        table.update("flow", 2, 200)
        assert table.lookup("flow").packets == 2

    def test_contains_and_len(self):
        table = FlowTable()
        table.update("a", 0, 0)
        table.update("b", 0, 0)
        assert "a" in table and "b" in table and "c" not in table
        assert len(table) == 2

    def test_remove(self):
        table = FlowTable()
        table.update("flow", 3, 30)
        removed = table.remove("flow")
        assert removed.state == 3
        assert table.remove("flow") is None


class TestEviction:
    def test_evict_idle(self):
        table = FlowTable()
        table.update("old", 1, 10, now=0.0)
        table.update("new", 2, 20, now=9.0)
        evicted = table.evict_idle(now=10.0, max_idle=5.0)
        assert evicted == 1
        assert "old" not in table and "new" in table

    def test_evict_none_when_fresh(self):
        table = FlowTable()
        table.update("flow", 1, 10, now=10.0)
        assert table.evict_idle(now=11.0, max_idle=5.0) == 0


class TestMigration:
    def test_export_import_round_trip(self):
        source = FlowTable()
        source.update("flow", state=42, offset=2920, now=3.0)
        exported = source.export_flow("flow")
        target = FlowTable()
        target.import_flow("flow", exported)
        entry = target.lookup("flow")
        assert (entry.state, entry.offset) == (42, 2920)
        assert entry.packets == source.lookup("flow").packets

    def test_export_unknown_flow(self):
        assert FlowTable().export_flow("ghost") is None

    def test_flow_keys(self):
        table = FlowTable()
        table.update("a", 0, 0)
        table.update("b", 0, 0)
        assert sorted(table.flow_keys()) == ["a", "b"]
