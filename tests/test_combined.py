"""Unit tests for the combined virtual-DPI automaton (Section 5.1)."""

import pytest

from repro.core.combined import CombinedAutomaton
from repro.core.patterns import Pattern, PatternKind
from tests.conftest import PAPER_SET_0, PAPER_SET_1

LAYOUTS = ["sparse", "full"]


def _resolve_all(automaton, result):
    """Expand raw (state, cnt) matches to ((mb, pid), cnt) triples."""
    expanded = []
    for state, cnt in result.raw_matches:
        for pair in automaton.match_entry(state):
            expanded.append((pair, cnt))
    return sorted(expanded)


@pytest.mark.parametrize("layout", LAYOUTS)
class TestPaperExample:
    """The paper's Figure 7 construction for P0 and P1."""

    def test_nine_accepting_states(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        # 10 patterns, "BE" shared -> 9 distinct patterns, each with its own
        # accepting state and no extra suffix-only accepting states here.
        assert automaton.num_distinct_patterns == 9
        assert automaton.num_accepting == 9

    def test_accepting_states_are_low_ids(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        # The paper's trick: accept test is `state < f`.
        for state in range(automaton.num_states):
            entry_exists = state < automaton.num_accepting
            assert automaton.is_accepting(state) == entry_exists

    def test_shared_pattern_has_both_referrers(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        result = automaton.scan(b"BE")
        # One accepting state is reached (at position 2); its match entry
        # carries BE for both middleboxes plus the suffix pattern E.
        assert len(result.raw_matches) == 1
        entries = [
            automaton.match_entry(state) for state, _cnt in result.raw_matches
        ]
        flattened = {pair for entry in entries for pair in entry}
        # BE is pattern 1 in both sets; E is pattern 0 of set 0 only.
        assert (0, 1) in flattened
        assert (1, 1) in flattened
        assert (0, 0) in flattened

    def test_bitmaps_reflect_referrers(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        for state in range(automaton.num_accepting):
            bitmap = automaton.bitmap_of_state(state)
            expected = 0
            for middlebox_id, _pid in automaton.match_entry(state):
                expected |= 1 << middlebox_id
            assert bitmap == expected

    def test_scan_positions(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        result = automaton.scan(b"XCDBCABX")
        matched = _resolve_all(automaton, result)
        # CDBCAB (set 0, id 5) ends at position 7.
        assert ((0, 5), 7) in matched

    def test_match_equivalence_with_private_automata(
        self, paper_pattern_sets, layout
    ):
        """Core invariant: the merged DFA reports, per middlebox, exactly
        what that middlebox's private DFA reports."""
        from repro.core.aho_corasick import AhoCorasick

        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        text = b"ABEDAECDBCABCDBCAACBDXBE"
        result = automaton.scan(text)
        merged: dict = {0: set(), 1: set()}
        for state, cnt in result.raw_matches:
            for middlebox_id, pattern_id in automaton.match_entry(state):
                merged[middlebox_id].add((cnt, pattern_id))
        for middlebox_id, patterns in paper_pattern_sets.items():
            private = AhoCorasick([p.data for p in patterns])
            expected = set(private.scan(text)[0])
            assert merged[middlebox_id] == expected, f"middlebox {middlebox_id}"


@pytest.mark.parametrize("layout", LAYOUTS)
class TestActiveBitmapFiltering:
    def test_only_active_middleboxes_reported(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        only_1 = automaton.bitmask_of([1])
        result = automaton.scan(b"ABEDAE", active_bitmap=only_1)
        for state, _cnt in result.raw_matches:
            assert automaton.bitmap_of_state(state) & only_1
        resolved = {
            pair
            for state, _ in result.raw_matches
            for pair, _length in automaton.resolve(state, only_1)
        }
        assert all(middlebox_id == 1 for middlebox_id, _ in resolved)
        # EDAE and BE belong to middlebox 1.
        assert (1, 0) in resolved
        assert (1, 1) in resolved

    def test_zero_bitmap_reports_nothing(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        result = automaton.scan(b"ABEDAECDBCAB", active_bitmap=0)
        assert result.raw_matches == []

    def test_bitmask_of_unknown_middlebox(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        with pytest.raises(KeyError):
            automaton.bitmask_of([7])


@pytest.mark.parametrize("layout", LAYOUTS)
class TestScanControls:
    def test_limit_truncates_scan(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        result = automaton.scan(b"XXXXXBE", limit=5)
        assert result.bytes_scanned == 5
        assert result.raw_matches == []

    def test_resume_from_state(self, paper_pattern_sets, layout):
        automaton = CombinedAutomaton(paper_pattern_sets, layout=layout)
        first = automaton.scan(b"CDBC")
        second = automaton.scan(b"AB", state=first.end_state)
        matched = _resolve_all(automaton, second)
        assert ((0, 5), 2) in matched  # CDBCAB completes 2 bytes in

    def test_suffix_closure_in_match_entry(self, layout):
        sets = {
            0: [Pattern(0, b"DEF")],
            1: [Pattern(0, b"ABCDEF")],
        }
        automaton = CombinedAutomaton(sets, layout=layout)
        result = automaton.scan(b"ABCDEF")
        all_pairs = {
            pair for state, _ in result.raw_matches
            for pair in automaton.match_entry(state)
        }
        assert (0, 0) in all_pairs and (1, 0) in all_pairs
        # The ABCDEF accepting state's entry contains the suffix DEF too.
        deep_state = [
            s for s, _ in result.raw_matches if len(automaton.match_entry(s)) == 2
        ]
        assert deep_state, "expected a state carrying both patterns"


class TestConstructionErrors:
    def test_regex_pattern_rejected(self):
        sets = {0: [Pattern(0, b"a+b", kind=PatternKind.REGEX)]}
        with pytest.raises(ValueError, match="literal patterns only"):
            CombinedAutomaton(sets)

    def test_negative_middlebox_id_rejected(self):
        with pytest.raises(ValueError):
            CombinedAutomaton({-1: [Pattern(0, b"abcd")]})

    def test_stats_reported(self, paper_pattern_sets):
        automaton = CombinedAutomaton(paper_pattern_sets, layout="full")
        stats = automaton.stats
        assert stats.num_patterns == 9
        assert stats.num_accepting_states == 9
        assert stats.memory_bytes > 0

    def test_all_middleboxes_bitmap(self, paper_pattern_sets):
        automaton = CombinedAutomaton(paper_pattern_sets)
        assert automaton.all_middleboxes_bitmap == 0b11
