"""Unit tests for the telemetry subsystem (registry, tracer, exporters)."""

import json

import pytest

from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.patterns import Pattern
from repro.core.scanner import MiddleboxProfile
from repro.net.simulator import Simulator
from repro.telemetry import (
    MetricsRegistry,
    TelemetryHub,
    Tracer,
)
from repro.telemetry.export import export_jsonl, iter_events, prometheus_text
from repro.telemetry.report import render_report

CHAIN = 100


def make_instance(telemetry=None, scan_cache_size=0):
    config = InstanceConfig(
        pattern_sets={1: [Pattern(0, b"needle-alpha"), Pattern(1, b"needle-beta")]},
        profiles={1: MiddleboxProfile(middlebox_id=1, name="ids", stateful=True)},
        chain_map={CHAIN: (1,)},
        scan_cache_size=scan_cache_size,
    )
    return DPIServiceInstance(config, name="dpi-t", telemetry=telemetry)


class TestMetricsRegistry:
    def test_counter_is_monotonic_and_labeled(self):
        registry = MetricsRegistry()
        registry.counter("pkts", instance="a").inc()
        registry.counter("pkts", instance="a").inc(4)
        registry.counter("pkts", instance="b").inc()
        assert registry.value("pkts", instance="a") == 5
        assert registry.value("pkts", instance="b") == 1
        assert registry.value("pkts", instance="missing", default=None) is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_callback_gauge_reads_lazily(self):
        registry = MetricsRegistry()
        box = {"n": 1}
        registry.gauge_callback("depth", lambda: box["n"])
        assert registry.value("depth") == 1
        box["n"] = 7
        assert registry.value("depth") == 7

    def test_histogram_buckets_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(5.55 / 3)
        assert hist.cumulative_buckets() == [
            (0.1, 1), (1.0, 2), (float("inf"), 3)
        ]

    def test_window_delta_is_incremental(self):
        registry = MetricsRegistry()
        counter = registry.counter("bytes", instance="a")
        counter.inc(10)
        window = registry.window(("bytes",))
        assert window.delta().value("bytes", instance="a") == 0
        counter.inc(5)
        assert window.delta().value("bytes", instance="a") == 5
        assert window.delta().value("bytes", instance="a") == 0

    def test_window_zero_baseline_covers_history(self):
        registry = MetricsRegistry()
        registry.counter("bytes", instance="a").inc(10)
        window = registry.window(("bytes",), zero_baseline=True)
        assert window.delta().value("bytes", instance="a") == 10

    def test_windows_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("bytes")
        first = registry.window(("bytes",))
        second = registry.window(("bytes",))
        counter.inc(3)
        assert first.delta().value("bytes") == 3
        counter.inc(2)
        assert first.delta().value("bytes") == 2
        assert second.delta().value("bytes") == 5

    def test_drop_removes_labeled_metrics(self):
        registry = MetricsRegistry()
        registry.counter("pkts", instance="a").inc()
        registry.counter("pkts", instance="b").inc()
        registry.gauge("flows", instance="a")
        assert registry.drop(instance="a") == 2
        assert registry.get("pkts", instance="a") is None
        assert registry.value("pkts", instance="b") == 1

    def test_simulator_clock_timestamps(self):
        simulator = Simulator()
        hub = TelemetryHub.for_simulator(simulator)
        simulator.schedule(1.5, lambda: None)
        simulator.run()
        assert hub.now() == pytest.approx(1.5)
        assert hub.registry.snapshot()["ts"] == pytest.approx(1.5)
        assert simulator.telemetry is hub
        assert hub.registry.value("sim_events_processed") == 1


class TestTracer:
    def test_root_and_children(self):
        tracer = Tracer(clock=lambda: 2.0)
        root = tracer.start_span("steer", host="h1")
        assert root.trace_id == root.span_id
        assert root.parent_id is None
        child = tracer.record("hop", parent=root, switch="s1")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.duration == 0.0
        assert tracer.children_of(root) == [child]

    def test_parent_as_context_tuple(self):
        tracer = Tracer(clock=lambda: 0.0)
        root = tracer.start_span("steer")
        child = tracer.record("inspect", parent=root.context)
        assert (child.trace_id, child.parent_id) == root.context

    def test_tree_nesting(self):
        tracer = Tracer(clock=lambda: 0.0)
        root = tracer.start_span("steer")
        tracer.record("hop", parent=root)
        tracer.record("deliver", parent=root)
        tree = tracer.tree(root.trace_id)
        assert tree["span"] is root
        assert [node["span"].name for node in tree["children"]] == [
            "hop", "deliver"
        ]

    def test_span_retention_bound(self):
        tracer = Tracer(clock=lambda: 0.0, max_spans=5)
        for index in range(9):
            tracer.start_span(f"s{index}")
        assert len(tracer.spans) == 5
        assert tracer.spans[0].name == "s4"

    def test_span_ids_are_deterministic(self):
        spans_a = Tracer(clock=lambda: 0.0)
        spans_b = Tracer(clock=lambda: 0.0)
        for tracer in (spans_a, spans_b):
            root = tracer.start_span("steer")
            tracer.record("hop", parent=root)
        assert [s.span_id for s in spans_a.spans] == [
            s.span_id for s in spans_b.spans
        ]


class TestExporters:
    def _hub(self):
        hub = TelemetryHub(clock=lambda: 3.0)
        hub.registry.counter("pkts", instance="a").inc(2)
        hub.registry.histogram("lat", buckets=(0.1,), instance="a").observe(0.05)
        root = hub.tracer.start_span("steer", host="h1")
        hub.tracer.record("hop", parent=root, switch="s1")
        return hub

    def test_prometheus_text_format(self):
        text = prometheus_text(self._hub().registry)
        assert "# TYPE pkts counter" in text
        assert 'pkts{instance="a"} 2' in text
        assert 'lat_bucket{instance="a",le="0.1"} 1' in text
        assert 'lat_bucket{instance="a",le="+Inf"} 1' in text
        assert 'lat_count{instance="a"} 1' in text

    def test_jsonl_export_round_trips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        count = export_jsonl(self._hub(), path)
        lines = path.read_text().splitlines()
        assert len(lines) == count == 4  # 2 metrics + 2 spans
        events = [json.loads(line) for line in lines]
        kinds = [event["type"] for event in events]
        assert kinds == ["metric", "metric", "span", "span"]
        metric = events[0]
        assert metric["ts"] == 3.0
        span = events[2]
        assert span["name"] == "steer"
        assert span["attributes"] == {"host": "h1"}

    def test_iter_events_without_tracer(self):
        hub = TelemetryHub(tracing=False)
        hub.registry.counter("pkts").inc()
        events = list(iter_events(hub))
        assert [event["type"] for event in events] == ["metric"]

    def test_report_renders_instance_table(self):
        hub = TelemetryHub(clock=lambda: 0.0)
        instance = make_instance(telemetry=hub, scan_cache_size=4)
        instance.inspect(b"has a needle-alpha inside", chain_id=CHAIN, flow_key="f")
        text = render_report(hub)
        assert "dpi-t" in text
        assert "DPI instances" in text
        assert "% hit" in text  # the cache column is live

    def test_report_empty_hub(self):
        assert render_report(TelemetryHub()) == "no telemetry recorded\n"


class TestInstanceTelemetry:
    def test_registry_counters_match_legacy_telemetry(self):
        hub = TelemetryHub()
        instance = make_instance(telemetry=hub)
        payloads = [b"clean data", b"with needle-alpha", b"and needle-beta!"]
        for index, payload in enumerate(payloads):
            instance.inspect(payload, chain_id=CHAIN, flow_key=f"f{index}")
        registry = hub.registry
        legacy = instance.telemetry
        assert registry.value("dpi_packets_scanned_total", instance="dpi-t") == \
            legacy.packets_scanned == 3
        assert registry.value("dpi_bytes_scanned_total", instance="dpi-t") == \
            legacy.bytes_scanned
        assert registry.value("dpi_matches_total", instance="dpi-t") == \
            legacy.total_matches == 2
        assert registry.value(
            "dpi_scan_seconds_total", instance="dpi-t"
        ) == pytest.approx(legacy.scan_seconds)
        hist = registry.get("dpi_scan_latency_seconds", instance="dpi-t")
        assert hist.count == 3
        assert registry.value("dpi_active_flows", instance="dpi-t") == 3
        assert registry.value(
            "dpi_chain_packets_total", instance="dpi-t", chain=CHAIN
        ) == 3

    def test_cache_stats_surfaced_as_gauges(self):
        hub = TelemetryHub()
        instance = make_instance(telemetry=hub, scan_cache_size=2)
        instance.inspect(b"payload-one", chain_id=CHAIN)
        instance.inspect(b"payload-one", chain_id=CHAIN)
        registry = hub.registry
        stats = instance.scan_cache_stats()
        assert registry.value("dpi_scan_cache_hits", instance="dpi-t") == \
            stats["hits"] >= 1
        assert registry.value("dpi_scan_cache_misses", instance="dpi-t") == \
            stats["misses"]
        assert registry.value("dpi_scan_cache_evictions", instance="dpi-t") == \
            stats["evictions"]

    def test_inspect_results_identical_with_and_without_telemetry(self):
        plain = make_instance()
        traced = make_instance(telemetry=TelemetryHub())
        payloads = [
            b"nothing here",
            b"a needle-alpha match",
            b"needle-beta and needle-alpha",
            b"trailing needle-al",  # cross-packet prefix
            b"pha continuation",
        ]
        for index, payload in enumerate(payloads):
            flow = "shared-flow" if index >= 3 else f"f{index}"
            a = plain.inspect(payload, chain_id=CHAIN, flow_key=flow)
            b = traced.inspect(payload, chain_id=CHAIN, flow_key=flow)
            assert a.matches == b.matches
            assert a.bytes_scanned == b.bytes_scanned
            assert a.report.encode() == b.report.encode()

    def test_inspect_span_recorded_only_with_trace_parent(self):
        hub = TelemetryHub()
        instance = make_instance(telemetry=hub)
        instance.inspect(b"no parent", chain_id=CHAIN)
        assert hub.tracer.spans_named("inspect") == []
        root = hub.tracer.start_span("steer")
        instance.inspect(b"with needle-alpha", chain_id=CHAIN, trace_parent=root.context)
        spans = hub.tracer.spans_named("inspect")
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["instance"] == "dpi-t"
        assert attrs["chain"] == CHAIN
        assert attrs["kernel"] == "flat"
        assert attrs["matches"] == 1
        assert attrs["bytes"] == len(b"with needle-alpha")

    def test_reconfigure_rebinds_metrics(self):
        hub = TelemetryHub()
        instance = make_instance(telemetry=hub)
        instance.inspect(b"needle-alpha", chain_id=CHAIN, flow_key="f")
        instance.reconfigure(instance.config)
        # The flow gauge must read the *new* scanner's (empty) flow table.
        assert hub.registry.value("dpi_active_flows", instance="dpi-t") == 0
        instance.inspect(b"needle-beta", chain_id=CHAIN, flow_key="g")
        assert hub.registry.value(
            "dpi_packets_scanned_total", instance="dpi-t"
        ) == 2


class TestPercentiles:
    def test_from_counts_interpolates_within_bucket(self):
        from repro.telemetry import percentile_from_counts

        bounds = (10.0, 20.0, 30.0)
        # 10 observations in (10, 20]: the median sits mid-bucket.
        counts = [0, 10, 0, 0]
        assert percentile_from_counts(bounds, counts, 0.50) == pytest.approx(
            15.0
        )
        assert percentile_from_counts(bounds, counts, 1.0) == pytest.approx(
            20.0
        )

    def test_from_counts_overflow_clamps_to_top_bound(self):
        from repro.telemetry import percentile_from_counts

        bounds = (10.0, 20.0)
        counts = [0, 0, 5]  # everything beyond the last finite bound
        assert percentile_from_counts(bounds, counts, 0.99) == 20.0

    def test_from_counts_empty_is_zero(self):
        from repro.telemetry import percentile_from_counts

        assert percentile_from_counts((1.0, 2.0), [0, 0, 0], 0.99) == 0.0

    def test_from_counts_validation(self):
        from repro.telemetry import percentile_from_counts

        with pytest.raises(ValueError, match="quantile"):
            percentile_from_counts((1.0,), [1, 1], 0.0)
        with pytest.raises(ValueError, match="quantile"):
            percentile_from_counts((1.0,), [1, 1], 1.5)
        with pytest.raises(ValueError, match="counts"):
            percentile_from_counts((1.0, 2.0), [1, 1], 0.5)

    def test_histogram_percentile_methods(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(99):
            hist.observe(0.05)
        hist.observe(5.0)  # one overflow outlier
        assert hist.percentile(0.50) <= 0.1
        assert hist.percentile(0.99) <= 1.0
        tail = hist.percentiles((0.50, 0.95, 0.99))
        assert sorted(tail) == [0.50, 0.95, 0.99]
        assert tail[0.50] <= tail[0.95] <= tail[0.99]

    def test_report_surfaces_tail_latency_columns(self):
        hub = TelemetryHub()
        instance = make_instance(telemetry=hub)
        for _ in range(10):
            instance.inspect(b"some needle-alpha traffic", chain_id=CHAIN, flow_key="f")
        rendered = render_report(hub)
        header = rendered.splitlines()
        header = [line for line in header if "p99 us" in line]
        assert header, rendered
        assert "p50 us" in header[0] and "p95 us" in header[0]
