"""Unit tests for trace file I/O."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.traces import (
    NO_FLOW,
    TraceFormatError,
    load_trace,
    save_trace,
)
from repro.workloads.traffic import Trace, TrafficGenerator


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        trace = Trace(payloads=[b"one", b"two", b""])
        path = tmp_path / "t.rtrc"
        written = save_trace(trace, path)
        assert written == path.stat().st_size
        loaded = load_trace(path)
        assert loaded.payloads == trace.payloads
        assert loaded.flow_ids is None

    def test_flow_ids_round_trip(self, tmp_path):
        trace = Trace(payloads=[b"a", b"b"], flow_ids=[7, 9])
        path = tmp_path / "t.rtrc"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.flow_ids == [7, 9]

    def test_generated_trace_round_trip(self, tmp_path, snort_like_small):
        generator = TrafficGenerator(seed=3)
        trace = generator.trace(40, patterns=snort_like_small, num_flows=4)
        path = tmp_path / "gen.rtrc"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.payloads == trace.payloads
        assert loaded.flow_ids == trace.flow_ids

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rtrc"
        save_trace(Trace(payloads=[]), path)
        assert load_trace(path).payloads == []

    def test_binary_payloads(self, tmp_path):
        trace = Trace(payloads=[bytes(range(256))])
        path = tmp_path / "bin.rtrc"
        save_trace(trace, path)
        assert load_trace(path).payloads == trace.payloads


class TestValidation:
    def test_flow_id_range_checked(self, tmp_path):
        trace = Trace(payloads=[b"x"], flow_ids=[NO_FLOW])
        with pytest.raises(ValueError):
            save_trace(trace, tmp_path / "bad.rtrc")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.rtrc"
        path.write_bytes(b"RT")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_truncated_payload(self, tmp_path):
        trace = Trace(payloads=[b"0123456789"])
        path = tmp_path / "t.rtrc"
        save_trace(trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-6])  # drop footer + payload tail
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_corrupt_payload_detected(self, tmp_path):
        trace = Trace(payloads=[b"0123456789"])
        path = tmp_path / "t.rtrc"
        save_trace(trace, path)
        blob = bytearray(path.read_bytes())
        blob[-7] ^= 0xFF  # flip a payload byte, keep framing intact
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="checksum"):
            load_trace(path)

    def test_trailing_bytes_rejected(self, tmp_path):
        trace = Trace(payloads=[b"abc"])
        path = tmp_path / "t.rtrc"
        save_trace(trace, path)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_unsupported_version(self, tmp_path):
        trace = Trace(payloads=[b"abc"])
        path = tmp_path / "t.rtrc"
        save_trace(trace, path)
        blob = bytearray(path.read_bytes())
        blob[4] = 99  # version byte
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)


@given(
    payloads=st.lists(st.binary(max_size=100), max_size=20),
    with_flows=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_round_trip_property(tmp_path_factory, payloads, with_flows):
    flow_ids = list(range(len(payloads))) if with_flows else None
    trace = Trace(payloads=payloads, flow_ids=flow_ids)
    path = tmp_path_factory.mktemp("traces") / "prop.rtrc"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.payloads == payloads
    assert loaded.flow_ids == flow_ids
