"""Unit tests for the JSON control-plane messages."""

import json

import pytest

from repro.core.messages import (
    AckMessage,
    AddPatternsMessage,
    ControlMessage,
    RegisterMiddleboxMessage,
    RemovePatternsMessage,
    UnregisterMiddleboxMessage,
)
from repro.core.patterns import Pattern, PatternKind


class TestRoundTrips:
    def test_register(self):
        message = RegisterMiddleboxMessage(
            middlebox_id=3,
            name="ids",
            stateful=True,
            read_only=True,
            stopping_condition=2048,
        )
        restored = ControlMessage.from_json(message.to_json())
        assert restored == message

    def test_register_with_inherit(self):
        message = RegisterMiddleboxMessage(middlebox_id=4, name="ids2", inherit_from=3)
        restored = ControlMessage.from_json(message.to_json())
        assert restored.inherit_from == 3

    def test_unregister(self):
        message = UnregisterMiddleboxMessage(middlebox_id=3)
        assert ControlMessage.from_json(message.to_json()) == message

    def test_add_patterns_binary_safe(self):
        patterns = [
            Pattern(0, b"\x00\xff binary \x7f"),
            Pattern(1, rb"reg\d+ex", kind=PatternKind.REGEX),
        ]
        message = AddPatternsMessage(middlebox_id=2, patterns=patterns)
        restored = ControlMessage.from_json(message.to_json())
        assert restored.patterns == patterns

    def test_remove_patterns(self):
        message = RemovePatternsMessage(middlebox_id=2, pattern_ids=[1, 5, 9])
        restored = ControlMessage.from_json(message.to_json())
        assert restored.pattern_ids == [1, 5, 9]

    def test_ack(self):
        message = AckMessage(ok=False, detail="boom")
        assert ControlMessage.from_json(message.to_json()) == message


class TestWireFormat:
    def test_type_discriminator_present(self):
        payload = json.loads(RegisterMiddleboxMessage(1, "x").to_json())
        assert payload["type"] == "register"

    def test_json_is_valid_and_sorted(self):
        text = AddPatternsMessage(1, [Pattern(0, b"abcd")]).to_json()
        payload = json.loads(text)
        assert "patterns" in payload
        # base64 payloads keep the wire format ASCII-only.
        assert text.isascii()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown message type"):
            ControlMessage.from_json('{"type": "bogus"}')

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError, match="no 'type'"):
            ControlMessage.from_json('{"middlebox_id": 1}')
