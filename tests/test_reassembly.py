"""Unit tests for TCP stream reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.net.reassembly import StreamReassembler, TCPReassembler


class TestStreamReassembler:
    def test_in_order_release(self):
        stream = StreamReassembler()
        assert stream.add_segment(0, b"abc") == b"abc"
        assert stream.add_segment(3, b"def") == b"def"
        assert stream.next_seq == 6

    def test_gap_buffers_until_filled(self):
        stream = StreamReassembler()
        assert stream.add_segment(3, b"def") == b""
        assert stream.buffered_bytes == 3
        assert stream.add_segment(0, b"abc") == b"abcdef"
        assert stream.buffered_bytes == 0

    def test_multiple_gaps(self):
        stream = StreamReassembler()
        assert stream.add_segment(6, b"ghi") == b""
        assert stream.add_segment(3, b"def") == b""
        assert stream.add_segment(0, b"abc") == b"abcdefghi"

    def test_retransmission_ignored(self):
        stream = StreamReassembler()
        stream.add_segment(0, b"abc")
        assert stream.add_segment(0, b"abc") == b""
        assert stream.stats.duplicate_segments == 1

    def test_partial_overlap_trimmed(self):
        stream = StreamReassembler()
        stream.add_segment(0, b"abc")
        # Retransmission of [1..3) plus fresh [3..5).
        assert stream.add_segment(1, b"bcde") == b"de"

    def test_overlapping_pending_segments(self):
        stream = StreamReassembler()
        assert stream.add_segment(2, b"cdef") == b""
        assert stream.add_segment(4, b"ef") == b""
        assert stream.add_segment(0, b"ab") == b"abcdef"

    def test_empty_segment(self):
        stream = StreamReassembler()
        assert stream.add_segment(0, b"") == b""
        assert stream.stats.segments == 1

    def test_nonzero_initial_seq(self):
        stream = StreamReassembler(initial_seq=1000)
        assert stream.add_segment(1000, b"xy") == b"xy"
        assert stream.next_seq == 1002

    def test_buffer_overflow_guard(self):
        stream = StreamReassembler()
        stream._pending[10] = b"x" * StreamReassembler.MAX_BUFFERED_BYTES
        with pytest.raises(BufferError):
            stream.add_segment(10 + StreamReassembler.MAX_BUFFERED_BYTES + 5, b"y")

    def test_stats_released(self):
        stream = StreamReassembler()
        stream.add_segment(0, b"abcd")
        assert stream.stats.bytes_released == 4


class TestTCPReassembler:
    def _packet(self, seq, payload, src_port=1000):
        return make_tcp_packet(
            MACAddress.from_index(0),
            MACAddress.from_index(1),
            IPv4Address("10.0.0.1"),
            IPv4Address("10.0.0.2"),
            src_port,
            80,
            payload=payload,
            seq=seq,
        )

    def test_flows_are_separate(self):
        reassembler = TCPReassembler()
        _, released_a = reassembler.add_packet(self._packet(0, b"aaa", src_port=1))
        _, released_b = reassembler.add_packet(self._packet(0, b"bbb", src_port=2))
        assert released_a == b"aaa" and released_b == b"bbb"
        assert len(reassembler) == 2

    def test_out_of_order_across_packets(self):
        reassembler = TCPReassembler()
        # The first segment anchors the stream; later segments may reorder.
        _, anchor = reassembler.add_packet(self._packet(0, b"abc"))
        assert anchor == b"abc"
        _, early = reassembler.add_packet(self._packet(6, b"ghi"))
        assert early == b""
        _, fill = reassembler.add_packet(self._packet(3, b"def"))
        assert fill == b"defghi"

    def test_initial_seq_anchored_at_first_segment(self):
        reassembler = TCPReassembler()
        _, released = reassembler.add_packet(self._packet(5000, b"hello"))
        assert released == b"hello"

    def test_udp_passes_through(self):
        reassembler = TCPReassembler()
        packet = make_udp_packet(
            MACAddress.from_index(0),
            MACAddress.from_index(1),
            IPv4Address("10.0.0.1"),
            IPv4Address("10.0.0.2"),
            53,
            53,
            payload=b"dns query",
        )
        _, released = reassembler.add_packet(packet)
        assert released == b"dns query"
        assert len(reassembler) == 0  # no stream state kept

    def test_close_flow(self):
        reassembler = TCPReassembler()
        flow_key, _ = reassembler.add_packet(self._packet(0, b"abc"))
        assert reassembler.close_flow(flow_key) is not None
        assert reassembler.close_flow(flow_key) is None


@given(
    stream=st.binary(min_size=1, max_size=200),
    cuts=st.lists(st.integers(min_value=1, max_value=199), max_size=8),
    order_seed=st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=150, deadline=None)
def test_any_segmentation_and_order_reassembles(stream, cuts, order_seed):
    """Property: any segmentation, delivered in any order with arbitrary
    duplication, releases exactly the original stream."""
    import random

    boundaries = sorted({0, len(stream), *[c for c in cuts if c < len(stream)]})
    segments = [
        (boundaries[i], stream[boundaries[i] : boundaries[i + 1]])
        for i in range(len(boundaries) - 1)
    ]
    rng = random.Random(order_seed)
    shuffled = list(segments)
    rng.shuffle(shuffled)
    # Duplicate a random subset (retransmissions).
    shuffled += [s for s in segments if rng.random() < 0.3]
    reassembler = StreamReassembler()
    released = b"".join(reassembler.add_segment(seq, data) for seq, data in shuffled)
    assert released == stream
    assert reassembler.buffered_bytes == 0
