"""Unit tests for TCP stream reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.net.reassembly import StreamReassembler, TCPReassembler


class TestStreamReassembler:
    def test_in_order_release(self):
        stream = StreamReassembler()
        assert stream.add_segment(0, b"abc") == b"abc"
        assert stream.add_segment(3, b"def") == b"def"
        assert stream.next_seq == 6

    def test_gap_buffers_until_filled(self):
        stream = StreamReassembler()
        assert stream.add_segment(3, b"def") == b""
        assert stream.buffered_bytes == 3
        assert stream.add_segment(0, b"abc") == b"abcdef"
        assert stream.buffered_bytes == 0

    def test_multiple_gaps(self):
        stream = StreamReassembler()
        assert stream.add_segment(6, b"ghi") == b""
        assert stream.add_segment(3, b"def") == b""
        assert stream.add_segment(0, b"abc") == b"abcdefghi"

    def test_retransmission_ignored(self):
        stream = StreamReassembler()
        stream.add_segment(0, b"abc")
        assert stream.add_segment(0, b"abc") == b""
        assert stream.stats.duplicate_segments == 1

    def test_partial_overlap_trimmed(self):
        stream = StreamReassembler()
        stream.add_segment(0, b"abc")
        # Retransmission of [1..3) plus fresh [3..5).
        assert stream.add_segment(1, b"bcde") == b"de"

    def test_overlapping_pending_segments(self):
        stream = StreamReassembler()
        assert stream.add_segment(2, b"cdef") == b""
        assert stream.add_segment(4, b"ef") == b""
        assert stream.add_segment(0, b"ab") == b"abcdef"

    def test_empty_segment(self):
        stream = StreamReassembler()
        assert stream.add_segment(0, b"") == b""
        assert stream.stats.segments == 1

    def test_nonzero_initial_seq(self):
        stream = StreamReassembler(initial_seq=1000)
        assert stream.add_segment(1000, b"xy") == b"xy"
        assert stream.next_seq == 1002

    def test_buffer_overflow_drops_segment(self):
        # Overflow is a drop decision, not an exception: the segment is
        # discarded, counted, and reported through the hook.
        drops = []
        stream = StreamReassembler(
            max_buffered=4, on_overflow=lambda seq, n: drops.append((seq, n))
        )
        assert stream.add_segment(10, b"wxyz") == b""
        assert stream.add_segment(20, b"q") == b""
        assert stream.stats.overflow_drops == 1
        assert drops == [(20, 1)]
        assert stream.buffered_bytes == 4
        # The stream stays usable: filling the gap releases what survived.
        assert stream.add_segment(0, b"0123456789") == b"0123456789wxyz"

    def test_overflow_exempts_in_order_data(self):
        # An in-order segment never needs buffering, so a full buffer must
        # not drop it.
        stream = StreamReassembler(max_buffered=3)
        assert stream.add_segment(5, b"fgh") == b""
        assert stream.buffered_bytes == 3
        assert stream.add_segment(0, b"abcde") == b"abcdefgh"
        assert stream.stats.overflow_drops == 0

    def test_stats_released(self):
        stream = StreamReassembler()
        stream.add_segment(0, b"abcd")
        assert stream.stats.bytes_released == 4

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            StreamReassembler(policy="middle")
        with pytest.raises(ValueError):
            TCPReassembler(policy="middle")

    def test_rejects_nonpositive_max_buffered(self):
        with pytest.raises(ValueError):
            StreamReassembler(max_buffered=0)


class TestOverlapPolicies:
    """The ambiguity classes the fingerprinting paper exploits: two
    segments claim the same range with different content, and the policy
    decides which bytes the scanner sees."""

    def test_first_wins_conflicting_pending_overlap(self):
        stream = StreamReassembler(policy="first")
        assert stream.add_segment(2, b"CDEF") == b""
        # Conflicting rewrite of [2..6) plus fresh tail [6..8).
        assert stream.add_segment(2, b"xxxxGH") == b""
        assert stream.add_segment(0, b"AB") == b"ABCDEFGH"
        assert stream.stats.conflicting_bytes == 4
        assert stream.stats.overlapping_segments == 1

    def test_last_wins_conflicting_pending_overlap(self):
        stream = StreamReassembler(policy="last")
        assert stream.add_segment(2, b"CDEF") == b""
        assert stream.add_segment(2, b"xxxxGH") == b""
        assert stream.add_segment(0, b"AB") == b"ABxxxxGH"
        assert stream.stats.conflicting_bytes == 4

    def test_last_wins_splits_covering_segment(self):
        # A rewrite strictly inside a buffered segment splits it: head and
        # tail of the old data survive, the middle is replaced.
        stream = StreamReassembler(policy="last")
        assert stream.add_segment(1, b"BCDEF") == b""
        assert stream.add_segment(3, b"xx") == b""
        assert stream.add_segment(0, b"A") == b"ABCxxF"

    def test_first_wins_fills_only_gaps(self):
        # Under first-wins the same rewrite contributes nothing where data
        # already exists, but still fills genuine gaps around it.
        stream = StreamReassembler(policy="first")
        assert stream.add_segment(2, b"CD") == b""
        assert stream.add_segment(6, b"GH") == b""
        # Covers [1..8): only [1..2) and [4..6) are new under first-wins.
        assert stream.add_segment(1, b"bcdefgh") == b""
        assert stream.add_segment(0, b"A") == b"AbCDefGH"

    def test_retransmission_with_changed_payload_after_release(self):
        # Released bytes are immutable under either policy: a changed
        # retransmission of consumed data is dropped as a duplicate.
        for policy in ("first", "last"):
            stream = StreamReassembler(policy=policy)
            assert stream.add_segment(0, b"abc") == b"abc"
            assert stream.add_segment(0, b"XYZ") == b""
            assert stream.stats.duplicate_segments == 1
            assert stream.next_seq == 3

    def test_changed_retransmission_straddling_release_point(self):
        # The portion covering released bytes is trimmed; only the policy
        # governs the (pending) remainder.
        stream = StreamReassembler(policy="last")
        assert stream.add_segment(0, b"abc") == b"abc"
        assert stream.add_segment(4, b"E") == b""
        # [1..3) is already released and stays "bc"; [3..5)="Ze" replaces
        # the buffered "E" at 4 because the newest segment wins.
        assert stream.add_segment(1, b"XYZe") == b"Ze"

    def test_zero_length_keepalives_counted_not_buffered(self):
        stream = StreamReassembler()
        assert stream.add_segment(0, b"ab") == b"ab"
        # Keepalive probes at, before, and past the release point.
        assert stream.add_segment(2, b"") == b""
        assert stream.add_segment(0, b"") == b""
        assert stream.add_segment(50, b"") == b""
        assert stream.stats.keepalives == 3
        assert stream.buffered_bytes == 0
        assert stream.add_segment(2, b"cd") == b"cd"


class TestTCPReassembler:
    def _packet(self, seq, payload, src_port=1000):
        return make_tcp_packet(
            MACAddress.from_index(0),
            MACAddress.from_index(1),
            IPv4Address("10.0.0.1"),
            IPv4Address("10.0.0.2"),
            src_port,
            80,
            payload=payload,
            seq=seq,
        )

    def test_flows_are_separate(self):
        reassembler = TCPReassembler()
        _, released_a = reassembler.add_packet(self._packet(0, b"aaa", src_port=1))
        _, released_b = reassembler.add_packet(self._packet(0, b"bbb", src_port=2))
        assert released_a == b"aaa" and released_b == b"bbb"
        assert len(reassembler) == 2

    def test_out_of_order_across_packets(self):
        reassembler = TCPReassembler()
        # The first segment anchors the stream; later segments may reorder.
        _, anchor = reassembler.add_packet(self._packet(0, b"abc"))
        assert anchor == b"abc"
        _, early = reassembler.add_packet(self._packet(6, b"ghi"))
        assert early == b""
        _, fill = reassembler.add_packet(self._packet(3, b"def"))
        assert fill == b"defghi"

    def test_initial_seq_anchored_at_first_segment(self):
        reassembler = TCPReassembler()
        _, released = reassembler.add_packet(self._packet(5000, b"hello"))
        assert released == b"hello"

    def test_udp_passes_through(self):
        reassembler = TCPReassembler()
        packet = make_udp_packet(
            MACAddress.from_index(0),
            MACAddress.from_index(1),
            IPv4Address("10.0.0.1"),
            IPv4Address("10.0.0.2"),
            53,
            53,
            payload=b"dns query",
        )
        _, released = reassembler.add_packet(packet)
        assert released == b"dns query"
        assert len(reassembler) == 0  # no stream state kept

    def test_close_flow(self):
        reassembler = TCPReassembler()
        flow_key, _ = reassembler.add_packet(self._packet(0, b"abc"))
        assert reassembler.close_flow(flow_key) is not None
        assert reassembler.close_flow(flow_key) is None

    def test_policy_and_cap_passed_to_streams(self):
        reassembler = TCPReassembler(policy="last", max_buffered=8)
        flow_key, _ = reassembler.add_packet(self._packet(0, b"abc"))
        stream = reassembler.stream_of(flow_key)
        assert stream.policy == "last"
        assert stream.max_buffered == 8

    def test_overflow_counter_exported(self):
        from repro.telemetry import TelemetryHub

        hub = TelemetryHub(clock=lambda: 0.0, tracing=False)
        reassembler = TCPReassembler(max_buffered=1)
        reassembler.bind_metrics(hub.registry, "dpi-0")
        # The first packet anchors and releases; the second leaves a gap
        # and carries more out-of-order bytes than the cap allows.
        reassembler.add_packet(self._packet(10, b"xy"))
        reassembler.add_packet(self._packet(20, b"zz"))
        assert reassembler.stats.overflow_drops == 1
        counter = hub.registry.counter(
            "dpi_reassembly_overflow_total", instance="dpi-0"
        )
        assert counter.value == 1


@given(
    stream=st.binary(min_size=1, max_size=200),
    cuts=st.lists(st.integers(min_value=1, max_value=199), max_size=8),
    order_seed=st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=150, deadline=None)
def test_any_segmentation_and_order_reassembles(stream, cuts, order_seed):
    """Property: any segmentation, delivered in any order with arbitrary
    duplication, releases exactly the original stream."""
    import random

    boundaries = sorted({0, len(stream), *[c for c in cuts if c < len(stream)]})
    segments = [
        (boundaries[i], stream[boundaries[i] : boundaries[i + 1]])
        for i in range(len(boundaries) - 1)
    ]
    rng = random.Random(order_seed)
    shuffled = list(segments)
    rng.shuffle(shuffled)
    # Duplicate a random subset (retransmissions).
    shuffled += [s for s in segments if rng.random() < 0.3]
    reassembler = StreamReassembler()
    released = b"".join(reassembler.add_segment(seq, data) for seq, data in shuffled)
    assert released == stream
    assert reassembler.buffered_bytes == 0
