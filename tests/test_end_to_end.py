"""End-to-end integration: the full DPI-as-a-service system on the
simulated SDN (the paper's Mininet validation, Section 6.1).

Topology: user1 -> s1 -> { dpi1, mb1 (IDS), mb2 (AV) } -> user2, with the
TSA steering the ``user1 -> user2`` web traffic through the policy chain
``ids -> av``, rewritten by the DPI controller to ``dpi -> ids -> av``.
"""

import pytest

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import build_paper_topology

ATTACK_SIGNATURE = b"GET /cgi-bin/evil"
VIRUS_SIGNATURE = b"VIRUS-BODY-MARKER"


@pytest.fixture
def system():
    """The full system, wired and realized."""
    topo = build_paper_topology()
    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    # Middleboxes and their signatures.
    ids = IntrusionDetectionSystem(middlebox_id=1)
    ids.add_signature(10, ATTACK_SIGNATURE, severity="high")
    av = AntiVirus(middlebox_id=2)
    av.add_signature(20, VIRUS_SIGNATURE)

    # DPI control plane: registration + chains + TSA negotiation.
    dpi_controller = DPIController()
    ids.register_with(dpi_controller)
    av.register_with(dpi_controller)
    tsa.register_middlebox_instance("ids", "mb1")
    tsa.register_middlebox_instance("av", "mb2")
    tsa.register_middlebox_instance("dpi", "dpi1")
    tsa.add_policy_chain(PolicyChain("web", ("ids", "av")))
    dpi_controller.attach_tsa(tsa)

    # The DPI controller rewrote the chain to put the service first.
    assert tsa.chains["web"].middlebox_types == ("dpi", "ids", "av")

    tsa.assign_traffic(TrafficAssignment("user1", "user2", "web"))
    tsa.realize()

    # Data plane: instantiate the service and place functions on hosts.
    instance = dpi_controller.instances.provision("dpi1")
    topo.hosts["dpi1"].set_function(DPIServiceFunction(instance))
    topo.hosts["mb1"].set_function(MiddleboxChainFunction(ids))
    topo.hosts["mb2"].set_function(MiddleboxChainFunction(av))
    return {
        "topo": topo,
        "tsa": tsa,
        "dpi_controller": dpi_controller,
        "instance": instance,
        "ids": ids,
        "av": av,
    }


def send(topo, payload, src="user1", dst="user2", src_port=40000):
    src_host, dst_host = topo.hosts[src], topo.hosts[dst]
    packet = make_tcp_packet(
        src_host.mac, dst_host.mac, src_host.ip, dst_host.ip,
        src_port, 80, payload=payload,
    )
    src_host.send(packet)
    topo.run()
    return packet


def data_packets(host):
    return [p for p in host.received_packets if not p.is_result_packet]


def result_packets(host):
    return [p for p in host.received_packets if p.is_result_packet]


class TestCleanTraffic:
    def test_clean_packet_delivered_unmodified(self, system):
        packet = send(system["topo"], b"hello clean world")
        received = data_packets(system["topo"].hosts["user2"])
        assert len(received) == 1
        assert received[0].payload == packet.payload
        assert received[0].outer_vlan is None
        assert not received[0].is_marked_matched
        # No result packet was generated.
        assert result_packets(system["topo"].hosts["user2"]) == []

    def test_clean_packet_scanned_once(self, system):
        send(system["topo"], b"hello clean world")
        assert system["instance"].telemetry.packets_scanned == 1
        # Middleboxes processed it without any scanning of their own.
        assert system["ids"].stats.packets_processed == 1
        assert system["av"].stats.packets_processed == 1


class TestMaliciousTraffic:
    def test_ids_alert_via_service_results(self, system):
        send(system["topo"], b"x" + ATTACK_SIGNATURE + b" HTTP/1.1")
        ids = system["ids"]
        assert len(ids.alerts) == 1
        assert ids.alerts[0].rule_id == 10
        assert ids.stats.reports_consumed == 1
        # IDS is read-only: the packet still reached the destination.
        assert len(data_packets(system["topo"].hosts["user2"])) == 1

    def test_marked_packet_carries_ecn(self, system):
        send(system["topo"], ATTACK_SIGNATURE)
        received = data_packets(system["topo"].hosts["user2"])
        assert received[0].is_marked_matched

    def test_av_drops_infected_packet(self, system):
        send(system["topo"], b"payload " + VIRUS_SIGNATURE)
        user2 = system["topo"].hosts["user2"]
        assert data_packets(user2) == []
        assert system["av"].stats.packets_dropped == 1

    def test_av_quarantines_flow(self, system):
        send(system["topo"], VIRUS_SIGNATURE, src_port=41000)
        send(system["topo"], b"follow-up clean data", src_port=41000)
        # Second packet of the quarantined flow dropped without matches.
        assert data_packets(system["topo"].hosts["user2"]) == []
        assert system["av"].stats.packets_dropped == 2

    def test_both_middleboxes_served_by_one_scan(self, system):
        send(system["topo"], ATTACK_SIGNATURE + b" " + VIRUS_SIGNATURE)
        assert system["instance"].telemetry.packets_scanned == 1
        assert len(system["ids"].alerts) == 1
        assert system["av"].stats.packets_dropped == 1


class TestResultPlumbing:
    def test_result_packet_reaches_middleboxes_in_order(self, system):
        send(system["topo"], ATTACK_SIGNATURE)
        # user2 sees the data packet and the result packet (it ignores it).
        user2 = system["topo"].hosts["user2"]
        assert len(result_packets(user2)) == 1
        assert len(data_packets(user2)) == 1

    def test_no_buffering_leak(self, system):
        for index in range(5):
            send(system["topo"], b"clean %d" % index, src_port=42000 + index)
        send(system["topo"], ATTACK_SIGNATURE, src_port=42999)
        for host_name in ("mb1", "mb2"):
            function = system["topo"].hosts[host_name].function
            assert function._pending_data == {}
            assert function._pending_reports == {}

    def test_flow_state_kept_at_instance(self, system):
        """Stateful middleboxes (IDS, AV) make the instance track flows."""
        send(system["topo"], b"some flow data", src_port=43000)
        assert len(system["instance"].scanner.flow_table) == 1

    def test_cross_packet_detection(self, system):
        half = len(ATTACK_SIGNATURE) // 2
        send(system["topo"], ATTACK_SIGNATURE[:half], src_port=44000)
        assert system["ids"].alerts == []
        send(system["topo"], ATTACK_SIGNATURE[half:], src_port=44000)
        assert len(system["ids"].alerts) == 1


class TestControlPlane:
    def test_pattern_update_propagates(self, system):
        from repro.core.messages import AddPatternsMessage
        from repro.core.patterns import Pattern

        controller = system["dpi_controller"]
        ack = controller.handle_message(
            AddPatternsMessage(
                middlebox_id=1, patterns=[Pattern(11, b"NEW-THREAT-SIG")]
            )
        )
        assert ack.ok
        controller.instances.refresh()
        send(system["topo"], b"a NEW-THREAT-SIG appears", src_port=45000)
        # Rule 11 does not exist on the IDS rule engine, but the match is
        # reported; add the rule and send again to see the alert.
        system["ids"].engine.add_rule(
            __import__("repro.middleboxes.base", fromlist=["Rule"]).Rule(
                rule_id=11, pattern_ids=(11,)
            )
        )
        send(system["topo"], b"a NEW-THREAT-SIG again", src_port=45001)
        assert any(alert.rule_id == 11 for alert in system["ids"].alerts)

    def test_telemetry_collected_centrally(self, system):
        send(system["topo"], b"clean")
        telemetry = system["dpi_controller"].telemetry_snapshot().instances
        assert telemetry["dpi1"]["packets_scanned"] == 1


class TestRegexOverTheWire:
    def test_regex_signature_detected_end_to_end(self, system):
        """A regex rule: anchors pre-filtered by the combined automaton,
        confirmed by the engine, reported over the wire, alerted by the
        IDS — all on the simulated network."""
        from repro.core.messages import AddPatternsMessage
        from repro.core.patterns import Pattern, PatternKind
        from repro.middleboxes.base import Rule

        controller = system["dpi_controller"]
        ack = controller.handle_message(
            AddPatternsMessage(
                middlebox_id=1,
                patterns=[
                    Pattern(
                        pattern_id=12,
                        data=rb"password=\w{1,16}",
                        kind=PatternKind.REGEX,
                    )
                ],
            )
        )
        assert ack.ok
        controller.instances.refresh()
        system["ids"].engine.add_rule(Rule(rule_id=12, pattern_ids=(12,)))

        send(system["topo"], b"POST /login password=hunter2", src_port=49000)
        assert any(a.rule_id == 12 for a in system["ids"].alerts)
        # Anchor-only traffic ("password" without the full expression shape)
        # must not alert... "password=" needs a word char after it.
        system["ids"].alerts.clear()
        send(system["topo"], b"the word password appears alone", src_port=49001)
        assert system["ids"].alerts == []
