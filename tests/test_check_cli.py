"""End-to-end CLI tests for ``repro-dpi check`` and ``repro-dpi lint``.

These exercise the real ``main()`` entry point: exit codes, the text
report on stdout, and the JSON document shape, including every fault
the check command can inject into the figure-5 scenario.
"""

import json

import pytest

from repro.cli import CHECK_FAULTS, main

# Which validator code each injectable fault must surface as an ERROR.
FAULT_CODES = {
    "ghost-chain": "CHAIN001",
    "overlap-chain": "CHAIN002",
    "orphan-rule": "STEER001",
    "duplicate-rule": "FLOW002",
    "dangling-assignment": "CHAIN003",
}


def test_fault_table_matches_cli_registry():
    assert sorted(FAULT_CODES) == sorted(CHECK_FAULTS)


def test_check_clean_scenario_exits_zero(capsys):
    assert main(["check", "figure5"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


@pytest.mark.parametrize("fault", sorted(FAULT_CODES))
def test_check_injected_fault_fails_with_its_code(fault, capsys):
    assert main(["check", "figure5", "--inject", fault]) == 1
    out = capsys.readouterr().out
    assert FAULT_CODES[fault] in out
    assert "ERROR" in out
    # The report stays readable: one issue line plus the summary.
    assert out.splitlines()[-1].endswith("warning(s)")


def test_check_multiple_faults_compose(capsys):
    argv = ["check", "figure5", "--inject", "ghost-chain",
            "--inject", "duplicate-rule"]
    assert main(argv) == 1
    out = capsys.readouterr().out
    assert "CHAIN001" in out and "FLOW002" in out


def test_check_json_document_shape(capsys):
    assert main(["check", "figure5", "--inject", "orphan-rule",
                 "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["errors"] >= 1
    assert {"code", "severity", "subject", "message"} <= set(
        document["issues"][0]
    )
    assert any(i["code"] == "STEER001" for i in document["issues"])


def test_check_json_clean_has_no_issues(capsys):
    assert main(["check", "figure5", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["errors"] == 0
    assert document["issues"] == []


def test_check_rejects_unknown_fault(capsys):
    with pytest.raises(SystemExit):
        main(["check", "figure5", "--inject", "not-a-fault"])


# --- lint CLI ---------------------------------------------------------------

BAD_MODULE = (
    "import time\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


def write_sim_module(tmp_path, source):
    module_dir = tmp_path / "repro" / "core"
    module_dir.mkdir(parents=True)
    path = module_dir / "mod.py"
    path.write_text(source)
    return path


def test_lint_flags_bad_file_and_exits_one(tmp_path, capsys):
    path = write_sim_module(tmp_path, BAD_MODULE)
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "1 finding(s)" in out


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    path = write_sim_module(tmp_path, "def stamp(now):\n    return now\n")
    assert main(["lint", str(path)]) == 0
    assert capsys.readouterr().out == "no findings\n"


def test_lint_json_output(tmp_path, capsys):
    path = write_sim_module(tmp_path, BAD_MODULE)
    assert main(["lint", str(path), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["findings"][0]["code"] == "DET001"
    assert document["findings"][0]["path"].endswith("mod.py")


def test_lint_without_paths_exits_two(capsys):
    assert main(["lint"]) == 2
    assert "no paths given" in capsys.readouterr().err


def test_lint_self_is_clean(capsys):
    assert main(["lint", "--self"]) == 0
    assert capsys.readouterr().out == "no findings\n"
