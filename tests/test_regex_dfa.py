"""Unit and property tests for the determinized regex engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nfa import RegexNFA
from repro.core.regex_dfa import RegexDFA, StateExplosionError


class TestBasics:
    def test_single_expression(self):
        dfa = RegexDFA([rb"ab+c"])
        assert dfa.match_ends(b"xxabbbc abc") == [7, 11]

    def test_search(self):
        dfa = RegexDFA([rb"\d{3}"])
        assert dfa.search(b"code 404")
        assert not dfa.search(b"no digits")

    def test_multiple_expressions_attributed(self):
        dfa = RegexDFA([rb"cat", rb"dog"])
        matches = dfa.scan(b"cat dog cat")
        assert (3, 0) in matches
        assert (7, 1) in matches
        assert (11, 0) in matches

    def test_overlapping_expressions(self):
        dfa = RegexDFA([rb"abc", rb"bc"])
        matches = dfa.scan(b"abc")
        assert sorted(matches) == [(3, 0), (3, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            RegexDFA([])
        with pytest.raises(ValueError):
            RegexDFA([rb"x"], max_states=0)

    def test_memory_accounting(self):
        dfa = RegexDFA([rb"abcd"])
        assert dfa.memory_bytes == dfa.num_states * 1024


class TestStateExplosion:
    def test_single_counted_expression_is_modest(self):
        dfa = RegexDFA([rb"a.{6}b"])
        assert dfa.num_states < 300

    def test_combining_expressions_explodes(self):
        """The paper's Section 3 claim: combining a few expressions into
        one DFA explodes its state count."""
        single = RegexDFA([rb"a.{6}b"]).num_states
        double = RegexDFA([rb"a.{6}b", rb"c.{6}d"]).num_states
        assert double > single * 2.5  # superlinear growth

    def test_explosion_capped(self):
        expressions = [
            rb"a.{10}b",
            rb"c.{10}d",
            rb"e.{10}f",
            rb"g.{10}h",
        ]
        with pytest.raises(StateExplosionError):
            RegexDFA(expressions, max_states=2000)


def _to_bytes(raw):
    return bytes(b % 4 + 0x61 for b in raw)


_atom = st.sampled_from([b"a", b"b", b".", b"[ab]", b"c?"])
_suffix = st.sampled_from([b"", b"+", b"{1,2}"])


@st.composite
def simple_regex(draw):
    pieces = []
    for _ in range(draw(st.integers(1, 3))):
        pieces.append(draw(_atom) + draw(_suffix))
    return b"".join(pieces)


@given(
    pattern=simple_regex(),
    data=st.binary(min_size=0, max_size=30).map(_to_bytes),
)
@settings(max_examples=150, deadline=None)
def test_dfa_equals_nfa(pattern, data):
    """Subset construction preserves the NFA's all-ends semantics."""
    try:
        nfa = RegexNFA(pattern)
    except Exception:
        return  # e.g. empty-matching expression
    dfa = RegexDFA([pattern])
    assert dfa.match_ends(data) == nfa.match_ends(data)


@given(
    first=simple_regex(),
    second=simple_regex(),
    data=st.binary(min_size=0, max_size=25).map(_to_bytes),
)
@settings(max_examples=100, deadline=None)
def test_combined_dfa_equals_separate_nfas(first, second, data):
    try:
        nfa_first = RegexNFA(first)
        nfa_second = RegexNFA(second)
    except Exception:
        return
    dfa = RegexDFA([first, second])
    assert dfa.match_ends(data, index=0) == nfa_first.match_ends(data)
    assert dfa.match_ends(data, index=1) == nfa_second.match_ends(data)


class TestMinimization:
    def test_minimize_preserves_matches(self):
        dfa = RegexDFA([rb"ab+c", rb"[0-9]{2}x"])
        data = b"abbbc 42x abc"
        expected = sorted(dfa.scan(data))
        dfa.minimize()
        assert sorted(dfa.scan(data)) == expected

    def test_minimize_reduces_redundant_states(self):
        # Alternation of equivalent-suffix branches leaves mergeable states.
        dfa = RegexDFA([rb"(?:xa|ya)bcd"])
        before = dfa.num_states
        removed = dfa.minimize()
        assert removed > 0
        assert dfa.num_states == before - removed

    def test_minimize_idempotent(self):
        dfa = RegexDFA([rb"ab+c"])
        dfa.minimize()
        assert dfa.minimize() == 0

    def test_minimize_keeps_attribution(self):
        dfa = RegexDFA([rb"cat", rb"dog"])
        dfa.minimize()
        matches = dfa.scan(b"cat dog")
        assert (3, 0) in matches and (7, 1) in matches


@given(
    pattern=simple_regex(),
    data=st.binary(min_size=0, max_size=30).map(_to_bytes),
)
@settings(max_examples=100, deadline=None)
def test_minimized_dfa_equals_nfa(pattern, data):
    try:
        nfa = RegexNFA(pattern)
    except Exception:
        return
    dfa = RegexDFA([pattern])
    dfa.minimize()
    assert dfa.match_ends(data) == nfa.match_ends(data)
