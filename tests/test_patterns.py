"""Unit tests for the pattern model and the global registry."""

import pytest

from repro.core.patterns import (
    GlobalPatternRegistry,
    Pattern,
    PatternKind,
    PatternSet,
)


class TestPattern:
    def test_basic(self):
        pattern = Pattern(pattern_id=3, data=b"abcd")
        assert pattern.kind is PatternKind.LITERAL
        assert len(pattern) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pattern(pattern_id=0, data=b"")

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Pattern(pattern_id=-1, data=b"x")

    def test_str_data_rejected(self):
        with pytest.raises(TypeError):
            Pattern(pattern_id=0, data="text")

    def test_canonical_key_ignores_id(self):
        a = Pattern(pattern_id=0, data=b"same")
        b = Pattern(pattern_id=9, data=b"same")
        assert a.canonical_key == b.canonical_key

    def test_canonical_key_distinguishes_kind(self):
        literal = Pattern(pattern_id=0, data=b"a+b")
        regex = Pattern(pattern_id=0, data=b"a+b", kind=PatternKind.REGEX)
        assert literal.canonical_key != regex.canonical_key


class TestPatternSet:
    def test_from_literals(self):
        pattern_set = PatternSet.from_literals("snort", [b"aaaa", b"bbbb"])
        assert len(pattern_set) == 2
        assert pattern_set.get(0).data == b"aaaa"

    def test_duplicate_id_rejected(self):
        pattern_set = PatternSet("s")
        pattern_set.add(Pattern(0, b"one1"))
        with pytest.raises(ValueError):
            pattern_set.add(Pattern(0, b"two2"))

    def test_remove(self):
        pattern_set = PatternSet.from_literals("s", [b"aaaa"])
        removed = pattern_set.remove(0)
        assert removed.data == b"aaaa"
        assert len(pattern_set) == 0
        with pytest.raises(KeyError):
            pattern_set.remove(0)

    def test_iteration_sorted_by_id(self):
        pattern_set = PatternSet("s")
        pattern_set.add(Pattern(5, b"five"))
        pattern_set.add(Pattern(1, b"one1"))
        assert [p.pattern_id for p in pattern_set] == [1, 5]

    def test_literals_and_regexes_split(self):
        pattern_set = PatternSet("s")
        pattern_set.add(Pattern(0, b"literal"))
        pattern_set.add(Pattern(1, b"a\\d+b", kind=PatternKind.REGEX))
        assert [p.pattern_id for p in pattern_set.literals] == [0]
        assert [p.pattern_id for p in pattern_set.regexes] == [1]

    def test_total_bytes(self):
        pattern_set = PatternSet.from_literals("s", [b"12345678", b"1234"])
        assert pattern_set.total_bytes() == 12

    def test_contains(self):
        pattern_set = PatternSet.from_literals("s", [b"aaaa"])
        assert 0 in pattern_set
        assert 1 not in pattern_set


class TestGlobalPatternRegistry:
    def test_dedup_same_content(self):
        registry = GlobalPatternRegistry()
        id_a = registry.add(1, Pattern(10, b"shared"))
        id_b = registry.add(2, Pattern(20, b"shared"))
        assert id_a == id_b
        assert len(registry) == 1
        assert registry.referrers_of(id_a) == [(1, 10), (2, 20)]

    def test_distinct_content_gets_distinct_ids(self):
        registry = GlobalPatternRegistry()
        id_a = registry.add(1, Pattern(0, b"one1"))
        id_b = registry.add(1, Pattern(1, b"two2"))
        assert id_a != id_b

    def test_removal_keeps_pattern_until_last_referrer(self):
        """The paper: a pattern is removed only when no other middlebox
        still refers to it."""
        registry = GlobalPatternRegistry()
        registry.add(1, Pattern(10, b"shared"))
        registry.add(2, Pattern(20, b"shared"))
        freed = registry.remove(1, Pattern(10, b"shared"))
        assert not freed
        assert len(registry) == 1
        freed = registry.remove(2, Pattern(20, b"shared"))
        assert freed
        assert len(registry) == 0

    def test_remove_unknown_pattern_raises(self):
        registry = GlobalPatternRegistry()
        with pytest.raises(KeyError):
            registry.remove(1, Pattern(0, b"ghost"))

    def test_remove_wrong_referrer_raises(self):
        registry = GlobalPatternRegistry()
        registry.add(1, Pattern(0, b"solo"))
        with pytest.raises(KeyError):
            registry.remove(2, Pattern(0, b"solo"))

    def test_remove_middlebox(self):
        registry = GlobalPatternRegistry()
        registry.add(1, Pattern(0, b"only-mine"))
        registry.add(1, Pattern(1, b"shared"))
        registry.add(2, Pattern(0, b"shared"))
        freed = registry.remove_middlebox(1)
        assert freed == 1  # only-mine freed; shared kept for middlebox 2
        assert len(registry) == 1

    def test_internal_ids_not_reused(self):
        registry = GlobalPatternRegistry()
        first = registry.add(1, Pattern(0, b"gone"))
        registry.remove(1, Pattern(0, b"gone"))
        second = registry.add(1, Pattern(0, b"newp"))
        assert second != first

    def test_pattern_sets_by_middlebox(self):
        registry = GlobalPatternRegistry()
        registry.add(1, Pattern(0, b"alpha"))
        registry.add(1, Pattern(1, b"beta1"))
        registry.add(2, Pattern(5, b"alpha"))
        sets = registry.pattern_sets_by_middlebox()
        assert sorted(p.data for p in sets[1]) == [b"alpha", b"beta1"]
        assert [p.pattern_id for p in sets[2]] == [5]

    def test_same_middlebox_two_rules_same_pattern(self):
        """One middlebox may register the same content under two rule ids."""
        registry = GlobalPatternRegistry()
        internal = registry.add(1, Pattern(10, b"twice"))
        assert registry.add(1, Pattern(11, b"twice")) == internal
        registry.remove(1, Pattern(10, b"twice"))
        assert len(registry) == 1
