"""Property test: anchor extraction is *sound*.

For every extracted anchor A of a regex R: every string matched by R must
contain A.  The strategy builds a random regex together with a string that
matches it by construction (each gadget contributes both its regex source
and one concrete realization), then checks every anchor appears in the
string.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anchors import extract_anchors

# Each gadget: (regex fragment, one possible realization)
_WORDS = [b"alpha", b"bravo", b"charlie", b"delta", b"echo-12", b"fox.trot"]


@st.composite
def gadget(draw):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        word = draw(st.sampled_from(_WORDS))
        return re.escape(word), word
    if kind == 1:
        digits = draw(st.integers(1, 4))
        return rb"\d+", b"7" * digits
    if kind == 2:
        return rb"\s*", b" " * draw(st.integers(0, 2))
    if kind == 3:
        word = draw(st.sampled_from(_WORDS))
        present = draw(st.booleans())
        return rb"(?:" + re.escape(word) + rb")?", word if present else b""
    if kind == 4:
        left = draw(st.sampled_from(_WORDS))
        right = draw(st.sampled_from(_WORDS))
        pick_left = draw(st.booleans())
        return (
            rb"(?:" + re.escape(left) + rb"|" + re.escape(right) + rb")",
            left if pick_left else right,
        )
    if kind == 5:
        return rb"[a-z]{2}", bytes(draw(st.sampled_from([b"ab", b"zz", b"qx"])))
    word = draw(st.sampled_from(_WORDS))
    repeats = draw(st.integers(1, 3))
    return rb"(?:" + re.escape(word) + rb")+", word * repeats


@st.composite
def regex_and_match(draw):
    parts = draw(st.lists(gadget(), min_size=1, max_size=5))
    pattern = b"".join(part for part, _ in parts)
    realization = b"".join(text for _, text in parts)
    prefix = draw(st.sampled_from([b"", b"noise ", b"xx"]))
    suffix = draw(st.sampled_from([b"", b" trailing"]))
    return pattern, prefix + realization + suffix


@given(case=regex_and_match())
@settings(max_examples=300, deadline=None)
def test_every_anchor_occurs_in_every_match(case):
    pattern, matching_text = case
    compiled = re.compile(pattern, re.DOTALL)
    assert compiled.search(matching_text), "strategy built a non-match"
    for anchor in extract_anchors(pattern):
        assert anchor in matching_text, (pattern, anchor, matching_text)


@given(case=regex_and_match())
@settings(max_examples=150, deadline=None)
def test_anchors_meet_minimum_length(case):
    pattern, _ = case
    for anchor in extract_anchors(pattern):
        assert len(anchor) >= 4


@given(case=regex_and_match())
@settings(max_examples=150, deadline=None)
def test_extraction_is_deterministic(case):
    pattern, _ = case
    assert extract_anchors(pattern) == extract_anchors(pattern)
