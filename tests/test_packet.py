"""Unit tests for the packet model."""

import pytest

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    MplsLabel,
    NSHContext,
    Packet,
    TCPHeader,
    UDPHeader,
    VlanTag,
    make_tcp_packet,
    make_udp_packet,
)


def sample_packet(payload=b"hello"):
    return make_tcp_packet(
        MACAddress.from_index(0),
        MACAddress.from_index(1),
        IPv4Address("10.0.0.1"),
        IPv4Address("10.0.0.2"),
        1234,
        80,
        payload=payload,
    )


class TestHeaders:
    def test_vlan_range_checks(self):
        with pytest.raises(ValueError):
            VlanTag(vid=4096)
        with pytest.raises(ValueError):
            VlanTag(vid=1, pcp=8)

    def test_mpls_range_check(self):
        with pytest.raises(ValueError):
            MplsLabel(label=1 << 20)

    def test_ip_header_checks(self):
        src, dst = IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")
        with pytest.raises(ValueError):
            IPv4Header(src=src, dst=dst, ecn=4)
        with pytest.raises(ValueError):
            IPv4Header(src=src, dst=dst, ttl=300)

    def test_port_checks(self):
        with pytest.raises(ValueError):
            TCPHeader(src_port=70000, dst_port=80)
        with pytest.raises(ValueError):
            UDPHeader(src_port=1, dst_port=-1)


class TestWireLength:
    def test_base_tcp_length(self):
        packet = sample_packet(b"12345")
        assert packet.wire_length == 14 + 20 + 20 + 5

    def test_udp_length(self):
        packet = make_udp_packet(
            MACAddress.from_index(0),
            MACAddress.from_index(1),
            IPv4Address("10.0.0.1"),
            IPv4Address("10.0.0.2"),
            53,
            53,
            payload=b"1234",
        )
        assert packet.wire_length == 14 + 20 + 8 + 4

    def test_tags_add_length(self):
        packet = sample_packet(b"")
        base = packet.wire_length
        packet.push_vlan(VlanTag(vid=100))
        packet.push_mpls(MplsLabel(label=5))
        assert packet.wire_length == base + 4 + 4

    def test_nsh_adds_length(self):
        packet = sample_packet(b"")
        base = packet.wire_length
        packet.nsh = NSHContext(service_path=1, metadata=b"123456")
        assert packet.wire_length == base + 8 + 6


class TestTagStacks:
    def test_vlan_push_pop(self):
        packet = sample_packet()
        packet.push_vlan(VlanTag(vid=10))
        packet.push_vlan(VlanTag(vid=20))
        assert packet.outer_vlan.vid == 20
        assert packet.pop_vlan().vid == 20
        assert packet.outer_vlan.vid == 10

    def test_pop_empty_vlan_raises(self):
        with pytest.raises(IndexError):
            sample_packet().pop_vlan()

    def test_mpls_push_pop(self):
        packet = sample_packet()
        packet.push_mpls(MplsLabel(label=100))
        assert packet.outer_mpls.label == 100
        packet.pop_mpls()
        assert packet.outer_mpls is None

    def test_pop_empty_mpls_raises(self):
        with pytest.raises(IndexError):
            sample_packet().pop_mpls()


class TestMatchMark:
    def test_mark_and_clear(self):
        packet = sample_packet()
        assert not packet.is_marked_matched
        packet.mark_matched()
        assert packet.is_marked_matched
        assert packet.ip.ecn == 1
        packet.clear_match_mark()
        assert not packet.is_marked_matched


class TestIdentityAndCopy:
    def test_packet_ids_unique(self):
        assert sample_packet().packet_id != sample_packet().packet_id

    def test_copy_keeps_id_and_payload(self):
        packet = sample_packet(b"payload")
        packet.push_vlan(VlanTag(vid=7))
        clone = packet.copy()
        assert clone.packet_id == packet.packet_id
        assert clone.payload is packet.payload
        # Tag stacks are independent.
        clone.pop_vlan()
        assert packet.outer_vlan is not None

    def test_result_packet_flag(self):
        packet = sample_packet()
        assert not packet.is_result_packet
        packet.describes_packet_id = 99
        assert packet.is_result_packet

    def test_repr_mentions_kind(self):
        packet = sample_packet()
        assert "data" in repr(packet)
        packet.describes_packet_id = 1
        assert "result" in repr(packet)
