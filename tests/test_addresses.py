"""Unit tests for MAC/IPv4 address types."""

import pytest

from repro.net.addresses import IPv4Address, MACAddress


class TestMACAddress:
    def test_parse_and_render(self):
        mac = MACAddress("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"
        assert int(mac) == 0xAABBCCDDEEFF

    def test_from_int(self):
        assert str(MACAddress(1)) == "00:00:00:00:00:01"

    def test_from_index_is_unicast_local(self):
        mac = MACAddress.from_index(5)
        first_octet = int(mac) >> 40
        assert first_octet & 0x01 == 0  # unicast
        assert first_octet & 0x02 == 2  # locally administered

    def test_broadcast(self):
        assert MACAddress.broadcast().is_broadcast
        assert not MACAddress.from_index(0).is_broadcast

    def test_equality_and_hash(self):
        a = MACAddress("02:00:00:00:00:01")
        b = MACAddress.from_index(1)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        assert MACAddress(1) < MACAddress(2)

    def test_copy_constructor(self):
        original = MACAddress(42)
        assert MACAddress(original) == original

    def test_malformed_rejected(self):
        for bad in ("xx:yy", "aa-bb-cc-dd-ee-ff", "aa:bb:cc:dd:ee", ""):
            with pytest.raises(ValueError):
                MACAddress(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MACAddress(1 << 48)
        with pytest.raises(ValueError):
            MACAddress(-1)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            MACAddress(1.5)


class TestIPv4Address:
    def test_parse_and_render(self):
        ip = IPv4Address("10.0.0.1")
        assert str(ip) == "10.0.0.1"
        assert int(ip) == (10 << 24) + 1

    def test_from_index(self):
        assert str(IPv4Address.from_index(0)) == "10.0.0.1"
        assert str(IPv4Address.from_index(254)) == "10.0.0.255"

    def test_in_subnet(self):
        ip = IPv4Address("192.168.1.17")
        assert ip.in_subnet(IPv4Address("192.168.1.0"), 24)
        assert not ip.in_subnet(IPv4Address("192.168.2.0"), 24)
        assert ip.in_subnet(IPv4Address("0.0.0.0"), 0)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address("1.2.3.4").in_subnet(IPv4Address("1.2.3.0"), 33)

    def test_equality_ordering_hash(self):
        a = IPv4Address("10.0.0.1")
        b = IPv4Address((10 << 24) + 1)
        assert a == b and hash(a) == hash(b)
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    def test_malformed_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                IPv4Address(bad)

    def test_mac_and_ip_hashes_disjoint(self):
        # Same integer value must not collide across the two types.
        assert hash(MACAddress(5)) != hash(IPv4Address(5))
