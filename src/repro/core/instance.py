"""A DPI service instance (paper Section 5).

An instance is initialized by the DPI controller with an
:class:`InstanceConfig` — the pattern sets and properties of every middlebox
it serves plus the policy-chain -> middlebox mapping.  It builds the combined
automaton (literal patterns plus regex anchors), scans packets once for all
active middleboxes, resolves regex confirmations, and produces the
:class:`~repro.core.reports.MatchReport` that travels to the middleboxes.

:class:`DPIServiceFunction` adapts an instance to the simulated network: it
reads the policy-chain tag off arriving packets, marks matched packets via
the ECN bit, and emits the results in one of the three Section 4.2 modes
(dedicated result packet by default, like the paper's prototype).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Hashable, TypedDict

from repro.core.combined import CombinedAutomaton
from repro.core.flow_table import ExportedFlow
from repro.core.kernels import KERNEL_NAMES
from repro.core.patterns import Pattern, PatternKind
from repro.core.regex import RegexPreFilter, split_matches
from repro.core.reports import MatchReport
from repro.core.scanner import MiddleboxProfile, VirtualScanner
from repro.core.sharding import SHARDED_KERNEL_NAME, ShardedAutomaton
from repro.core.workers import BACKEND_NAMES
from repro.net.flows import FiveTuple
from repro.net.host import NetworkFunction
from repro.net.nsh import attach_nsh_results, build_result_packet, encode_tag_results
from repro.net.packet import Packet

RESULT_MODES = ("result_packet", "nsh", "tags")

#: Sentinel distinguishing "keyword not passed" from any real value, so the
#: deprecated positional shim can detect positional/keyword conflicts.
_UNSET: object = object()


def _resolve_legacy_call(
    method_name: str,
    legacy: tuple,
    keywords: dict,
    positions: tuple,
) -> None:
    """Map deprecated positional arguments onto their keyword slots.

    The inspection API is keyword-only (``chain_id``/``flow_key``/``now``/
    ``trace_parent``); old positional call shapes still work through this
    shim but emit a :class:`DeprecationWarning` attributed to the caller —
    which the test suite promotes to an error for in-repo callers, and the
    API002 lint rule flags statically.  Mutates *keywords* in place.
    """
    if len(legacy) > len(positions):
        raise TypeError(
            f"{method_name}() takes at most {1 + len(positions)} positional "
            f"arguments ({1 + len(legacy)} given)"
        )
    warnings.warn(
        f"passing {', '.join(positions[: len(legacy)])} to {method_name}() "
        "positionally is deprecated; pass them as keyword arguments",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in zip(positions, legacy):
        if keywords[name] is not _UNSET:
            raise TypeError(
                f"{method_name}() got multiple values for argument {name!r}"
            )
        keywords[name] = value

#: Kernels an instance accepts: the single-automaton families plus the
#: sharded fan-out kernel (see repro.core.sharding).
INSTANCE_KERNEL_NAMES = KERNEL_NAMES + (SHARDED_KERNEL_NAME,)


class InstanceUnavailableError(RuntimeError):
    """Raised when an operation reaches a crashed DPI service instance.

    Distinct from ``KeyError`` (unknown instance name) so control-plane
    callers can tell "gone" from "down": a crashed instance still occupies
    its name and may be restarted by the recovery layer.
    """


@dataclass
class InstanceConfig:
    """What the controller passes to an instance at initialization
    (Section 5.1): pattern sets, middlebox properties, chain mapping."""

    pattern_sets: dict[int, list[Pattern]]
    profiles: dict[int, MiddleboxProfile]
    chain_map: dict[int, tuple[int, ...]]
    layout: str = "sparse"
    #: Scan kernel (see repro.core.kernels).  Instances default to the
    #: flat-table kernel; the reference loops remain selectable.
    kernel: str = "flat"
    #: LRU scan-cache capacity; 0 disables caching (the default — cached
    #: scans also skip the real per-byte work the MCA^2 stress telemetry
    #: measures, so caching is opt-in).
    scan_cache_size: int = 0
    #: Shard count for ``kernel="sharded"`` (0 means unsharded; any other
    #: kernel requires it to stay 0).
    shards: int = 0
    #: Execution backend for sharded scans (see repro.core.workers).
    shard_backend: str = "serial"
    #: Per-shard kernel family for sharded scans.
    shard_kernel: str = "flat"
    #: Worker-process count for pooled shard backends (0 picks
    #: min(shards, cpu_count); any other kernel requires it to stay 0).
    shard_workers: int = 0
    #: Double-buffer batched sharded scans through two arena regions
    #: (effective on the ``zerocopy`` backend; others ignore it).
    shard_pipelined: bool = False

    def __post_init__(self) -> None:
        for middlebox_id in self.pattern_sets:
            if middlebox_id not in self.profiles:
                raise KeyError(f"pattern set without profile: {middlebox_id}")
        if self.kernel not in INSTANCE_KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {INSTANCE_KERNEL_NAMES}"
            )
        if self.kernel == SHARDED_KERNEL_NAME:
            if self.shards < 1:
                raise ValueError(
                    f"kernel 'sharded' needs shards >= 1, got {self.shards}"
                )
        elif self.shards:
            raise ValueError(
                f"shards={self.shards} requires kernel='sharded', "
                f"not {self.kernel!r}"
            )
        if self.shard_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown shard backend {self.shard_backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if self.shard_kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown shard kernel {self.shard_kernel!r}; "
                f"expected one of {KERNEL_NAMES}"
            )
        if self.shard_workers < 0:
            raise ValueError(
                f"negative shard worker count: {self.shard_workers}"
            )
        if self.kernel != SHARDED_KERNEL_NAME:
            if self.shard_workers:
                raise ValueError(
                    f"shard_workers={self.shard_workers} requires "
                    f"kernel='sharded', not {self.kernel!r}"
                )
            if self.shard_pipelined:
                raise ValueError(
                    f"shard_pipelined requires kernel='sharded', "
                    f"not {self.kernel!r}"
                )
        if self.scan_cache_size < 0:
            raise ValueError(f"negative scan cache size: {self.scan_cache_size}")


class InstanceTelemetrySnapshot(TypedDict):
    """The shape of :meth:`InstanceTelemetry.snapshot`."""

    packets_scanned: int
    bytes_scanned: int
    packets_with_matches: int
    total_matches: int
    scan_seconds: float
    regex_confirmations: int
    active_flows: int


@dataclass
class InstanceTelemetry:
    """Counters exported to the controller (the MCA^2 telemetry feed)."""

    packets_scanned: int = 0
    bytes_scanned: int = 0
    packets_with_matches: int = 0
    total_matches: int = 0
    scan_seconds: float = 0.0
    regex_confirmations: int = 0
    active_flows: int = 0
    # Heaviest flows by per-byte work, for the stress monitor.
    flow_work: dict[Hashable, float] = field(default_factory=dict)

    def snapshot(self) -> InstanceTelemetrySnapshot:
        """A plain-dict copy of the counters."""
        return {
            "packets_scanned": self.packets_scanned,
            "bytes_scanned": self.bytes_scanned,
            "packets_with_matches": self.packets_with_matches,
            "total_matches": self.total_matches,
            "scan_seconds": self.scan_seconds,
            "regex_confirmations": self.regex_confirmations,
            "active_flows": self.active_flows,
        }


@dataclass
class InspectionOutput:
    """The outcome of inspecting one packet."""

    #: middlebox id -> [(pattern id, position)], regexes resolved
    matches: dict[int, list[tuple[int, int]]]
    report: MatchReport
    bytes_scanned: int

    @property
    def has_matches(self) -> bool:
        """True when at least one match was found."""
        return not self.report.is_empty


class DPIServiceInstance:
    """The virtual DPI engine serving many middleboxes at once.

    ``telemetry`` is an optional :class:`~repro.telemetry.TelemetryHub`;
    when present, the instance publishes registry counters, a scan-latency
    histogram and per-chain counters, and records ``inspect`` spans for
    packets that carry a trace context.  Without a hub, the scan path pays
    a single attribute check and produces byte-identical results.
    """

    def __init__(
        self, config: InstanceConfig, name: str = "dpi", telemetry=None
    ) -> None:
        self.name = name
        self.telemetry = InstanceTelemetry()
        self.hub = telemetry
        #: False between :meth:`crash` and :meth:`restart`.  A crashed
        #: instance rejects every scan and migration operation with
        #: :class:`InstanceUnavailableError`.
        self.alive = True
        self.crashes = 0
        self.restarts = 0
        self._configure(config)

    def _configure(self, config: InstanceConfig) -> None:
        old = getattr(self, "automaton", None)
        if old is not None and hasattr(old, "shutdown"):
            # Reconfigure/restart replaces the automaton; release any
            # worker pool the old one holds before dropping the reference.
            old.shutdown()
        self.config = config
        self.prefilter = RegexPreFilter()
        literal_sets: dict[int, list[Pattern]] = {}
        for middlebox_id, patterns in config.pattern_sets.items():
            literals = []
            for pattern in patterns:
                if pattern.kind is PatternKind.LITERAL:
                    literals.append(pattern)
                else:
                    literals.extend(self.prefilter.add_regex(middlebox_id, pattern))
            literal_sets[middlebox_id] = literals
        if config.kernel == SHARDED_KERNEL_NAME:
            self.automaton = ShardedAutomaton(
                literal_sets,
                config.shards,
                layout=config.layout,
                shard_kernel=config.shard_kernel,
                backend=config.shard_backend,
                scan_cache_size=config.scan_cache_size,
                workers=config.shard_workers or None,
                pipelined=config.shard_pipelined,
            )
        else:
            self.automaton = CombinedAutomaton(
                literal_sets,
                layout=config.layout,
                kernel=config.kernel,
                scan_cache_size=config.scan_cache_size,
            )
        self.scanner = VirtualScanner(
            self.automaton, config.profiles, config.chain_map
        )
        self._bind_metrics()

    def attach_telemetry(self, hub) -> None:
        """Adopt a telemetry hub after construction and bind the metrics."""
        self.hub = hub
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """(Re)bind the registry metrics; reconfigure rebuilds the scanner
        and the automaton, so the gauges must be rebound to the new
        objects."""
        hub = self.hub
        if hub is None:
            self._m_packets = None
            self._m_bytes = None
            self._m_matches = None
            self._m_seconds = None
            self._h_latency = None
            self._tracer = None
            return
        registry = hub.registry
        name = self.name
        self._m_packets = registry.counter("dpi_packets_scanned_total", instance=name)
        self._m_bytes = registry.counter("dpi_bytes_scanned_total", instance=name)
        self._m_matches = registry.counter("dpi_matches_total", instance=name)
        self._m_seconds = registry.counter("dpi_scan_seconds_total", instance=name)
        self._h_latency = registry.histogram(
            "dpi_scan_latency_seconds", instance=name
        )
        scanner = self.scanner
        registry.gauge_callback(
            "dpi_active_flows", lambda: len(scanner.flow_table), instance=name
        )
        cache = self.automaton.scan_cache
        if cache is not None:
            registry.gauge_callback(
                "dpi_scan_cache_hits", lambda: cache.hits, instance=name
            )
            registry.gauge_callback(
                "dpi_scan_cache_misses", lambda: cache.misses, instance=name
            )
            registry.gauge_callback(
                "dpi_scan_cache_evictions", lambda: cache.evictions, instance=name
            )
        scanner.bind_metrics(registry, name)
        automaton = self.automaton
        if hasattr(automaton, "bind_telemetry"):
            automaton.bind_telemetry(hub, name)
        self._tracer = hub.tracer

    def reconfigure(self, config: InstanceConfig) -> None:
        """Adopt a new configuration.

        The combined DFA is rebuilt, so per-flow DFA states from the old
        automaton are meaningless and the flow table starts empty — the same
        consequence a pattern update has on any AC-based engine.
        """
        self._configure(config)

    # --- failure model (fault injection / recovery) ------------------------

    def _require_alive(self) -> None:
        if not self.alive:
            raise InstanceUnavailableError(
                f"instance {self.name} has crashed and was not restarted"
            )

    def crash(self) -> None:
        """Simulate a process crash: the instance stops serving.

        All in-memory per-flow DFA state is lost; every scan or migration
        operation raises :class:`InstanceUnavailableError` until
        :meth:`restart`.  Idempotent — crashing a crashed instance is a
        no-op (matching a double SIGKILL).
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        if hasattr(self.automaton, "shutdown"):
            # A dead process takes its worker pool with it: drain the pool
            # so no shard worker outlives the crashed instance.
            self.automaton.shutdown()
        if self.hub is not None:
            self.hub.registry.counter(
                "dpi_instance_crashes_total", instance=self.name
            ).inc()

    def restart(self) -> None:
        """Bring a crashed instance back with a cold start.

        The automaton is rebuilt from the last pushed configuration; the
        flow table and the local telemetry counters start empty, exactly as
        a freshly spawned process would (registry counters are cumulative
        and keep their history).
        """
        if self.alive:
            return
        self.alive = True
        self.restarts += 1
        self.telemetry = InstanceTelemetry()
        self._configure(self.config)
        if self.hub is not None:
            self.hub.registry.counter(
                "dpi_instance_restarts_total", instance=self.name
            ).inc()

    # --- inspection -------------------------------------------------------------

    def inspect(
        self,
        payload: bytes,
        *legacy,
        chain_id: "int | object" = _UNSET,
        flow_key=_UNSET,
        now=_UNSET,
        trace_parent=_UNSET,
    ) -> InspectionOutput:
        """Scan one packet payload for its policy chain and build the report.

        ``chain_id`` is required and — like ``flow_key``/``now``/
        ``trace_parent`` — keyword-only; the old positional shape still
        works through a :class:`DeprecationWarning` shim (see
        :func:`_resolve_legacy_call`).

        ``trace_parent`` is an optional ``(trace id, span id)`` context; when
        the instance has a tracing telemetry hub, the scan is recorded as an
        ``inspect`` span under it.
        """
        keywords = {
            "chain_id": chain_id,
            "flow_key": flow_key,
            "now": now,
            "trace_parent": trace_parent,
        }
        if legacy:
            _resolve_legacy_call(
                "inspect",
                legacy,
                keywords,
                ("chain_id", "flow_key", "now", "trace_parent"),
            )
        if keywords["chain_id"] is _UNSET:
            raise TypeError(
                "inspect() missing required keyword-only argument: 'chain_id'"
            )
        return self._inspect(
            payload,
            keywords["chain_id"],
            None if keywords["flow_key"] is _UNSET else keywords["flow_key"],
            0.0 if keywords["now"] is _UNSET else keywords["now"],
            None
            if keywords["trace_parent"] is _UNSET
            else keywords["trace_parent"],
        )

    def _inspect(
        self,
        payload: bytes,
        chain_id: int,
        flow_key,
        now: float,
        trace_parent,
    ) -> InspectionOutput:
        self._require_alive()
        telemetry_on = self._m_packets is not None
        cache = self.automaton.scan_cache if telemetry_on else None
        cache_hits_before = cache.hits if cache is not None else 0
        started = time.perf_counter()
        scan = self.scanner.scan_packet(payload, chain_id, flow_key=flow_key, now=now)
        final_matches: dict[int, list[tuple[int, int]]] = {}
        for middlebox_id, raw in scan.matches.items():
            reportable, anchor_ids = split_matches(raw)
            if anchor_ids or self.prefilter.has_regexes(middlebox_id):
                confirmed = self.prefilter.confirm(middlebox_id, payload, anchor_ids)
                if confirmed:
                    self.telemetry.regex_confirmations += len(confirmed)
                    reportable.extend(confirmed)
                reportable.extend(self.prefilter.scan_fallback(middlebox_id, payload))
                # confirm and scan_fallback can both report the same
                # (pattern id, position) when a regex has anchors *and* a
                # fallback expression; report each match once.
                if len(reportable) > 1:
                    reportable = list(dict.fromkeys(reportable))
            final_matches[middlebox_id] = reportable
        report = MatchReport.from_matches(final_matches)
        elapsed = time.perf_counter() - started

        telemetry = self.telemetry
        telemetry.packets_scanned += 1
        telemetry.bytes_scanned += scan.bytes_scanned
        telemetry.scan_seconds += elapsed
        telemetry.active_flows = len(self.scanner.flow_table)
        total = sum(len(v) for v in final_matches.values())
        telemetry.total_matches += total
        if total:
            telemetry.packets_with_matches += 1
        if flow_key is not None:
            work = telemetry.flow_work.get(flow_key, 0.0)
            telemetry.flow_work[flow_key] = work + elapsed
        if telemetry_on:
            self._m_packets.inc()
            self._m_bytes.inc(scan.bytes_scanned)
            self._m_seconds.inc(elapsed)
            self._h_latency.observe(elapsed)
            if total:
                self._m_matches.inc(total)
            tracer = self._tracer
            if tracer is not None and trace_parent is not None and trace_parent[0]:
                at = tracer.now()
                tracer.record(
                    "inspect",
                    parent=trace_parent,
                    start=at,
                    end=at,
                    instance=self.name,
                    chain=chain_id,
                    kernel=self.config.kernel,
                    bytes=scan.bytes_scanned,
                    matches=total,
                    elapsed_seconds=elapsed,
                    cache_hit=(cache is not None and cache.hits > cache_hits_before),
                )
        return InspectionOutput(
            matches=final_matches, report=report, bytes_scanned=scan.bytes_scanned
        )

    def inspect_batch(
        self,
        payloads,
        *legacy,
        chain_id: "int | object" = _UNSET,
        flow_keys=_UNSET,
        now=_UNSET,
        trace_parent=_UNSET,
    ) -> list[InspectionOutput]:
        """Inspect a batch of payloads for one policy chain, in order.

        ``flow_keys`` is an optional parallel sequence (one key per
        payload; ``None`` entries mean flowless).  ``trace_parent`` applies
        to every scan in the batch — one ``inspect`` span per payload under
        the same parent.  Batching amortizes the per-call service overhead
        and keeps repeated payloads hot in the scan cache; results come
        back in submission order.  Keyword-only like :meth:`inspect`, with
        the same deprecated-positional shim (``trace_parent`` never had a
        positional slot).
        """
        keywords = {
            "chain_id": chain_id,
            "flow_keys": flow_keys,
            "now": now,
            "trace_parent": trace_parent,
        }
        if legacy:
            _resolve_legacy_call(
                "inspect_batch",
                legacy,
                keywords,
                ("chain_id", "flow_keys", "now"),
            )
        if keywords["chain_id"] is _UNSET:
            raise TypeError(
                "inspect_batch() missing required keyword-only argument: "
                "'chain_id'"
            )
        resolved_chain = keywords["chain_id"]
        resolved_now = 0.0 if keywords["now"] is _UNSET else keywords["now"]
        resolved_trace = (
            None
            if keywords["trace_parent"] is _UNSET
            else keywords["trace_parent"]
        )
        resolved_keys = (
            None if keywords["flow_keys"] is _UNSET else keywords["flow_keys"]
        )
        payloads = list(payloads)
        if resolved_keys is None:
            resolved_keys = [None] * len(payloads)
        else:
            resolved_keys = list(resolved_keys)
            if len(resolved_keys) != len(payloads):
                raise ValueError(
                    f"flow_keys length {len(resolved_keys)} != payloads "
                    f"length {len(payloads)}"
                )
        return [
            self._inspect(
                payload, resolved_chain, flow_key, resolved_now, resolved_trace
            )
            for payload, flow_key in zip(payloads, resolved_keys)
        ]

    def scan_cache_stats(self) -> "dict[str, int] | None":
        """The automaton's scan-cache counters, or None when disabled."""
        cache = self.automaton.scan_cache
        return cache.stats() if cache is not None else None

    # --- flow migration (Section 4.3) -----------------------------------------

    def export_flow(self, flow_key) -> "ExportedFlow | None":
        """Hand a flow's scan state to the controller for migration."""
        self._require_alive()
        return self.scanner.flow_table.export_flow(flow_key)

    def import_flow(self, flow_key, exported: ExportedFlow) -> None:
        """Install migrated flow scan state."""
        self._require_alive()
        self.scanner.flow_table.import_flow(flow_key, exported)

    def drop_flow(self, flow_key) -> None:
        """Forget one flow's scan state."""
        self.scanner.flow_table.remove(flow_key)

    def heavy_flows(self, top: int = 5) -> list[tuple[Hashable, float]]:
        """Flows ranked by accumulated scan work (for the stress monitor)."""
        ranked = sorted(
            self.telemetry.flow_work.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:top]

    def reset_telemetry(self) -> None:
        """Zero every counter (start a fresh observation window)."""
        self.telemetry = InstanceTelemetry()


class DPIServiceFunction(NetworkFunction):
    """Adapter: runs a :class:`DPIServiceInstance` on a simulated host.

    ``direct_chains`` activates the read-only optimization (Section 4.2,
    option 3) for the listed policy-chain ids: those chains' middleboxes
    are *off* the data path, so matched packets trigger result packets
    addressed straight to the middlebox hosts (``middlebox_addresses``
    maps middlebox id to ``(mac, ip)``), and matchless packets generate no
    middlebox traffic at all.
    """

    def __init__(
        self,
        instance: DPIServiceInstance,
        result_mode: str = "result_packet",
        direct_chains=None,
        middlebox_addresses=None,
    ) -> None:
        if result_mode not in RESULT_MODES:
            raise ValueError(
                f"unknown result mode {result_mode!r}; expected one of {RESULT_MODES}"
            )
        self.instance = instance
        self.result_mode = result_mode
        self.direct_chains = set(direct_chains or ())
        self.middlebox_addresses = dict(middlebox_addresses or {})
        if self.direct_chains:
            # Sorted: which missing-address chain raises first must not
            # depend on set iteration order.
            for chain_id in sorted(self.direct_chains):
                for middlebox_id in instance.scanner.chain_map.get(chain_id, ()):
                    if middlebox_id not in self.middlebox_addresses:
                        raise KeyError(
                            f"direct chain {chain_id} needs an address for "
                            f"middlebox {middlebox_id}"
                        )
        self.packets_forwarded = 0
        self.packets_skipped = 0
        self.direct_results_sent = 0
        self.packets_blackholed = 0
        #: Fault injection: while set, emitted result packets have their
        #: report payload deterministically corrupted (first byte flipped),
        #: exercising the middlebox fail-open path.
        self.corrupt_results = False
        self.results_corrupted = 0

    def process(self, packet: Packet) -> list[Packet]:
        # Result packets or untagged traffic pass through untouched.
        """Handle one received packet; return the packets to send on."""
        if not self.instance.alive:
            # A crashed instance forwards nothing: packets steered at its
            # host are blackholed until the recovery layer re-steers the
            # chains (the loss the failover-time budget bounds).
            self.packets_blackholed += 1
            return []
        tag = packet.outer_vlan
        if packet.is_result_packet or tag is None:
            self.packets_skipped += 1
            return [packet]
        chain_id = tag.vid
        if chain_id not in self.instance.scanner.chain_map:
            self.packets_skipped += 1
            return [packet]
        flow_key = FiveTuple.of(packet)
        now = self.host.simulator.now if hasattr(self, "host") else 0.0
        output = self.instance.inspect(
            packet.payload,
            chain_id=chain_id,
            flow_key=flow_key,
            now=now,
            trace_parent=packet.trace,
        )
        self.packets_forwarded += 1
        if output.report.is_empty:
            # No matches: forward as is, without any modification.
            return [packet]
        if chain_id in self.direct_chains:
            return self._emit_direct(packet, output)
        packet.mark_matched()
        if self.result_mode == "nsh":
            attach_nsh_results(packet, output.report, service_path=chain_id)
            return [packet]
        if self.result_mode == "tags":
            encode_tag_results(packet, output.report)
            return [packet]
        result = build_result_packet(packet, output.report)
        if self.corrupt_results and result.payload:
            result.payload = (
                bytes([result.payload[0] ^ 0xFF]) + result.payload[1:]
            )
            self.results_corrupted += 1
        return [packet, result]

    def _emit_direct(self, packet: Packet, output: InspectionOutput) -> list[Packet]:
        """Read-only mode: data packet continues; one result packet goes
        straight to every middlebox that has matches."""
        from repro.net.nsh import build_directed_result_packet
        from repro.core.reports import MatchReport

        emitted = [packet]
        for middlebox_id, matches in output.matches.items():
            if not matches:
                continue
            mac, ip = self.middlebox_addresses[middlebox_id]
            per_middlebox = MatchReport.from_matches({middlebox_id: matches})
            emitted.append(
                build_directed_result_packet(packet, per_middlebox, mac, ip)
            )
            self.direct_results_sent += 1
        return emitted
