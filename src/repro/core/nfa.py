"""A Thompson-NFA regular-expression engine.

The paper (Sections 2.2, 3, 5.3) discusses the two classic regex-matching
approaches for DPI — DFA (fast, memory-hungry, prone to state explosion
when expressions are combined) and NFA (compact, slower) — and prescribes
an NFA-style engine run *in parallel* to string matching for expressions
with no usable anchors.  This module implements that engine from scratch:

* a recursive-descent parser for the byte-regex subset DPI rules use
  (literals, escapes, ``.``, character classes with ranges and negation,
  alternation, groups, ``? * + {m,n}`` quantifiers — greedy or lazy);
* Thompson construction into an epsilon-NFA;
* multi-start set simulation with **DPI match semantics**: the engine
  reports every *end offset* at which some (non-empty) match ends — the
  same convention the string matchers use, so results merge directly into
  match reports.

Unsupported (raise ``RegexSyntaxError``): backreferences, lookarounds and
the ``^``/``$`` anchors — none of which fit the streaming-ends model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

#: Cap on counted-repeat expansion, so {1000} cannot blow up construction.
MAX_COUNTED_REPEATS = 64

_ALL_BYTES = frozenset(range(256))
_DIGITS = frozenset(range(0x30, 0x3A))
_WORD = frozenset(
    list(range(0x30, 0x3A))
    + list(range(0x41, 0x5B))
    + list(range(0x61, 0x7B))
    + [0x5F]
)
_SPACE = frozenset(b" \t\n\r\x0b\x0c")

_ESCAPE_CLASSES = {
    ord("d"): _DIGITS,
    ord("D"): _ALL_BYTES - _DIGITS,
    ord("w"): _WORD,
    ord("W"): _ALL_BYTES - _WORD,
    ord("s"): _SPACE,
    ord("S"): _ALL_BYTES - _SPACE,
}
_ESCAPE_LITERALS = {
    ord("n"): 0x0A,
    ord("r"): 0x0D,
    ord("t"): 0x09,
    ord("f"): 0x0C,
    ord("v"): 0x0B,
    ord("a"): 0x07,
    ord("0"): 0x00,
}


class RegexSyntaxError(ValueError):
    """Raised for malformed or unsupported expressions."""


# --- AST -------------------------------------------------------------------


@dataclass(frozen=True)
class _Literal:
    byte_set: frozenset


@dataclass(frozen=True)
class _Concat:
    parts: tuple


@dataclass(frozen=True)
class _Alternate:
    branches: tuple


@dataclass(frozen=True)
class _Repeat:
    node: object
    minimum: int
    maximum: int | None  # None = unbounded


class _Parser:
    def __init__(self, source: bytes) -> None:
        self.source = source
        self.position = 0

    def error(self, message: str) -> RegexSyntaxError:
        """A syntax error annotated with the current offset."""
        return RegexSyntaxError(
            f"{message} at offset {self.position} in {self.source!r}"
        )

    def peek(self) -> int | None:
        """The next byte, or None at the end of input."""
        if self.position >= len(self.source):
            return None
        return self.source[self.position]

    def advance(self) -> int:
        """Consume and return the next byte."""
        byte = self.source[self.position]
        self.position += 1
        return byte

    def parse(self):
        """Parse the whole expression; raises on trailing input."""
        node = self.parse_alternation()
        if self.position != len(self.source):
            raise self.error("unexpected ')'")
        return node

    def parse_alternation(self):
        """``branch (| branch)*``."""
        branches = [self.parse_concat()]
        while self.peek() == ord("|"):
            self.advance()
            branches.append(self.parse_concat())
        if len(branches) == 1:
            return branches[0]
        return _Alternate(branches=tuple(branches))

    def parse_concat(self):
        """A sequence of quantified atoms."""
        parts = []
        while True:
            byte = self.peek()
            if byte is None or byte in (ord("|"), ord(")")):
                break
            parts.append(self.parse_quantified())
        if len(parts) == 1:
            return parts[0]
        return _Concat(parts=tuple(parts))

    def parse_quantified(self):
        """One atom with any trailing quantifiers applied."""
        atom = self.parse_atom()
        while True:
            byte = self.peek()
            if byte == ord("?"):
                self.advance()
                self._skip_lazy()
                atom = _Repeat(atom, 0, 1)
            elif byte == ord("*"):
                self.advance()
                self._skip_lazy()
                atom = _Repeat(atom, 0, None)
            elif byte == ord("+"):
                self.advance()
                self._skip_lazy()
                atom = _Repeat(atom, 1, None)
            elif byte == ord("{"):
                atom = _Repeat(atom, *self._parse_braces())
                self._skip_lazy()
            else:
                return atom

    def _skip_lazy(self) -> None:
        # Lazy vs greedy is irrelevant to all-ends semantics.
        if self.peek() == ord("?"):
            self.advance()

    def _parse_braces(self) -> tuple[int, int | None]:
        self.advance()  # consume '{'
        end = self.source.find(b"}", self.position)
        if end == -1:
            raise self.error("unterminated {...}")
        body = self.source[self.position : end]
        self.position = end + 1
        parts = body.split(b",")
        try:
            minimum = int(parts[0]) if parts[0] else 0
            if len(parts) == 1:
                maximum = minimum
            elif len(parts) == 2:
                maximum = int(parts[1]) if parts[1] else None
            else:
                raise ValueError
        except ValueError:
            raise self.error(f"malformed repeat {{{body.decode('latin1')}}}")
        if maximum is not None and maximum < minimum:
            raise self.error("repeat maximum below minimum")
        if minimum > MAX_COUNTED_REPEATS or (
            maximum is not None and maximum > MAX_COUNTED_REPEATS
        ):
            raise self.error(
                f"counted repeat exceeds the {MAX_COUNTED_REPEATS} cap"
            )
        return minimum, maximum

    def parse_atom(self):
        """One literal, class, wildcard, escape or group."""
        byte = self.peek()
        if byte is None:
            raise self.error("dangling quantifier or empty atom")
        if byte == ord("("):
            self.advance()
            self._skip_group_prefix()
            inner = self.parse_alternation()
            if self.peek() != ord(")"):
                raise self.error("unterminated group")
            self.advance()
            return inner
        if byte == ord("["):
            return _Literal(byte_set=self._parse_class())
        if byte == ord("."):
            self.advance()
            return _Literal(byte_set=_ALL_BYTES)
        if byte == ord("\\"):
            return _Literal(byte_set=self._parse_escape())
        if byte in (ord("^"), ord("$")):
            raise self.error("anchors ^/$ are not supported")
        if byte in (ord("*"), ord("+"), ord("?"), ord("{")):
            raise self.error("quantifier with nothing to repeat")
        self.advance()
        return _Literal(byte_set=frozenset([byte]))

    def _skip_group_prefix(self) -> None:
        if self.peek() != ord("?"):
            return
        self.advance()
        nxt = self.peek()
        if nxt == ord(":"):
            self.advance()
            return
        if nxt == ord("P"):
            self.advance()
            if self.peek() != ord("<"):
                raise self.error("unsupported (?P...) construct")
            while self.peek() not in (None, ord(">")):
                self.advance()
            if self.peek() is None:
                raise self.error("unterminated group name")
            self.advance()
            return
        raise self.error("lookarounds and backreference groups are not supported")

    def _parse_escape(self) -> frozenset:
        self.advance()  # consume backslash
        byte = self.peek()
        if byte is None:
            raise self.error("dangling escape")
        self.advance()
        if byte in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[byte]
        if byte in _ESCAPE_LITERALS:
            return frozenset([_ESCAPE_LITERALS[byte]])
        if byte == ord("x"):
            digits = self.source[self.position : self.position + 2]
            if len(digits) != 2:
                raise self.error("truncated \\x escape")
            try:
                value = int(digits, 16)
            except ValueError:
                raise self.error("malformed \\x escape")
            self.position += 2
            return frozenset([value])
        if ord("1") <= byte <= ord("9"):
            raise self.error("backreferences are not supported")
        if byte in (ord("b"), ord("B"), ord("A"), ord("Z")):
            raise self.error("zero-width assertions are not supported")
        return frozenset([byte])

    def _parse_class(self) -> frozenset:
        self.advance()  # consume '['
        negated = False
        if self.peek() == ord("^"):
            negated = True
            self.advance()
        members: set[int] = set()
        first = True
        while True:
            byte = self.peek()
            if byte is None:
                raise self.error("unterminated character class")
            if byte == ord("]") and not first:
                self.advance()
                break
            first = False
            if byte == ord("\\"):
                members |= self._parse_escape()
                continue
            self.advance()
            # Range?
            if (
                self.peek() == ord("-")
                and self.position + 1 < len(self.source)
                and self.source[self.position + 1] != ord("]")
            ):
                self.advance()  # '-'
                high = self.advance()
                if high == ord("\\"):
                    self.position -= 1
                    high_set = self._parse_escape()
                    if len(high_set) != 1:
                        raise self.error("class escape cannot end a range")
                    (high,) = high_set
                if high < byte:
                    raise self.error("reversed character range")
                members |= set(range(byte, high + 1))
            else:
                members.add(byte)
        if negated:
            return frozenset(_ALL_BYTES - members)
        return frozenset(members)


# --- Thompson construction ----------------------------------------------------


@dataclass
class _State:
    #: byte-set transition: (byte_set, target) or None
    edge: tuple | None = None
    epsilon: list = field(default_factory=list)


class RegexNFA:
    """A compiled expression with all-ends match semantics."""

    def __init__(self, pattern: bytes):
        if isinstance(pattern, str):
            pattern = pattern.encode()
        self.pattern = pattern
        ast = _Parser(pattern).parse()
        self._states: list[_State] = []
        start, accept = self._build(ast)
        self.start = start
        self.accept = accept
        if self.accept in self._closure({self.start}):
            raise RegexSyntaxError(
                f"expression matches the empty string: {pattern!r}"
            )

    # -- construction --

    def _new_state(self) -> int:
        self._states.append(_State())
        return len(self._states) - 1

    def _build(self, node) -> tuple[int, int]:
        if isinstance(node, _Literal):
            start = self._new_state()
            accept = self._new_state()
            self._states[start].edge = (node.byte_set, accept)
            return start, accept
        if isinstance(node, _Concat):
            if not node.parts:
                start = self._new_state()
                return start, start
            start, accept = self._build(node.parts[0])
            for part in node.parts[1:]:
                nxt_start, nxt_accept = self._build(part)
                self._states[accept].epsilon.append(nxt_start)
                accept = nxt_accept
            return start, accept
        if isinstance(node, _Alternate):
            start = self._new_state()
            accept = self._new_state()
            for branch in node.branches:
                b_start, b_accept = self._build(branch)
                self._states[start].epsilon.append(b_start)
                self._states[b_accept].epsilon.append(accept)
            return start, accept
        if isinstance(node, _Repeat):
            return self._build_repeat(node)
        raise TypeError(f"unknown AST node: {node!r}")

    def _build_repeat(self, node: _Repeat) -> tuple[int, int]:
        minimum, maximum = node.minimum, node.maximum
        start = self._new_state()
        accept = self._new_state()
        previous = start
        # Mandatory copies.
        for _ in range(minimum):
            c_start, c_accept = self._build(node.node)
            self._states[previous].epsilon.append(c_start)
            previous = c_accept
        if maximum is None:
            # Kleene tail: loop one more copy.
            c_start, c_accept = self._build(node.node)
            self._states[previous].epsilon.append(accept)
            self._states[previous].epsilon.append(c_start)
            self._states[c_accept].epsilon.append(c_start)
            self._states[c_accept].epsilon.append(accept)
        else:
            self._states[previous].epsilon.append(accept)
            for _ in range(maximum - minimum):
                c_start, c_accept = self._build(node.node)
                self._states[previous].epsilon.append(c_start)
                self._states[c_accept].epsilon.append(accept)
                previous = c_accept
        return start, accept

    # -- simulation --

    def _closure(self, states: set) -> set:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for target in self._states[state].epsilon:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    @property
    def num_states(self) -> int:
        """Number of automaton states."""
        return len(self._states)

    def iter_match_ends(self, data: bytes) -> Iterator[int]:
        """Yield every end offset at which some non-empty match ends."""
        start_closure = frozenset(self._closure({self.start}))
        current: set = set()
        states = self._states
        accept = self.accept
        for position, byte in enumerate(data):
            current |= start_closure  # unanchored: a match may start here
            nxt = set()
            for state in current:
                edge = states[state].edge
                if edge is not None and byte in edge[0]:
                    nxt.add(edge[1])
            current = self._closure(nxt) if nxt else set()
            if accept in current:
                yield position + 1

    def match_ends(self, data: bytes) -> list[int]:
        """End offsets of every (non-empty) match in *data*."""
        return list(self.iter_match_ends(data))

    def search(self, data: bytes) -> bool:
        """True if the expression matches anywhere in *data*."""
        for _ in self.iter_match_ends(data):
            return True
        return False

    def finditer_ends(self, data: bytes) -> list[tuple[int, int]]:
        """``(pattern placeholder, end)`` pairs in the match-list shape the
        DPI service reports (pattern id is filled in by the caller)."""
        return [(0, end) for end in self.iter_match_ends(data)]
