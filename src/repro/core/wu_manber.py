"""The Wu-Manber multi-pattern matcher (paper Section 2.2).

The paper names Wu-Manber alongside Aho-Corasick as the classical exact
multi-string matching algorithms used for DPI.  It is provided here as an
alternative engine with the same match semantics as
:class:`~repro.core.aho_corasick.AhoCorasick` — ``(end offset, pattern
index)`` pairs — so the two can be compared directly (see
``benchmarks/test_ablation_engine.py``).

Algorithm recap: let ``m`` be the length of the shortest pattern and ``B``
the block size (2 here).  A SHIFT table maps each block of ``B`` bytes to
how far the search window may safely jump; blocks that end a pattern prefix
get shift 0 and fall into a HASH table of candidate patterns, verified
byte-by-byte.  On benign traffic most windows shift by ``m - B + 1``, which
is why Wu-Manber shines with long minimum pattern lengths and struggles
with short ones — a trade the ablation benchmark shows.

Patterns shorter than ``B`` bytes are rejected (classic Wu-Manber cannot
index them); DPI pattern sets follow the paper's >= 8-byte convention
anyway.
"""

from __future__ import annotations

from typing import Iterator, Sequence

BLOCK_SIZE = 2


class WuManber:
    """A Wu-Manber matcher over byte-string patterns."""

    def __init__(self, patterns: Sequence[bytes], block_size: int = BLOCK_SIZE):
        if block_size < 1:
            raise ValueError(f"block size must be positive: {block_size}")
        self._patterns = [bytes(p) for p in patterns]
        if not self._patterns:
            raise ValueError("Wu-Manber needs at least one pattern")
        for pattern in self._patterns:
            if len(pattern) < block_size:
                raise ValueError(
                    f"pattern shorter than the block size ({block_size}): "
                    f"{pattern!r}"
                )
        self.block_size = block_size
        # m = length of the shortest pattern; only the first m bytes of each
        # pattern participate in the tables, the rest is verified.
        self.window = min(len(p) for p in self._patterns)
        self._default_shift = self.window - block_size + 1
        # Blocks are packed into integers (base-256 digits) so the SHIFT
        # table can be a dense array indexed without allocating byte slices
        # — the hot loop is one list indexing per window position.
        table_size = 256**block_size
        self._shift = [self._default_shift] * table_size
        # HASH: packed block -> candidates whose first `window` bytes END
        # with that block.  Each candidate carries its packed 2-byte prefix
        # (Wu-Manber's PREFIX table) so most false candidates are rejected
        # with one integer comparison instead of a byte-wise verify.
        self._hash: dict[int, list[tuple[int, int]]] = {}
        self._shift_entries = 0
        for index, pattern in enumerate(self._patterns):
            prefix = pattern[: self.window]
            prefix_key = (prefix[0] << 8) | prefix[1] if len(prefix) >= 2 else prefix[0]
            for position in range(self.window - block_size + 1):
                block = 0
                for byte in prefix[position : position + block_size]:
                    block = (block << 8) | byte
                jump = self.window - block_size - position
                if self._shift[block] == self._default_shift and jump != self._default_shift:
                    self._shift_entries += 1
                self._shift[block] = min(self._shift[block], jump)
                if jump == 0:
                    self._hash.setdefault(block, []).append((prefix_key, index))

    @property
    def patterns(self) -> list[bytes]:
        """The pattern list (a copy)."""
        return list(self._patterns)

    @property
    def table_sizes(self) -> tuple[int, int]:
        """(non-default SHIFT entries, HASH entries)."""
        return (self._shift_entries, len(self._hash))

    def iter_matches(self, data: bytes) -> Iterator[tuple[int, int]]:
        """Yield ``(end offset, pattern index)``.

        Offsets use the same convention as the AC engine: the number of
        bytes consumed when the match completes.  Specialized for the
        default 2-byte blocks; larger blocks use the generic path.
        """
        if self.block_size != 2:
            yield from self._iter_matches_generic(data)
            return
        window = self.window
        shift = self._shift
        candidates = self._hash
        patterns = self._patterns
        position = window  # window end (exclusive), in bytes consumed
        length = len(data)
        while position <= length:
            block = (data[position - 2] << 8) | data[position - 1]
            jump = shift[block]
            if jump:
                position += jump
                continue
            window_start = position - window
            bucket = candidates.get(block)
            if bucket is not None:
                prefix_key = (data[window_start] << 8) | data[window_start + 1]
                for candidate_prefix, index in bucket:
                    if candidate_prefix != prefix_key:
                        continue
                    pattern = patterns[index]
                    if data.startswith(pattern, window_start):
                        yield (window_start + len(pattern), index)
            position += 1

    def _iter_matches_generic(self, data: bytes) -> Iterator[tuple[int, int]]:
        block_size = self.block_size
        window = self.window
        shift = self._shift
        candidates = self._hash
        patterns = self._patterns
        position = window
        length = len(data)
        while position <= length:
            block = 0
            for byte in data[position - block_size : position]:
                block = (block << 8) | byte
            jump = shift[block]
            if jump:
                position += jump
                continue
            window_start = position - window
            bucket = candidates.get(block)
            if bucket is not None:
                prefix_key = (data[window_start] << 8) | data[window_start + 1]
                for candidate_prefix, index in bucket:
                    if candidate_prefix != prefix_key:
                        continue
                    pattern = patterns[index]
                    if data.startswith(pattern, window_start):
                        yield (window_start + len(pattern), index)
            position += 1

    def scan(self, data: bytes) -> list[tuple[int, int]]:
        """All matches, sorted the way the AC engine reports them."""
        return sorted(self.iter_matches(data))

    def count_matches(self, data: bytes) -> int:
        """Number of matches in *data* (no allocation of results)."""
        return sum(1 for _ in self.iter_matches(data))
