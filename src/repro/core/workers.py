"""Execution backends for the sharded scan-worker pool.

A :class:`~repro.core.sharding.ShardedKernel` fans one payload out to K
per-shard kernels and merges the results.  *Where* those per-shard scans run
is this module's job, behind one small contract — the :class:`ShardBackend`
Protocol:

* ``scan_shards(tasks)`` — one ``(shard, data, bitmap, state, limit)`` task
  per shard of a single payload; returns raw ``(raw_matches, end_state,
  bytes_scanned)`` tuples in task order.
* ``scan_shard_batches(tasks)`` — one ``(shard, payloads, bitmap, state,
  limit)`` task per shard covering a whole payload batch; returns a list of
  raw result tuples per task.  This is the throughput path: a batch crosses
  the pool boundary once per shard instead of once per payload.
* ``shutdown()`` — release any pooled resources (idempotent).
* ``supports_pipelined`` — advertises the optional double-buffered chunk
  path (:class:`PipelinedShardBackend`); the sharded kernel probes this
  flag, never ``hasattr``.

Three backends are provided.  ``serial`` runs the shard kernels in-process,
in shard order — fully deterministic, zero overhead, the default.
``process`` keeps a ``multiprocessing`` pool whose workers each build every
shard kernel once (from a picklable :func:`make_shard_spec` description) and
then reuse them across calls; tasks are distributed with batched work queues
(``chunksize`` sized to the worker count).  ``zerocopy``
(:mod:`repro.core.zerocopy`) replaces the pool with a shared-memory payload
arena and persistent descriptor-pulling workers, so a batch's payloads cross
the process boundary zero times instead of once per shard.  Pool failures
are *not* handled here: any exception escapes to the sharded kernel, which
drains the pool and falls back to serial execution (see
``repro.core.sharding``).

Raw results cross the process boundary as plain tuples, not
:class:`~repro.core.kernels.CombinedScanResult` objects — cheaper to pickle,
and the merge layer rebuilds whatever shape it needs.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from multiprocessing.context import BaseContext
import os
from typing import TYPE_CHECKING, Iterable, Protocol, TypeAlias

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.combined import CombinedAutomaton
    from repro.core.patterns import Pattern
    from repro.core.zerocopy import ZeroCopyBackend

#: Backend names accepted by ``ShardedAutomaton`` / ``InstanceConfig``.
BACKEND_NAMES = ("serial", "process", "zerocopy")


def get_mp_context() -> BaseContext:
    """The multiprocessing context every pooled backend uses.

    Fork is preferred (workers inherit the parent's pages; automaton specs
    still travel explicitly so spawn platforms behave identically).
    """
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )

#: One per-shard scan request: ``(shard, data, active_bitmap, state, limit)``.
ShardTask: TypeAlias = tuple[int, bytes, int, int, "int | None"]

#: One per-shard batch request: ``(shard, payloads, active_bitmap, state, limit)``.
ShardBatchTask: TypeAlias = tuple[int, tuple[bytes, ...], int, int, "int | None"]

#: A raw scan result on the wire: ``(raw_matches, end_state, bytes_scanned)``.
RawResult: TypeAlias = tuple[list[tuple[int, int]], int, int]

#: A picklable shard description (:func:`make_shard_spec`):
#: ``((middlebox id, ((pattern id, bytes), ...)), ...), layout, kernel``.
ShardSpec: TypeAlias = tuple[
    tuple[tuple[int, tuple[tuple[int, bytes], ...]], ...], str, str
]


class ShardBackend(Protocol):
    """The execution contract every shard backend satisfies.

    This is the duck type :class:`~repro.core.sharding.ShardedKernel`
    drives, made explicit: two scan entry points, an idempotent
    ``shutdown``, and two identifying attributes.  ``supports_pipelined``
    advertises the optional double-buffered chunk path — backends that set
    it ``True`` must satisfy :class:`PipelinedShardBackend` too, and the
    sharded kernel probes the flag instead of ``hasattr``.
    """

    name: str
    supports_pipelined: bool

    def scan_shards(self, tasks: Iterable[ShardTask]) -> list[RawResult]:
        """One raw result per ``(shard, data, bitmap, state, limit)`` task,
        in task order."""
        ...

    def scan_shard_batches(
        self, tasks: Iterable[ShardBatchTask]
    ) -> list[list[RawResult]]:
        """One list of raw results per batch task, in task order."""
        ...

    def shutdown(self) -> None:
        """Release pooled resources (idempotent)."""
        ...


class PipelinedShardBackend(ShardBackend, Protocol):
    """A backend that can overlap scanning chunk N with staging chunk N+1."""

    def scan_chunked_batches(
        self, chunks: Iterable[list[ShardBatchTask]]
    ) -> list[list[list[RawResult]]]:
        """Per chunk, per batch task, the raw results — double-buffered."""
        ...


def make_shard_spec(
    pattern_sets: dict[int, list[Pattern]], layout: str, kernel: str
) -> ShardSpec:
    """A picklable description of one shard's combined automaton.

    Pattern objects are flattened to ``(pattern id, bytes)`` pairs so the
    spec crosses the process boundary without importing anything beyond
    this module and rebuilds byte-identically on the other side.
    """
    wire = tuple(
        (middlebox_id, tuple(
            (pattern.pattern_id, pattern.data)
            for pattern in pattern_sets[middlebox_id]
        ))
        for middlebox_id in sorted(pattern_sets)
    )
    return (wire, layout, kernel)


def automaton_from_spec(spec: ShardSpec) -> CombinedAutomaton:
    """Rebuild a shard's combined automaton from a :func:`make_shard_spec`."""
    from repro.core.combined import CombinedAutomaton
    from repro.core.patterns import Pattern

    wire, layout, kernel = spec
    pattern_sets = {
        middlebox_id: [Pattern(pattern_id, data) for pattern_id, data in pairs]
        for middlebox_id, pairs in wire
    }
    return CombinedAutomaton(pattern_sets, layout=layout, kernel=kernel)


# --- worker-process side -----------------------------------------------------

#: Per-worker shard automata, built once by the pool initializer and reused
#: across every task the worker processes ("shard-local kernel reuse").
_WORKER_AUTOMATA: "list[CombinedAutomaton] | None" = None


def _init_worker(specs: tuple[ShardSpec, ...]) -> None:
    """Pool initializer: build every shard automaton once per worker."""
    global _WORKER_AUTOMATA
    _WORKER_AUTOMATA = [automaton_from_spec(spec) for spec in specs]


def _scan_task(task: ShardTask) -> RawResult:
    """Run one per-shard scan inside a worker process."""
    shard, data, active_bitmap, state, limit = task
    assert _WORKER_AUTOMATA is not None, "worker pool not initialized"
    result = _WORKER_AUTOMATA[shard].scan(data, active_bitmap, state, limit)
    return (result.raw_matches, result.end_state, result.bytes_scanned)


def _scan_batch_task(task: ShardBatchTask) -> list[RawResult]:
    """Run one shard over a whole payload batch inside a worker process."""
    shard, payloads, active_bitmap, state, limit = task
    assert _WORKER_AUTOMATA is not None, "worker pool not initialized"
    automaton = _WORKER_AUTOMATA[shard]
    out = []
    for payload in payloads:
        result = automaton.scan(payload, active_bitmap, state, limit)
        out.append((result.raw_matches, result.end_state, result.bytes_scanned))
    return out


# --- backends ----------------------------------------------------------------


class SerialBackend:
    """Run the per-shard scans in-process, in shard order (deterministic)."""

    name = "serial"
    supports_pipelined = False

    def __init__(self, automata: Iterable[CombinedAutomaton]) -> None:
        self._automata = list(automata)

    def scan_shards(self, tasks: Iterable[ShardTask]) -> list[RawResult]:
        """One raw result tuple per task, in task order."""
        out: list[RawResult] = []
        for shard, data, active_bitmap, state, limit in tasks:
            result = self._automata[shard].scan(data, active_bitmap, state, limit)
            out.append((result.raw_matches, result.end_state, result.bytes_scanned))
        return out

    def scan_shard_batches(
        self, tasks: Iterable[ShardBatchTask]
    ) -> list[list[RawResult]]:
        """One list of raw result tuples per batch task, in task order."""
        out: list[list[RawResult]] = []
        for shard, payloads, active_bitmap, state, limit in tasks:
            automaton = self._automata[shard]
            results: list[RawResult] = []
            for payload in payloads:
                result = automaton.scan(payload, active_bitmap, state, limit)
                results.append(
                    (result.raw_matches, result.end_state, result.bytes_scanned)
                )
            out.append(results)
        return out

    def shutdown(self) -> None:
        """Nothing pooled; provided for backend interchangeability."""


class ProcessBackend:
    """A multiprocessing pool with shard-local kernel reuse across calls.

    The pool is created lazily on first use: each worker runs
    :func:`_init_worker` once, building every shard automaton from the
    pickled specs, so subsequent tasks only ship ``(shard, payload, ...)``
    tuples.  Any pool exception propagates to the caller — the sharded
    kernel owns the drain-and-fall-back-to-serial policy.
    """

    name = "process"
    supports_pipelined = False

    def __init__(
        self, specs: Iterable[ShardSpec], workers: "int | None" = None
    ) -> None:
        self._specs = tuple(specs)
        if workers is not None and workers <= 0:
            raise ValueError(f"worker count must be positive: {workers}")
        self._workers = workers
        self._pool: "multiprocessing.pool.Pool | None" = None

    @property
    def workers(self) -> int:
        """The worker-process count the pool runs (or will run) with."""
        if self._workers is not None:
            return self._workers
        return max(1, min(len(self._specs), os.cpu_count() or 1))

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = get_mp_context()
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self._specs,),
            )
        return self._pool

    def _chunksize(self, count: int) -> int:
        # Batched work queues: hand each worker one contiguous chunk per
        # call instead of one task at a time.
        return max(1, count // self.workers)

    def scan_shards(self, tasks: Iterable[ShardTask]) -> list[RawResult]:
        """Fan the per-shard tasks across the pool; results in task order."""
        tasks = list(tasks)
        pool = self._ensure_pool()
        return pool.map(_scan_task, tasks, chunksize=self._chunksize(len(tasks)))

    def scan_shard_batches(
        self, tasks: Iterable[ShardBatchTask]
    ) -> list[list[RawResult]]:
        """Fan whole per-shard batches across the pool, one task per shard."""
        tasks = list(tasks)
        pool = self._ensure_pool()
        return pool.map(_scan_batch_task, tasks, chunksize=1)

    def shutdown(self) -> None:
        """Close and join the pool so no worker outlives the backend.

        ``close()`` lets in-flight tasks finish before the join —
        ``terminate()`` could orphan resources a task holds (the lesson
        generalized from the zerocopy arena's unlink protocol).  If the
        pool is too broken even to close, terminate it.
        """
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        try:
            pool.close()
            pool.join()
        except Exception:  # pragma: no cover - sabotaged-pool path
            pool.terminate()
            pool.join()


def make_backend(
    name: str,
    *,
    automata: Iterable[CombinedAutomaton],
    specs: Iterable[ShardSpec],
    workers: "int | None" = None,
) -> ShardBackend:
    """Build the named execution backend.

    ``automata`` are the in-process shard automata (serial execution and
    the fallback path); ``specs`` their picklable descriptions (pool and
    arena workers rebuild from these).
    """
    if name == "serial":
        return SerialBackend(automata)
    if name == "process":
        return ProcessBackend(specs, workers=workers)
    if name == "zerocopy":
        from repro.core.zerocopy import ZeroCopyBackend

        return ZeroCopyBackend(specs, workers=workers)
    raise ValueError(
        f"unknown shard backend {name!r}; expected one of {BACKEND_NAMES}"
    )


if TYPE_CHECKING:  # pragma: no cover - mypy-strict conformance proof

    def _backends_satisfy_protocol(
        serial: SerialBackend,
        pooled: ProcessBackend,
        arena: "ZeroCopyBackend",
    ) -> "tuple[ShardBackend, ShardBackend, ShardBackend]":
        # Assignability is the check: if any backend drifts off the
        # Protocol (or zerocopy off the pipelined extension), mypy fails
        # here rather than at a distant call site.
        pipelined: PipelinedShardBackend = arena
        return serial, pooled, pipelined
