"""MCA^2-style robustness for the DPI service (paper Section 4.3.1).

Complexity attacks against AC-based DPI engines craft payloads that maximize
per-byte work (long failure-link chains in a sparse automaton).  MCA^2
mitigates them by detecting *heavy* traffic and diverting it to dedicated
engines running an implementation whose per-byte cost is flat (here: the
full-table DFA layout, whose single-lookup step cannot be inflated by
failure chains).

In the paper's virtual-DPI adaptation, every DPI service instance exports
telemetry; the DPI controller plays the central *stress monitor*: when an
instance's per-byte scan cost rises well above its calibrated baseline, the
monitor allocates (or reuses) dedicated instances and migrates the heaviest
flows there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import DPIController

#: The registry counters one load window tracks.
_WINDOW_COUNTERS = ("dpi_bytes_scanned_total", "dpi_scan_seconds_total")


@dataclass(frozen=True)
class StressEvent:
    """One instance flagged as stressed during an observation."""

    instance_name: str
    ns_per_byte: float
    baseline_ns_per_byte: float

    @property
    def stress_factor(self) -> float:
        """How far above the baseline the instance runs."""
        if self.baseline_ns_per_byte <= 0:
            return float("inf")
        return self.ns_per_byte / self.baseline_ns_per_byte


@dataclass(frozen=True)
class MitigationAction:
    """The outcome of mitigating one stressed instance."""

    instance_name: str
    dedicated_instance: str
    migrated_flows: tuple
    dedicated_created: bool


class StressMonitor:
    """The central stress monitor (the DPI controller's MCA^2 role)."""

    DEDICATED_PREFIX = "dedicated"

    def __init__(
        self,
        controller: DPIController,
        threshold_factor: float = 2.5,
        min_window_bytes: int = 1024,
        heavy_flows_per_mitigation: int = 3,
    ) -> None:
        if threshold_factor <= 1.0:
            raise ValueError(
                f"threshold factor must exceed 1.0: {threshold_factor}"
            )
        self.controller = controller
        # Register with the controller so telemetry_snapshot() carries the
        # calibrated baselines.
        controller.stress_monitor = self
        self.threshold_factor = threshold_factor
        self.min_window_bytes = min_window_bytes
        self.heavy_flows_per_mitigation = heavy_flows_per_mitigation
        self._baselines: dict[str, float] = {}
        # Per-instance delta windows over the controller's metrics registry
        # (instances publish their counters there).
        self._windows: dict = {}
        self._dedicated: list[str] = []
        self.events: list[StressEvent] = []
        self.actions: list[MitigationAction] = []
        # Hook for the traffic steering application: called with
        # (flow_key, target_instance_name) for every migrated flow.
        self.on_flow_migrated = None

    # --- calibration ------------------------------------------------------

    def _window_delta(self, name: str) -> tuple[int, float]:
        window = self._windows.get(name)
        if window is None:
            # Zero baseline: the first delta covers everything the instance
            # has scanned so far, like a freshly opened window always did.
            window = self.controller.telemetry.registry.window(
                _WINDOW_COUNTERS, zero_baseline=True
            )
            self._windows[name] = window
        delta = window.delta()
        return (
            delta.value("dpi_bytes_scanned_total", instance=name),
            delta.value("dpi_scan_seconds_total", instance=name),
        )

    def calibrate(self) -> dict:
        """Record the current per-byte cost of each instance as its normal-
        traffic baseline.  Run this after warming instances with benign
        traffic."""
        for name in self.controller.instances:
            if name.startswith(self.DEDICATED_PREFIX):
                continue
            delta_bytes, delta_seconds = self._window_delta(name)
            if delta_bytes >= self.min_window_bytes:
                self._baselines[name] = delta_seconds * 1e9 / delta_bytes
        return dict(self._baselines)

    @property
    def baselines(self) -> dict:
        """Calibrated ns-per-byte baselines per instance (the same view
        ``controller.telemetry_snapshot().baselines`` exposes)."""
        return dict(self.controller.telemetry_snapshot().baselines)

    @property
    def dedicated_instances(self) -> list[str]:
        """Names of the currently allocated dedicated instances."""
        return list(self._dedicated)

    # --- detection -----------------------------------------------------------

    def observe(self) -> list[StressEvent]:
        """Compare each instance's per-byte cost over the window since the
        last observation against its baseline."""
        events: list[StressEvent] = []
        for name in list(self.controller.instances):
            if name.startswith(self.DEDICATED_PREFIX):
                continue
            baseline = self._baselines.get(name)
            if baseline is None:
                continue
            delta_bytes, delta_seconds = self._window_delta(name)
            if delta_bytes < self.min_window_bytes:
                continue
            ns_per_byte = delta_seconds * 1e9 / delta_bytes
            if ns_per_byte > baseline * self.threshold_factor:
                events.append(
                    StressEvent(
                        instance_name=name,
                        ns_per_byte=ns_per_byte,
                        baseline_ns_per_byte=baseline,
                    )
                )
        self.events.extend(events)
        registry = self.controller.telemetry.registry
        for event in events:
            registry.counter(
                "mca2_stress_events_total", instance=event.instance_name
            ).inc()
        return events

    # --- mitigation ------------------------------------------------------------

    def mitigate(self, event: StressEvent) -> MitigationAction:
        """Divert the stressed instance's heaviest flows to a dedicated
        instance (allocated on first use) running the flat-cost full-table
        layout."""
        source = self.controller.instances[event.instance_name]
        dedicated_name, created = self._ensure_dedicated(event.instance_name)
        migrated = []
        for flow_key, _work in source.heavy_flows(
            top=self.heavy_flows_per_mitigation
        ):
            if self.controller.migrate_flow(
                flow_key, event.instance_name, dedicated_name
            ):
                migrated.append(flow_key)
                if self.on_flow_migrated is not None:
                    self.on_flow_migrated(flow_key, dedicated_name)
        action = MitigationAction(
            instance_name=event.instance_name,
            dedicated_instance=dedicated_name,
            migrated_flows=tuple(migrated),
            dedicated_created=created,
        )
        self.actions.append(action)
        registry = self.controller.telemetry.registry
        registry.counter(
            "mca2_mitigations_total", instance=event.instance_name
        ).inc()
        if migrated:
            registry.counter(
                "mca2_flows_migrated_total", instance=event.instance_name
            ).inc(len(migrated))
        return action

    def _ensure_dedicated(self, for_instance: str) -> tuple[str, bool]:
        """Reuse an existing dedicated instance or allocate a new one.

        Dedicated instances are intentionally NOT migration targets of the
        DFA state: they are built from the same controller configuration, so
        state ids are only transferable when the layouts produce identical
        renumbering.  Both layouts here share the renumbering step, so the
        exported (state, offset) pairs remain valid.
        """
        if self._dedicated:
            return self._dedicated[-1], False
        name = f"{self.DEDICATED_PREFIX}-{len(self._dedicated) + 1}"
        chain_filter = self.controller.instances.chain_filter_of(for_instance)
        self.controller.instances.provision(
            name, chain_ids=chain_filter, layout="full", dedicated=True
        )
        self._dedicated.append(name)
        return name, True

    def mitigate_anomalous(
        self, instance_name: str, flow_keys
    ) -> MitigationAction:
        """Steer anomaly-flagged flows off a shared instance (MCA²-style).

        The flow-feature layer's verdicts are a second trigger for the
        same mitigation machinery stress events use: migrate the flagged
        flows to the dedicated full-table instance (allocated on first
        use).  Flows the source instance does not hold are skipped.
        """
        dedicated_name, created = self._ensure_dedicated(instance_name)
        migrated = []
        for flow_key in flow_keys:
            if self.controller.migrate_flow(
                flow_key, instance_name, dedicated_name
            ):
                migrated.append(flow_key)
                if self.on_flow_migrated is not None:
                    self.on_flow_migrated(flow_key, dedicated_name)
        action = MitigationAction(
            instance_name=instance_name,
            dedicated_instance=dedicated_name,
            migrated_flows=tuple(migrated),
            dedicated_created=created,
        )
        self.actions.append(action)
        registry = self.controller.telemetry.registry
        registry.counter(
            "mca2_anomaly_mitigations_total", instance=instance_name
        ).inc()
        if migrated:
            registry.counter(
                "mca2_flows_migrated_total", instance=instance_name
            ).inc(len(migrated))
        return action

    def deallocate_dedicated(self) -> list[str]:
        """Release dedicated instances once the attack subsides."""
        released = list(self._dedicated)
        for name in released:
            self.controller.instances.decommission(name)
        self._dedicated.clear()
        return released

    def observe_and_mitigate(self) -> list[MitigationAction]:
        """One monitoring round: detect stress, mitigate every event."""
        return [self.mitigate(event) for event in self.observe()]
