"""Selectable scan kernels for the combined automaton (the hot path).

The combined automaton's per-byte loop is where the whole service spends its
time, so it is isolated here behind one small contract: a kernel is built
from a :class:`~repro.core.combined.CombinedAutomaton` and exposes
``scan(data, active_bitmap, state, limit) -> CombinedScanResult``.  Every
kernel must produce *byte-identical* results — same raw ``(accepting state,
cnt)`` pairs, same end state, same byte count — which the differential
property test (``tests/test_kernels_properties.py``) enforces.

Three kernels are provided:

* ``"reference"`` — the original per-byte Python loops over either layout
  (sparse goto/fail walking or per-state 256-entry rows).  Kept as the
  executable specification the others are checked against.
* ``"flat"`` — the full-table rows fused into one contiguous
  ``array("i", num_states * 256)``; a DFA step is a single
  ``delta[(state << 8) | byte]`` lookup.  The scan loop additionally runs
  over a pre-shifted list mirror of the fused table (list subscripts and
  integer ``+`` are specialized by CPython 3.11's adaptive interpreter,
  ``array`` subscripts and ``|`` are not) and is unrolled eight-ways over
  strided slices, with every loop variable bound to a local.  Works for
  both layouts (the sparse goto/fail tables are materialized once at
  kernel construction).
* ``"regex"`` — a rare-byte prefilter that keeps root-start stateless scans
  inside CPython's C machinery.  Each distinct literal contributes its
  rarest byte (under a static traffic-frequency prior) to one anchor
  character class, compiled once into a single ``re`` scanner; any match
  occurrence must put an anchor byte inside its span, so the DFA only has
  to replay short windows around anchor runs, where the suffix-closed
  match tables built in ``CombinedAutomaton._build_renumbered`` recover
  every overlapping/suffix match exactly.  Payloads dense in anchor bytes
  bail out to the flat kernel up front (a C-level ``translate`` count), so
  the worst case degrades to flat-kernel speed instead of collapsing; on
  high-entropy signature corpora (ClamAV-like) the anchors are bytes that
  web-ish traffic almost never carries and whole payloads are dismissed at
  C scan speed.  Mid-flow resumes and ``limit``-bounded scans fall back to
  the flat kernel.

An optional :class:`ScanCache` (LRU over ``(payload, active_bitmap,
start_state, limit)``) lets repeated payloads — Alexa-style trace workloads
replay the same popular pages — skip the automaton entirely.
"""

from __future__ import annotations

import re
from array import array
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

#: Kernel names accepted by ``CombinedAutomaton`` / ``InstanceConfig``.
KERNEL_NAMES = ("reference", "flat", "regex")

#: One raw match: ``(accepting state, bytes consumed when it was reached)``.
RawMatch = tuple[int, int]

#: Payload types a kernel accepts (the combined automaton may hand over
#: slices of reassembled TCP streams as memoryviews).
ScanData = "bytes | bytearray | memoryview"

#: Cache key of one scan: ``(payload, active_bitmap, start_state, limit)``.
ScanCacheKey = tuple[bytes, int, int, "int | None"]


@dataclass
class CombinedScanResult:
    """Raw output of one combined-DFA scan.

    ``raw_matches`` holds ``(accepting state, cnt)`` pairs, where ``cnt`` is
    the number of bytes consumed when the accepting state was reached.  The
    scanner layer (:mod:`repro.core.scanner`) resolves these to per-middlebox
    match lists, applying stopping conditions and stateless pruning.
    """

    raw_matches: list[RawMatch]
    end_state: int
    bytes_scanned: int


@runtime_checkable
class ScanKernel(Protocol):
    """The kernel contract (KER001 keeps implementations on it).

    A kernel is constructed from a combined automaton and exposes exactly
    this surface; every implementation must produce byte-identical results
    (same raw matches, end state and byte count) for the same inputs.
    """

    name: str

    def scan(
        self,
        data: "bytes | bytearray | memoryview",
        active_bitmap: int,
        state: int,
        limit: "int | None",
    ) -> CombinedScanResult:
        """Scan *data* (up to *limit* bytes) from *state*."""
        ...


class ReferenceKernel:
    """The original per-byte Python loops — the executable specification."""

    name = "reference"

    def __init__(self, automaton) -> None:
        self._automaton = automaton

    def scan(self, data, active_bitmap: int, state: int, limit) -> CombinedScanResult:
        """Scan *data* (up to *limit* bytes) from *state*."""
        automaton = self._automaton
        view = data if limit is None or limit >= len(data) else data[:limit]
        raw_matches: list[RawMatch] = []
        append = raw_matches.append
        f = automaton.num_accepting
        bitmaps = automaton._bitmaps
        cnt = 0
        if automaton._layout_is_full:
            delta = automaton._delta
            for byte in view:
                state = delta[state][byte]
                cnt += 1
                if state < f and bitmaps[state] & active_bitmap:
                    append((state, cnt))
        else:
            goto = automaton._goto
            fail = automaton._fail
            root = automaton.root
            for byte in view:
                while byte not in goto[state] and state != root:
                    state = fail[state]
                state = goto[state].get(byte, root)
                cnt += 1
                if state < f and bitmaps[state] & active_bitmap:
                    append((state, cnt))
        return CombinedScanResult(
            raw_matches=raw_matches, end_state=state, bytes_scanned=cnt
        )


def _fuse_flat_table(automaton) -> array:
    """One contiguous next-state table: entry ``(state << 8) | byte``.

    For the ``full`` layout the per-state rows are fused as-is; for the
    ``sparse`` layout the dense rows are materialized breadth-first from the
    goto/fail tables (a state's failure state is always shallower, so its
    row is complete before the state is visited).
    """
    num_states = automaton.num_states
    if automaton._layout_is_full:
        flat = array("i")
        for row in automaton._delta:
            flat.extend(row.tolist())
        return flat
    goto = automaton._goto
    fail = automaton._fail
    root = automaton.root
    rows: "list[array | None]" = [None] * num_states
    root_row = array("i", [root]) * 256
    for byte, child in goto[root].items():
        root_row[byte] = child
    rows[root] = root_row
    queue = deque(goto[root].values())
    while queue:
        state = queue.popleft()
        row = array("i", rows[fail[state]])
        for byte, child in goto[state].items():
            row[byte] = child
        rows[state] = row
        queue.extend(goto[state].values())
    flat = array("i")
    for row in rows:
        flat.extend(row)
    return flat


class FlatTableKernel:
    """Contiguous-table DFA steps, specialization-friendly and unrolled.

    ``flat_table`` is the canonical fused ``array("i")``; the scan loop runs
    over a list mirror whose entries are pre-shifted (``next_state << 8``)
    so one step is ``state = delta[state + byte]`` with no per-byte shift,
    and the accept test is a single compare against ``num_accepting << 8``.
    The mirror's ints are built through one canon table so the ~256 rows
    referencing each state share one int object.
    """

    name = "flat"

    def __init__(self, automaton) -> None:
        self._bitmaps = automaton._bitmaps
        self.flat_table = _fuse_flat_table(automaton)
        canon = [s << 8 for s in range(automaton.num_states)]
        self._delta = [canon[v] for v in self.flat_table]
        self._f8 = automaton.num_accepting << 8

    def scan(self, data, active_bitmap: int, state: int, limit) -> CombinedScanResult:
        """Scan *data* (up to *limit* bytes) from *state*."""
        view = data if limit is None or limit >= len(data) else data[:limit]
        raw_matches: list[RawMatch] = []
        append = raw_matches.append
        delta = self._delta
        f8 = self._f8
        bitmaps = self._bitmaps
        state <<= 8
        n = len(view)
        end = (n >> 3) << 3
        cnt = 0
        for b0, b1, b2, b3, b4, b5, b6, b7 in zip(
            view[0:end:8],
            view[1:end:8],
            view[2:end:8],
            view[3:end:8],
            view[4:end:8],
            view[5:end:8],
            view[6:end:8],
            view[7:end:8],
        ):
            state = delta[state + b0]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 1))
            state = delta[state + b1]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 2))
            state = delta[state + b2]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 3))
            state = delta[state + b3]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 4))
            state = delta[state + b4]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 5))
            state = delta[state + b5]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 6))
            state = delta[state + b6]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 7))
            state = delta[state + b7]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt + 8))
            cnt += 8
        for cnt, byte in enumerate(view[end:], end + 1):
            state = delta[state + byte]
            if state < f8 and bitmaps[state >> 8] & active_bitmap:
                append((state >> 8, cnt))
        return CombinedScanResult(
            raw_matches=raw_matches, end_state=state >> 8, bytes_scanned=n
        )


def _byte_rarity() -> list:
    """Static per-byte frequency prior for web-ish network traffic.

    Lower score = rarer.  Used to pick each pattern's anchor byte; only the
    relative order matters, and a mediocre choice costs throughput, never
    correctness (the differential tests cover arbitrary pattern bytes).
    """
    score = [8] * 256
    for byte in range(0x80, 0x100):
        score[byte] = 5
    score[0x00] = 20
    score[0x7F] = 8
    for byte in b"\t\n\r":
        score[byte] = 80
    score[0x20] = 95
    for byte in range(ord("a"), ord("z") + 1):
        score[byte] = 90
    for byte in range(ord("A"), ord("Z") + 1):
        score[byte] = 55
    for byte in range(ord("0"), ord("9") + 1):
        score[byte] = 45
    for byte in b"<>/\"'=.:,;-_()&?%+*#@[]{}|^~$!\\`":
        score[byte] = 35
    return score


_BYTE_RARITY = _byte_rarity()


class RegexPrefilterKernel:
    """Rare-byte anchor prefilter; the DFA replays only candidate windows.

    Every distinct literal contributes its rarest byte (by the static
    :data:`_BYTE_RARITY` prior) to one anchor character class.  Any
    occurrence of a pattern therefore contains an anchor byte, so every
    match *end* lies within ``max_pattern_length`` bytes after some anchor
    run found by the single compiled ``[anchors]+`` scanner.  Each merged
    candidate region is replayed through the flat table from the root with
    a ``max_pattern_length - 1`` byte lead-in (the DFA state at any
    position depends only on the preceding ``max_pattern_length`` bytes),
    which reproduces exactly the reference kernel's matches — including
    overlapping and suffix matches, courtesy of the suffix-closed match
    tables.  The scan's end state is replayed over the final window the
    same way.

    Anchor-dense payloads (counted up front with a C-level ``translate``)
    and region sets covering most of the payload bail out to the flat
    kernel, bounding the worst case — e.g. an anchor-flood attack — at
    flat-kernel speed.  Non-root starts and bounded scans use the flat
    kernel directly.
    """

    name = "regex"

    #: Bail to the flat kernel when anchor count * window exceeds this
    #: multiple of the payload length (regions would cover most of it).
    _DENSITY_BAIL = 2

    def __init__(self, automaton) -> None:
        self._root = automaton.root
        self._bitmaps = automaton._bitmaps
        self._fallback = FlatTableKernel(automaton)
        self._delta = self._fallback._delta
        self._f8 = self._fallback._f8
        patterns = automaton._distinct_patterns
        self._window = max((len(p) for p in patterns), default=0)
        if patterns:
            rarity = _BYTE_RARITY
            anchors = sorted(
                {min(pattern, key=rarity.__getitem__) for pattern in patterns}
            )
            self.anchor_bytes = bytes(anchors)
            self._scanner = re.compile(
                b"[" + b"".join(re.escape(bytes([b])) for b in anchors) + b"]+"
            )
            anchor_set = set(anchors)
            self._non_anchors = bytes(b for b in range(256) if b not in anchor_set)
        else:
            self.anchor_bytes = b""
            self._scanner = None
            self._non_anchors = bytes(range(256))

    def _end_state8(self, data) -> int:
        """The (pre-shifted) state of a root-start scan over all of *data*."""
        start = len(data) - self._window
        if start < 0:
            start = 0
        state = self._root << 8
        delta = self._delta
        for byte in data[start:]:
            state = delta[state + byte]
        return state

    def scan(self, data, active_bitmap: int, state: int, limit) -> CombinedScanResult:
        """Scan *data*; non-root starts and bounded scans use the DFA."""
        n = len(data)
        if state != self._root or (limit is not None and limit < n):
            return self._fallback.scan(data, active_bitmap, state, limit)
        if self._scanner is None:
            return CombinedScanResult(
                raw_matches=[], end_state=state, bytes_scanned=n
            )
        if data.__class__ is not bytes:
            data = bytes(data)
        anchor_count = len(data.translate(None, self._non_anchors))
        if anchor_count == 0:
            return CombinedScanResult(
                raw_matches=[], end_state=self._end_state8(data) >> 8, bytes_scanned=n
            )
        window = self._window
        if anchor_count * window * self._DENSITY_BAIL >= n:
            return self._fallback.scan(data, active_bitmap, state, limit)
        # Merged candidate regions: region (lo, hi] holds the match-end
        # positions an anchor run can account for.
        regions: list[list[int]] = []
        last: "list[int] | None" = None
        for found in self._scanner.finditer(data):
            lo = found.start()
            hi = found.end() - 1 + window
            if last is not None and lo <= last[1]:
                if hi > last[1]:
                    last[1] = hi
            else:
                last = [lo, hi]
                regions.append(last)
        raw_matches: list[RawMatch] = []
        append = raw_matches.append
        delta = self._delta
        f8 = self._f8
        bitmaps = self._bitmaps
        root8 = self._root << 8
        lead = window - 1
        for lo, hi in regions:
            start = lo - lead
            if start < 0:
                start = 0
            stop = hi if hi < n else n
            current = root8
            for cnt, byte in enumerate(data[start:stop], start + 1):
                current = delta[current + byte]
                if cnt > lo and current < f8 and bitmaps[current >> 8] & active_bitmap:
                    append((current >> 8, cnt))
        return CombinedScanResult(
            raw_matches=raw_matches,
            end_state=self._end_state8(data) >> 8,
            bytes_scanned=n,
        )


_KERNELS: dict[str, type] = {
    ReferenceKernel.name: ReferenceKernel,
    FlatTableKernel.name: FlatTableKernel,
    RegexPrefilterKernel.name: RegexPrefilterKernel,
}


def make_kernel(automaton, name: str) -> ScanKernel:
    """Build the named kernel over *automaton*."""
    try:
        kernel_class = _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}"
        ) from None
    return kernel_class(automaton)


class ScanCache:
    """A small LRU cache of scan results.

    Keyed by ``(payload, active_bitmap, start_state, limit)`` — everything
    a scan's output depends on — so repeated payloads (replayed popular
    pages in trace workloads) skip the automaton entirely.  Cached results
    are shared; callers must treat them as immutable.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[ScanCacheKey, CombinedScanResult]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: ScanCacheKey) -> "CombinedScanResult | None":
        """The cached result for *key*, or None (counts hits/misses)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: ScanCacheKey, value: CombinedScanResult) -> None:
        """Insert *value*, evicting the least recently used entry if full."""
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss counters and current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }
