"""The virtual-DPI combined automaton (paper Section 5.1).

Construction follows the paper's two steps:

1. Build a single Aho-Corasick automaton as if the pattern set were the
   union of every middlebox's set.  Patterns registered by several
   middleboxes appear once.
2. Renumber states so that the accepting states occupy ``{0, ..., f-1}``
   (the paper's trick: the accept test becomes ``state < f``), and build the
   direct-access ``match`` array whose *j*-th entry lists the
   ``(middlebox id, pattern id)`` pairs of every pattern ending at accepting
   state *j* — including patterns that are proper suffixes of the state's
   label.  Each accepting state also carries a bitmap of the middlebox ids
   in its entry so a single AND against the packet's active-middlebox bitmap
   decides whether the match table must be consulted at all.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Mapping

from repro.core.aho_corasick import AhoCorasick, AutomatonStats
from repro.core.kernels import (
    KERNEL_NAMES,
    CombinedScanResult,
    ScanCache,
    make_kernel,
)
from repro.core.patterns import Pattern, PatternKind

__all__ = ["CombinedAutomaton", "CombinedScanResult"]


class CombinedAutomaton:
    """One DFA serving the merged pattern sets of many middleboxes.

    ``kernel`` selects the scan loop (see :mod:`repro.core.kernels`);
    every kernel produces identical results, so the choice is purely a
    speed/memory trade.  ``scan_cache_size`` > 0 enables an LRU cache of
    whole scan results keyed by payload and scan parameters.
    """

    def __init__(
        self,
        pattern_sets: Mapping[int, Iterable[Pattern]],
        layout: str = "sparse",
        kernel: str = "reference",
        scan_cache_size: int = 0,
    ) -> None:
        self.layout = layout
        self.middlebox_ids = sorted(pattern_sets)
        for middlebox_id in self.middlebox_ids:
            if middlebox_id < 0:
                raise ValueError(f"negative middlebox id: {middlebox_id}")
        # Deduplicate pattern content across middleboxes.
        distinct: dict[bytes, list[tuple[int, int]]] = {}
        for middlebox_id in self.middlebox_ids:
            for pattern in pattern_sets[middlebox_id]:
                if pattern.kind is not PatternKind.LITERAL:
                    raise ValueError(
                        "CombinedAutomaton accepts literal patterns only; "
                        "extract regex anchors first (see repro.core.regex)"
                    )
                distinct.setdefault(pattern.data, []).append(
                    (middlebox_id, pattern.pattern_id)
                )
        self._distinct_patterns = sorted(distinct)
        self._referrers = [distinct[data] for data in self._distinct_patterns]
        self.num_distinct_patterns = len(self._distinct_patterns)

        base = AhoCorasick(self._distinct_patterns, layout=layout)
        self._pattern_lengths = [len(p) for p in self._distinct_patterns]
        self._build_renumbered(base)

        self._middlebox_set = frozenset(self.middlebox_ids)
        bitmap = 0
        for middlebox_id in self.middlebox_ids:
            bitmap |= 1 << middlebox_id
        #: Bitmap with every registered middlebox's bit set (precomputed).
        self.all_middleboxes_bitmap = bitmap

        if scan_cache_size < 0:
            raise ValueError(f"negative scan cache size: {scan_cache_size}")
        self.scan_cache = ScanCache(scan_cache_size) if scan_cache_size else None
        self.select_kernel(kernel)

    # --- construction -------------------------------------------------------

    def _build_renumbered(self, base: AhoCorasick) -> None:
        """Apply the accepting-states-first renumbering and build the match
        table and bitmaps."""
        num_states = base.num_states
        accepting = base.accepting_states
        self.num_accepting = len(accepting)
        permutation = array("l", [0] * num_states)
        next_accepting = 0
        next_other = self.num_accepting
        for old_state in range(num_states):
            if base.is_accepting(old_state):
                permutation[old_state] = next_accepting
                next_accepting += 1
            else:
                permutation[old_state] = next_other
                next_other += 1
        self.root = permutation[0]
        self.num_states = num_states

        # match table and bitmaps, indexed by the NEW accepting-state id.
        self._match: list[tuple] = [()] * self.num_accepting
        self._bitmaps = [0] * self.num_accepting
        self._accept_lengths: list[tuple] = [()] * self.num_accepting
        for old_state in accepting:
            new_state = permutation[old_state]
            pairs = []
            lengths = []
            for pattern_index in base.output_of(old_state):
                length = self._pattern_lengths[pattern_index]
                for referrer in self._referrers[pattern_index]:
                    pairs.append((referrer, length))
            pairs.sort()
            self._match[new_state] = tuple(pair for pair, _ in pairs)
            self._accept_lengths[new_state] = tuple(length for _, length in pairs)
            bitmap = 0
            for (middlebox_id, _), _ in pairs:
                bitmap |= 1 << middlebox_id
            self._bitmaps[new_state] = bitmap

        # Transitions in the new numbering.
        if layout_is_full := (base.layout == "full"):
            old_delta = base._delta
            self._delta = [None] * num_states
            for old_state in range(num_states):
                row = old_delta[old_state]
                self._delta[permutation[old_state]] = array(
                    "l", [permutation[row[byte]] for byte in range(256)]
                )
            self._goto = None
            self._fail = None
        else:
            self._delta = None
            self._goto: list[dict[int, int] | None] = [None] * num_states
            self._fail = array("l", [0] * num_states)
            for old_state in range(num_states):
                new_state = permutation[old_state]
                self._goto[new_state] = {
                    byte: permutation[child]
                    for byte, child in base._goto[old_state].items()
                }
                self._fail[new_state] = permutation[base._fail[old_state]]
        self._layout_is_full = layout_is_full
        self._num_trie_edges = base.num_trie_edges

    # --- bitmaps and match resolution ------------------------------------------

    def bitmask_of(self, middlebox_ids: Iterable[int]) -> int:
        """The active-middlebox bitmap for a set of middlebox ids."""
        known = self._middlebox_set
        bitmap = 0
        for middlebox_id in middlebox_ids:
            if middlebox_id not in known:
                raise KeyError(f"unknown middlebox id: {middlebox_id}")
            bitmap |= 1 << middlebox_id
        return bitmap

    def is_accepting(self, state: int) -> bool:
        """The paper's constant-compare accept test."""
        return state < self.num_accepting

    def match_entry(self, accept_state: int) -> tuple:
        """``(middlebox id, pattern id)`` pairs for an accepting state."""
        return self._match[accept_state]

    def match_entry_with_lengths(self, accept_state: int) -> tuple:
        """Pairs zipped with their pattern lengths (for stateless pruning)."""
        return tuple(
            zip(self._match[accept_state], self._accept_lengths[accept_state])
        )

    def bitmap_of_state(self, accept_state: int) -> int:
        """The middlebox bitmap stored at an accepting state."""
        return self._bitmaps[accept_state]

    def resolve(self, accept_state: int, active_bitmap: int) -> list:
        """Filter a state's match entry down to the active middleboxes."""
        return [
            (pair, length)
            for pair, length in zip(
                self._match[accept_state], self._accept_lengths[accept_state]
            )
            if active_bitmap & (1 << pair[0])
        ]

    # --- scanning ------------------------------------------------------------

    def select_kernel(self, kernel: str) -> None:
        """Install the named scan kernel (see :data:`KERNEL_NAMES`)."""
        if kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
            )
        self.kernel_name = kernel
        self._kernel = make_kernel(self, kernel)
        if self.scan_cache is not None:
            self.scan_cache.clear()

    def next_state(self, state: int, byte: int) -> int:
        """Single DFA step (scan loops inline this for speed)."""
        if self._layout_is_full:
            return self._delta[state][byte]
        goto = self._goto
        fail = self._fail
        root = self.root
        while byte not in goto[state] and state != root:
            state = fail[state]
        return goto[state].get(byte, root)

    def scan(
        self,
        data: bytes,
        active_bitmap: int | None = None,
        state: int | None = None,
        limit: int | None = None,
    ) -> CombinedScanResult:
        """Scan *data* (up to *limit* bytes) against the combined DFA.

        ``active_bitmap`` restricts reported matches to the middleboxes whose
        bits are set (``None`` means all).  ``state`` resumes a stateful scan.
        The work happens in the selected kernel; results are independent of
        the kernel choice.
        """
        if state is None:
            state = self.root
        if active_bitmap is None:
            active_bitmap = self.all_middleboxes_bitmap
        cache = self.scan_cache
        if cache is None:
            return self._kernel.scan(data, active_bitmap, state, limit)
        payload = data if data.__class__ is bytes else bytes(data)
        key = (payload, active_bitmap, state, limit)
        cached = cache.get(key)
        if cached is not None:
            return CombinedScanResult(
                raw_matches=cached.raw_matches,
                end_state=cached.end_state,
                bytes_scanned=cached.bytes_scanned,
            )
        result = self._kernel.scan(data, active_bitmap, state, limit)
        cache.put(key, result)
        return result

    # --- stats -------------------------------------------------------------------

    @property
    def stats(self) -> AutomatonStats:
        """Size statistics (states, edges, memory)."""
        if self._layout_is_full:
            memory = self.num_states * 256 * AhoCorasick._FULL_ENTRY_BYTES
        else:
            memory = self._num_trie_edges * AhoCorasick._SPARSE_EDGE_BYTES
        memory += self.num_states * AhoCorasick._STATE_OVERHEAD_BYTES
        return AutomatonStats(
            num_patterns=self.num_distinct_patterns,
            num_states=self.num_states,
            num_accepting_states=self.num_accepting,
            num_trie_edges=self._num_trie_edges,
            layout=self.layout,
            memory_bytes=memory,
        )
