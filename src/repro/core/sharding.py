"""Pattern-set sharding: split the combined automaton across scan workers.

The paper's MCA² stress mitigation already dedicates engines to slices of
the global pattern set; this module makes that slicing a first-class,
deterministic object and gives it a parallel execution backend:

* :class:`ShardPlan` — a seeded, disjoint partition of the distinct pattern
  contents into K shards, balanced by per-pattern scan-cost estimates
  (``cost`` strategy) or plain pattern counts (``size``).  Plans are pure
  data: the same inputs and seed always produce the same assignment, and an
  explicit assignment (e.g. an MCA² dedicated-engine layout) can be wrapped
  with :meth:`ShardPlan.from_assignments`.
* :class:`ShardedAutomaton` — a drop-in for
  :class:`~repro.core.combined.CombinedAutomaton` that builds one combined
  sub-automaton per shard and mirrors the scan/resolve surface the
  :class:`~repro.core.scanner.VirtualScanner` uses.  Accepting states are
  renumbered globally (shard-local id + shard offset) so raw matches
  resolve through the owning shard's match tables; DFA states are encoded
  in mixed radix over the per-shard state counts, so a stateful flow's
  resume state round-trips through the flow table as one integer exactly
  like the monolithic automaton's.
* :class:`ShardedKernel` — satisfies the
  :class:`~repro.core.kernels.ScanKernel` protocol: it fans a payload out
  to the per-shard kernels (any of reference/flat/regex) through an
  execution backend (``serial``, ``process`` or the shared-memory
  ``zerocopy`` arena — see :mod:`repro.core.workers` and
  :mod:`repro.core.zerocopy`) and merges the per-shard results with stable
  ``(bytes consumed, global accepting state)`` match ordering.  Batched
  scans additionally support a ``pipelined`` mode on arena backends: the
  batch is split into contiguous chunks double-buffered across two arena
  regions, so writing chunk N+1's payloads overlaps scanning chunk N.  If
  a worker pool fails mid-flight the kernel drains it and permanently
  falls back to serial execution, reporting the event through the
  telemetry hook.

Sharding changes *raw* accepting-state numbering, so sharded scans are
equivalent to monolithic scans at the resolved-match level (per-middlebox
``(pattern id, position)`` pairs), not the raw-state level — the shard
equivalence property suite (``tests/test_sharding_properties.py``) pins
exactly that contract, including ``active_bitmap`` masking, ``limit``
cutoffs and mid-flow resumes.
"""

from __future__ import annotations

import heapq
import random
import time
from bisect import bisect_right
from dataclasses import dataclass
from operator import itemgetter
from typing import TYPE_CHECKING, Iterable, Mapping, cast

from repro.core.aho_corasick import AutomatonStats
from repro.core.combined import CombinedAutomaton
from repro.core.kernels import KERNEL_NAMES, CombinedScanResult, ScanCache
from repro.core.patterns import Pattern, PatternKind
from repro.core.workers import BACKEND_NAMES, make_backend, make_shard_spec

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.workers import PipelinedShardBackend

__all__ = [
    "SHARDED_KERNEL_NAME",
    "ShardPlan",
    "ShardedAutomaton",
    "ShardedKernel",
    "estimate_scan_cost",
]

#: The kernel name ``InstanceConfig``/CLI select sharded scanning with.
SHARDED_KERNEL_NAME = "sharded"

#: Merge order of raw matches: by bytes consumed, then global accept state.
_MERGE_ORDER = itemgetter(1, 0)

#: Chunks a pipelined batch is split into (bounded so per-chunk dispatch
#: overhead stays amortized; two are in flight at any moment).
_PIPELINE_CHUNKS = 4


def estimate_scan_cost(data: bytes) -> int:
    """A per-pattern scan-cost estimate for balancing shards.

    Proportional to the automaton states the pattern contributes (its
    length) plus a flat per-pattern overhead for match-table entries and
    anchor pressure.  Only relative magnitudes matter: the estimate decides
    balance quality, never correctness.
    """
    return len(data) + 8


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic, disjoint partition of pattern contents into shards.

    ``assignments[k]`` holds the (sorted) distinct pattern byte-strings of
    shard *k*.  Every distinct pattern appears in exactly one shard; shards
    may be empty when there are fewer patterns than shards.
    """

    num_shards: int
    strategy: str
    seed: int
    assignments: "tuple[tuple[bytes, ...], ...]"

    #: Balancing strategies: ``cost`` uses :func:`estimate_scan_cost`,
    #: ``size`` balances plain pattern counts.
    STRATEGIES = ("cost", "size")

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"shard count must be positive: {self.num_shards}")
        if len(self.assignments) != self.num_shards:
            raise ValueError(
                f"{len(self.assignments)} assignments for {self.num_shards} shards"
            )
        seen: set[bytes] = set()
        for shard in self.assignments:
            for data in shard:
                if data in seen:
                    raise ValueError(f"pattern assigned twice: {data!r}")
                seen.add(data)

    @classmethod
    def build(
        cls,
        pattern_sets: "Mapping[int, Iterable[Pattern]]",
        num_shards: int,
        strategy: str = "cost",
        seed: int = 0,
    ) -> "ShardPlan":
        """Partition the distinct patterns of *pattern_sets* into K shards.

        Patterns are shuffled with a seeded RNG (to decorrelate ties from
        input order), sorted by descending cost, and greedily assigned to
        the currently lightest shard — the classic LPT balance heuristic,
        fully deterministic for a given input set and seed.
        """
        if num_shards < 1:
            raise ValueError(f"shard count must be positive: {num_shards}")
        if strategy not in cls.STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; "
                f"expected one of {cls.STRATEGIES}"
            )
        distinct: set[bytes] = set()
        for middlebox_id in sorted(pattern_sets):
            for pattern in pattern_sets[middlebox_id]:
                if pattern.kind is not PatternKind.LITERAL:
                    raise ValueError(
                        "ShardPlan partitions literal patterns only; "
                        "extract regex anchors first (see repro.core.regex)"
                    )
                distinct.add(pattern.data)
        order = sorted(distinct)
        random.Random(seed).shuffle(order)
        if strategy == "cost":
            costs = {data: estimate_scan_cost(data) for data in order}
        else:
            costs = {data: 1 for data in order}
        order.sort(key=costs.__getitem__, reverse=True)
        # Greedy LPT: heaviest pattern first, always onto the lightest
        # shard (ties resolve to the lowest shard index).
        heap = [(0, shard) for shard in range(num_shards)]
        buckets: "list[list[bytes]]" = [[] for _ in range(num_shards)]
        for data in order:
            load, shard = heapq.heappop(heap)
            buckets[shard].append(data)
            heapq.heappush(heap, (load + costs[data], shard))
        return cls(
            num_shards=num_shards,
            strategy=strategy,
            seed=seed,
            assignments=tuple(tuple(sorted(bucket)) for bucket in buckets),
        )

    @classmethod
    def from_assignments(
        cls, assignments: "Iterable[Iterable[bytes]]", seed: int = 0
    ) -> "ShardPlan":
        """Wrap an explicit shard layout (e.g. MCA² dedicated engines)."""
        shards = tuple(tuple(sorted(set(shard))) for shard in assignments)
        return cls(
            num_shards=len(shards),
            strategy="explicit",
            seed=seed,
            assignments=shards,
        )

    def shard_of(self, data: bytes) -> int:
        """The shard index owning one pattern content (KeyError if absent)."""
        for index, shard in enumerate(self.assignments):
            if data in shard:
                return index
        raise KeyError(f"pattern not in plan: {data!r}")

    def shard_costs(self) -> "list[int]":
        """Estimated scan cost per shard (the quantity ``cost`` balances)."""
        return [
            sum(estimate_scan_cost(data) for data in shard)
            for shard in self.assignments
        ]

    def balance_ratio(self) -> float:
        """Max/mean shard cost over non-empty shards (1.0 = perfect)."""
        costs = [cost for cost in self.shard_costs() if cost]
        if not costs:
            return 1.0
        return max(costs) * len(costs) / sum(costs)

    def subset_pattern_sets(
        self, pattern_sets: "Mapping[int, Iterable[Pattern]]"
    ) -> "list[dict[int, list[Pattern]]]":
        """Per-shard pattern-set mappings.

        Every shard's mapping carries every middlebox id (possibly with an
        empty list) so per-shard automatons agree with the parent about the
        registered-middlebox bitmap.
        """
        owner = {
            data: index
            for index, shard in enumerate(self.assignments)
            for data in shard
        }
        middlebox_ids = sorted(pattern_sets)
        subsets: "list[dict[int, list[Pattern]]]" = [
            {middlebox_id: [] for middlebox_id in middlebox_ids}
            for _ in range(self.num_shards)
        ]
        for middlebox_id in middlebox_ids:
            for pattern in pattern_sets[middlebox_id]:
                subsets[owner[pattern.data]][middlebox_id].append(pattern)
        return subsets


class ShardedKernel:
    """Fan-out/merge scan kernel over per-shard combined automatons.

    Satisfies the :class:`~repro.core.kernels.ScanKernel` protocol.  Raw
    matches come back renumbered into the global accepting-state space
    (shard-local id + shard offset) in stable ``(cnt, state)`` order; the
    end state is the mixed-radix encoding of the per-shard end states.

    The execution backend is pluggable (:mod:`repro.core.workers`).  When a
    ``process`` pool fails, the kernel drains it, switches permanently to
    serial execution, bumps :attr:`fallback_count` and notifies the
    telemetry hook installed by
    :meth:`ShardedAutomaton.bind_telemetry` — a scan never fails because
    the pool did.
    """

    name = SHARDED_KERNEL_NAME

    def __init__(
        self,
        automata,
        offsets,
        backend: str = "serial",
        specs=None,
        workers: "int | None" = None,
    ) -> None:
        self._automata = list(automata)
        self._offsets = list(offsets)
        self._sizes = [automaton.num_states for automaton in self._automata]
        self._roots = [automaton.root for automaton in self._automata]
        strides = []
        stride = 1
        for size in self._sizes:
            strides.append(stride)
            stride *= size
        self._strides = strides
        self._specs = tuple(specs or ())
        self._backend = make_backend(
            backend, automata=self._automata, specs=self._specs, workers=workers
        )
        #: Scans executed per shard (mirrors ``dpi_shard_scans_total``).
        self.shard_scans = [0] * len(self._automata)
        #: Merge passes and the wall time they took.
        self.merges = 0
        self.merge_seconds = 0.0
        #: Times the process pool failed and execution fell back to serial.
        self.fallback_count = 0
        # Telemetry hooks, installed by ShardedAutomaton.bind_telemetry.
        self._shard_counters = None
        self._merge_hist = None
        self._on_pool_failure = None

    # --- state encoding ----------------------------------------------------

    def _encode(self, states) -> int:
        total = 0
        for state, stride in zip(states, self._strides):
            total += state * stride
        return total

    def _decode(self, state: int) -> "list[int]":
        return [
            (state // stride) % size
            for stride, size in zip(self._strides, self._sizes)
        ]

    def _root_state(self) -> int:
        return self._encode(self._roots)

    # --- execution ---------------------------------------------------------

    def _fall_back(self, error: BaseException) -> None:
        """Drain the failed pool and switch permanently to serial."""
        failed = self._backend
        self._backend = make_backend(
            "serial", automata=self._automata, specs=self._specs
        )
        self.fallback_count += 1
        try:
            failed.shutdown()
        except Exception:
            pass  # the pool is already gone; nothing left to drain
        hook = self._on_pool_failure
        if hook is not None:
            hook(error)

    def _run_shards(self, tasks):
        try:
            raws = self._backend.scan_shards(tasks)
        except Exception as error:
            self._fall_back(error)
            raws = self._backend.scan_shards(tasks)
        self._count_scans(1)
        return raws

    def _run_batches(self, tasks, per_shard: int):
        try:
            raws = self._backend.scan_shard_batches(tasks)
        except Exception as error:
            self._fall_back(error)
            raws = self._backend.scan_shard_batches(tasks)
        self._count_scans(per_shard)
        return raws

    def _count_scans(self, amount: int) -> None:
        for index in range(len(self.shard_scans)):
            self.shard_scans[index] += amount
        counters = self._shard_counters
        if counters is not None:
            for counter in counters:
                counter.inc(amount)

    def _merge(self, raws) -> CombinedScanResult:
        """Merge per-shard raw results into one combined result."""
        started = time.perf_counter()
        merged: "list[tuple[int, int]]" = []
        ends: "list[int]" = []
        bytes_scanned = 0
        for index, (raw, end, scanned) in enumerate(raws):
            if raw:
                offset = self._offsets[index]
                merged.extend((offset + state, cnt) for state, cnt in raw)
            ends.append(end)
            if scanned > bytes_scanned:
                bytes_scanned = scanned
        if len(merged) > 1:
            merged.sort(key=_MERGE_ORDER)
        result = CombinedScanResult(
            raw_matches=merged,
            end_state=self._encode(ends),
            bytes_scanned=bytes_scanned,
        )
        elapsed = time.perf_counter() - started
        self.merges += 1
        self.merge_seconds += elapsed
        if self._merge_hist is not None:
            self._merge_hist.observe(elapsed)
        return result

    def scan(self, data, active_bitmap: int, state: int, limit) -> CombinedScanResult:
        """Scan *data* (up to *limit* bytes) from encoded *state*."""
        if data.__class__ is not bytes:
            data = bytes(data)
        states = self._decode(state)
        tasks = [
            (index, data, active_bitmap, states[index], limit)
            for index in range(len(self._automata))
        ]
        return self._merge(self._run_shards(tasks))

    def _batch_tasks(self, batch, active_bitmap, states, limit):
        return [
            (index, batch, active_bitmap, states[index], limit)
            for index in range(len(self._automata))
        ]

    def _scan_batch(
        self,
        payloads,
        active_bitmap: int,
        state: int,
        limit,
        pipelined: bool = False,
    ):
        """Batched fan-out: each shard crosses the backend once per batch.

        With ``pipelined`` on an arena backend, the batch is split into
        contiguous chunks double-buffered through
        ``scan_chunked_batches`` — results are identical (merge order is
        per payload), only the overlap differs.  Backends without the
        pipeline (serial, process) silently take the plain batched path.
        """
        payloads = [
            payload if payload.__class__ is bytes else bytes(payload)
            for payload in payloads
        ]
        states = self._decode(state)
        if (
            pipelined
            and len(payloads) > 1
            and self._backend.supports_pipelined
        ):
            return self._scan_batch_pipelined(
                payloads, active_bitmap, states, limit
            )
        batch = tuple(payloads)
        tasks = self._batch_tasks(batch, active_bitmap, states, limit)
        per_shard = self._run_batches(tasks, len(payloads))
        # per_shard[shard][payload] -> raw tuple; merge column-wise.
        return [
            self._merge([shard_results[row] for shard_results in per_shard])
            for row in range(len(payloads))
        ]

    def _scan_batch_pipelined(self, payloads, active_bitmap, states, limit):
        """Double-buffered batched fan-out (see :meth:`_scan_batch`).

        A mid-pipeline failure reruns the *entire* batch serially: chunk
        results are only consumed on full success, so the fallback can
        neither lose nor duplicate matches.
        """
        count = len(payloads)
        chunk_count = min(_PIPELINE_CHUNKS, count)
        bounds = [
            (count * index) // chunk_count for index in range(chunk_count + 1)
        ]
        chunks = [
            self._batch_tasks(
                tuple(payloads[start:stop]), active_bitmap, states, limit
            )
            for start, stop in zip(bounds, bounds[1:])
        ]
        try:
            # supports_pipelined (checked by the caller) is the backend's
            # promise that it satisfies PipelinedShardBackend.
            pipelined_backend = cast("PipelinedShardBackend", self._backend)
            per_chunk = pipelined_backend.scan_chunked_batches(chunks)
        except Exception as error:
            self._fall_back(error)
            batch = tuple(payloads)
            tasks = self._batch_tasks(batch, active_bitmap, states, limit)
            per_chunk = [self._backend.scan_shard_batches(tasks)]
        self._count_scans(count)
        results = []
        for per_shard in per_chunk:
            for row in range(len(per_shard[0])):
                results.append(
                    self._merge(
                        [shard_results[row] for shard_results in per_shard]
                    )
                )
        return results

    def _shutdown(self) -> None:
        self._backend.shutdown()


class ShardedAutomaton:
    """K combined sub-automatons behind the CombinedAutomaton surface.

    Mirrors every method the scanner, instance and telemetry layers use on
    :class:`~repro.core.combined.CombinedAutomaton` (scan, resolve, match
    tables, bitmaps, stats, scan cache), so a
    :class:`~repro.core.scanner.VirtualScanner` works on either without
    knowing which it holds.  ``kernel_name`` is always ``"sharded"``;
    ``shard_kernel_name`` is the per-shard kernel family.
    """

    kernel_name = SHARDED_KERNEL_NAME

    def __init__(
        self,
        pattern_sets: "Mapping[int, Iterable[Pattern]]",
        num_shards: "int | None" = None,
        *,
        plan: "ShardPlan | None" = None,
        layout: str = "sparse",
        shard_kernel: str = "flat",
        backend: str = "serial",
        scan_cache_size: int = 0,
        workers: "int | None" = None,
        pipelined: bool = False,
        strategy: str = "cost",
        seed: int = 0,
    ) -> None:
        if shard_kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown shard kernel {shard_kernel!r}; "
                f"expected one of {KERNEL_NAMES}"
            )
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown shard backend {backend!r}; "
                f"expected one of {BACKEND_NAMES}"
            )
        if plan is None:
            if num_shards is None:
                raise ValueError("either num_shards or plan is required")
            plan = ShardPlan.build(
                pattern_sets, num_shards, strategy=strategy, seed=seed
            )
        self.plan = plan
        self.layout = layout
        self.shard_kernel_name = shard_kernel
        self.backend_name = backend
        self._workers = workers
        #: Default for ``scan_batch``'s ``pipelined`` argument (arena
        #: backends only; others ignore it).
        self.pipelined = bool(pipelined)
        self.middlebox_ids = sorted(pattern_sets)
        self._middlebox_set = frozenset(self.middlebox_ids)
        bitmap = 0
        for middlebox_id in self.middlebox_ids:
            if middlebox_id < 0:
                raise ValueError(f"negative middlebox id: {middlebox_id}")
            bitmap |= 1 << middlebox_id
        self.all_middleboxes_bitmap = bitmap

        subsets = plan.subset_pattern_sets(pattern_sets)
        self.shards = [
            CombinedAutomaton(subset, layout=layout, kernel=shard_kernel)
            for subset in subsets
        ]
        self._specs = tuple(
            make_shard_spec(subset, layout, shard_kernel) for subset in subsets
        )
        offsets = []
        total_accepting = 0
        for automaton in self.shards:
            offsets.append(total_accepting)
            total_accepting += automaton.num_accepting
        self._offsets = offsets
        self.num_accepting = total_accepting
        self.num_distinct_patterns = sum(
            automaton.num_distinct_patterns for automaton in self.shards
        )

        self._kernel = ShardedKernel(
            self.shards,
            offsets,
            backend=backend,
            specs=self._specs,
            workers=workers,
        )
        #: The product-DFA state count (the encoded-state value space).
        self.num_states = 1
        for automaton in self.shards:
            self.num_states *= automaton.num_states
        self.root = self._kernel._root_state()

        if scan_cache_size < 0:
            raise ValueError(f"negative scan cache size: {scan_cache_size}")
        self.scan_cache = ScanCache(scan_cache_size) if scan_cache_size else None

    # --- accept-state bookkeeping -----------------------------------------

    def _locate(self, accept_state: int) -> "tuple[CombinedAutomaton, int]":
        """The owning shard automaton and shard-local id of an accept state."""
        if not 0 <= accept_state < self.num_accepting:
            raise IndexError(f"accepting state out of range: {accept_state}")
        shard = bisect_right(self._offsets, accept_state) - 1
        return self.shards[shard], accept_state - self._offsets[shard]

    def is_accepting(self, state: int) -> bool:
        """The constant-compare accept test (valid for raw-match states)."""
        return state < self.num_accepting

    def match_entry(self, accept_state: int) -> tuple:
        """``(middlebox id, pattern id)`` pairs for a global accept state."""
        automaton, local = self._locate(accept_state)
        return automaton.match_entry(local)

    def match_entry_with_lengths(self, accept_state: int) -> tuple:
        """Pairs zipped with their pattern lengths (stateless pruning)."""
        automaton, local = self._locate(accept_state)
        return automaton.match_entry_with_lengths(local)

    def bitmap_of_state(self, accept_state: int) -> int:
        """The middlebox bitmap stored at a global accept state."""
        automaton, local = self._locate(accept_state)
        return automaton.bitmap_of_state(local)

    def resolve(self, accept_state: int, active_bitmap: int) -> list:
        """Filter a state's match entry down to the active middleboxes."""
        automaton, local = self._locate(accept_state)
        return automaton.resolve(local, active_bitmap)

    def bitmask_of(self, middlebox_ids: "Iterable[int]") -> int:
        """The active-middlebox bitmap for a set of middlebox ids."""
        known = self._middlebox_set
        bitmap = 0
        for middlebox_id in middlebox_ids:
            if middlebox_id not in known:
                raise KeyError(f"unknown middlebox id: {middlebox_id}")
            bitmap |= 1 << middlebox_id
        return bitmap

    # --- scanning ----------------------------------------------------------

    def select_kernel(self, kernel: str) -> None:
        """Install a per-shard kernel family (``"sharded"`` is a no-op)."""
        if kernel == SHARDED_KERNEL_NAME:
            return
        if kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{KERNEL_NAMES + (SHARDED_KERNEL_NAME,)}"
            )
        old = self._kernel
        for automaton in self.shards:
            automaton.select_kernel(kernel)
        self.shard_kernel_name = kernel
        self._specs = tuple(
            (spec[0], spec[1], kernel) for spec in self._specs
        )
        self._kernel = ShardedKernel(
            self.shards,
            self._offsets,
            backend=self.backend_name,
            specs=self._specs,
            workers=self._workers,
        )
        old._shutdown()
        if self.scan_cache is not None:
            self.scan_cache.clear()

    def scan(
        self,
        data: bytes,
        active_bitmap: "int | None" = None,
        state: "int | None" = None,
        limit: "int | None" = None,
    ) -> CombinedScanResult:
        """Scan *data* across every shard and merge (see the module doc)."""
        if state is None:
            state = self.root
        if active_bitmap is None:
            active_bitmap = self.all_middleboxes_bitmap
        cache = self.scan_cache
        if cache is None:
            return self._kernel.scan(data, active_bitmap, state, limit)
        payload = data if data.__class__ is bytes else bytes(data)
        key = (payload, active_bitmap, state, limit)
        cached = cache.get(key)
        if cached is not None:
            return CombinedScanResult(
                raw_matches=cached.raw_matches,
                end_state=cached.end_state,
                bytes_scanned=cached.bytes_scanned,
            )
        result = self._kernel.scan(payload, active_bitmap, state, limit)
        cache.put(key, result)
        return result

    def scan_batch(
        self,
        payloads,
        active_bitmap: "int | None" = None,
        state: "int | None" = None,
        limit: "int | None" = None,
        pipelined: "bool | None" = None,
    ) -> "list[CombinedScanResult]":
        """Scan a batch of payloads, one backend round-trip per shard.

        All payloads start from the same *state* (the root by default) —
        the batched path exists for independent-packet throughput, where
        per-payload pool dispatch would dominate.  Results come back in
        payload order; the scan cache is bypassed.  ``pipelined``
        (defaulting to the constructor flag) double-buffers the batch
        through two arena regions on backends that support it.
        """
        if state is None:
            state = self.root
        if active_bitmap is None:
            active_bitmap = self.all_middleboxes_bitmap
        if pipelined is None:
            pipelined = self.pipelined
        return self._kernel._scan_batch(
            payloads, active_bitmap, state, limit, pipelined=pipelined
        )

    # --- telemetry and lifecycle ------------------------------------------

    def bind_telemetry(self, hub, instance_name: str) -> None:
        """Publish per-shard scan counters, the merge-time histogram and
        the arena backend's gauges/counters into *hub*'s registry, and
        route pool-failure events to its fault timeline."""
        registry = hub.registry
        kernel = self._kernel
        kernel._shard_counters = [
            registry.counter(
                "dpi_shard_scans_total", instance=instance_name, shard=index
            )
            for index in range(len(self.shards))
        ]
        kernel._merge_hist = registry.histogram(
            "dpi_shard_merge_seconds", instance=instance_name
        )

        # Arena telemetry: the callbacks read through ``kernel._backend``
        # so a fallback to serial makes them report zero instead of a
        # drained arena's stale numbers.
        def arena_occupancy() -> float:
            return float(getattr(kernel._backend, "occupied_bytes", 0))

        def queue_depth() -> float:
            probe = getattr(kernel._backend, "descriptor_queue_depth", None)
            return float(probe()) if probe is not None else 0.0

        registry.gauge_callback(
            "dpi_shard_arena_bytes", arena_occupancy, instance=instance_name
        )
        registry.gauge_callback(
            "dpi_shard_descriptor_queue_depth",
            queue_depth,
            instance=instance_name,
        )
        backend = kernel._backend
        if hasattr(backend, "copy_counter"):
            backend.copy_counter = registry.counter(
                "dpi_shard_copy_bytes_avoided_total", instance=instance_name
            )

        def on_pool_failure(error: BaseException) -> None:
            hub.record_fault(
                "shard_pool_failure",
                instance_name,
                phase="recover",
                detail=f"fell back to serial: {type(error).__name__}",
            )

        kernel._on_pool_failure = on_pool_failure

    @property
    def shard_scan_counts(self) -> "tuple[int, ...]":
        """Scans executed per shard since construction."""
        return tuple(self._kernel.shard_scans)

    @property
    def active_backend_name(self) -> str:
        """The backend currently executing scans (reflects fallback)."""
        return self._kernel._backend.name

    @property
    def pool_fallbacks(self) -> int:
        """Times the process pool failed and execution fell back to serial."""
        return self._kernel.fallback_count

    def shutdown(self) -> None:
        """Release the execution backend (drains worker pools; the
        zerocopy backend also unlinks its shared-memory arena)."""
        self._kernel._shutdown()

    @property
    def stats(self) -> AutomatonStats:
        """Aggregate size statistics over every shard."""
        shard_stats = [automaton.stats for automaton in self.shards]
        return AutomatonStats(
            num_patterns=self.num_distinct_patterns,
            num_states=sum(stat.num_states for stat in shard_stats),
            num_accepting_states=self.num_accepting,
            num_trie_edges=sum(stat.num_trie_edges for stat in shard_stats),
            layout=self.layout,
            memory_bytes=sum(stat.memory_bytes for stat in shard_stats),
        )
