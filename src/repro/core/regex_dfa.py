"""Determinized regular-expression matching (the paper's DFA alternative).

Section 3 of the paper contrasts the two classic regex representations:
"the aforementioned DFA solutions suffer from memory explosion especially
when combining a few expressions into a single data structure, while the
NFA solutions suffer from lower performance".  :class:`RegexDFA` implements
the DFA side by subset construction over the Thompson NFAs of
:mod:`repro.core.nfa`, so both claims can be measured on the same
expressions (see ``benchmarks/test_ablation_regex_representation.py``).

The automaton is a *scanning* DFA: the NFA start closure is folded into
every state, so matches are found at any offset (the implicit ``.*``
prefix), and match semantics are the all-ends convention shared by every
engine in this repository.  Construction is capped by ``max_states`` and
raises :class:`StateExplosionError` beyond it — which is not a failure mode
but the very phenomenon the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nfa import RegexNFA


class StateExplosionError(RuntimeError):
    """Raised when determinization exceeds the configured state budget."""

    def __init__(self, limit: int):
        super().__init__(
            f"subset construction exceeded {limit} DFA states — the "
            "combined-expression memory explosion the paper describes"
        )
        self.limit = limit


@dataclass(frozen=True)
class _CombinedNFA:
    """Several Thompson NFAs glued by a shared epsilon start."""

    nfas: tuple

    def start_closure(self) -> frozenset:
        """Epsilon closure of every component start state."""
        states = set()
        for index, nfa in enumerate(self.nfas):
            for state in nfa._closure({nfa.start}):
                states.add((index, state))
        return frozenset(states)

    def move(self, states: frozenset, byte: int) -> frozenset:
        """NFA states reachable on *byte*, epsilon-closed."""
        reached = set()
        for index, state in states:
            nfa = self.nfas[index]
            edge = nfa._states[state].edge
            if edge is not None and byte in edge[0]:
                reached.add((index, edge[1]))
        closed = set()
        grouped: dict[int, set] = {}
        for index, state in reached:
            grouped.setdefault(index, set()).add(state)
        for index, group in grouped.items():
            for state in self.nfas[index]._closure(group):
                closed.add((index, state))
        return frozenset(closed)

    def accepts_of(self, states: frozenset) -> tuple:
        """Indices of the expressions accepting in this subset."""
        return tuple(
            sorted(
                {
                    index
                    for index, state in states
                    if state == self.nfas[index].accept
                }
            )
        )


class RegexDFA:
    """One DFA matching several regular expressions simultaneously."""

    DEFAULT_MAX_STATES = 50_000

    def __init__(self, patterns, max_states: int = DEFAULT_MAX_STATES):
        if not patterns:
            raise ValueError("RegexDFA needs at least one expression")
        if max_states < 1:
            raise ValueError(f"max_states must be positive: {max_states}")
        self.patterns = [p if isinstance(p, bytes) else p.encode() for p in patterns]
        combined = _CombinedNFA(nfas=tuple(RegexNFA(p) for p in self.patterns))
        start_closure = combined.start_closure()

        # Subset construction with the start closure folded into every
        # state (scanning semantics).
        initial = frozenset(start_closure)
        state_ids: dict[frozenset, int] = {initial: 0}
        transitions: list[list[int]] = []
        accepts: list[tuple] = []
        worklist = [initial]
        while worklist:
            subset = worklist.pop()
            state_id = state_ids[subset]
            while len(transitions) <= state_id:
                transitions.append([0] * 256)
                accepts.append(())
            accepts[state_id] = combined.accepts_of(subset)
            row = transitions[state_id]
            for byte in range(256):
                target = combined.move(subset, byte) | start_closure
                target = frozenset(target)
                target_id = state_ids.get(target)
                if target_id is None:
                    if len(state_ids) >= max_states:
                        raise StateExplosionError(max_states)
                    target_id = len(state_ids)
                    state_ids[target] = target_id
                    worklist.append(target)
                row[byte] = target_id
        self._transitions = transitions
        self._accepts = accepts

    @property
    def num_states(self) -> int:
        """Number of automaton states."""
        return len(self._transitions)

    @property
    def memory_bytes(self) -> int:
        """Full-table cost: 256 entries x 4 bytes per state."""
        return self.num_states * 256 * 4

    def scan(self, data: bytes) -> list:
        """All ``(end offset, expression index)`` matches."""
        transitions = self._transitions
        accepts = self._accepts
        state = 0
        matches = []
        for position, byte in enumerate(data):
            state = transitions[state][byte]
            for index in accepts[state]:
                matches.append((position + 1, index))
        return matches

    def match_ends(self, data: bytes, index: int = 0) -> list:
        """End offsets of one expression's matches (NFA-comparable)."""
        return [end for end, matched in self.scan(data) if matched == index]

    def search(self, data: bytes) -> bool:
        """True if the expression matches anywhere in *data*."""
        transitions = self._transitions
        accepts = self._accepts
        state = 0
        for byte in data:
            state = transitions[state][byte]
            if accepts[state]:
                return True
        return False

    # --- minimization -------------------------------------------------------

    def minimize(self) -> int:
        """Merge equivalent states in place (Moore partition refinement).

        This is the standard countermeasure the DFA-compression literature
        the paper cites starts from.  States must agree on their *accept
        signature* (which expressions end there) to merge, so per-expression
        attribution is preserved exactly.  Returns the number of states
        removed.
        """
        before = self.num_states
        # Initial partition: by accept signature.
        block_of = {}
        signatures = {}
        for state, signature in enumerate(self._accepts):
            block = signatures.setdefault(signature, len(signatures))
            block_of[state] = block
        num_blocks = len(signatures)
        while True:
            # Refine: states split when their transition block-vectors differ.
            refined: dict[tuple, int] = {}
            new_block_of = {}
            for state in range(before):
                row = self._transitions[state]
                key = (block_of[state],) + tuple(
                    block_of[row[byte]] for byte in range(256)
                )
                block = refined.setdefault(key, len(refined))
                new_block_of[state] = block
            if len(refined) == num_blocks:
                break
            num_blocks = len(refined)
            block_of = new_block_of
        if num_blocks == before:
            return 0
        # Rebuild tables; keep state 0's block as the new start state 0.
        remap = {}
        remap[block_of[0]] = 0
        for state in range(before):
            block = block_of[state]
            if block not in remap:
                remap[block] = len(remap)
        new_transitions = [None] * num_blocks
        new_accepts = [()] * num_blocks
        for state in range(before):
            new_id = remap[block_of[state]]
            if new_transitions[new_id] is None:
                new_transitions[new_id] = [
                    remap[block_of[self._transitions[state][byte]]]
                    for byte in range(256)
                ]
                new_accepts[new_id] = self._accepts[state]
        self._transitions = new_transitions
        self._accepts = new_accepts
        return before - num_blocks
