"""Deployment planning for DPI service instances (paper Section 4.3).

The DPI controller decides where instances run and which policy chains each
serves.  This module implements the deployment considerations the paper
discusses:

* grouping similar policy chains so an instance only carries the pattern
  sets its chains actually need;
* grouping by traffic class (e.g. HTTP-pattern chains vs FTP-pattern
  chains);
* load-driven scale out / scale in / flow migration decisions based on the
  telemetry instances export.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

#: Bound on retained planning/orchestration history windows.  Long-running
#: control loops tick forever; unbounded history lists grow with them.
PLAN_HISTORY_LIMIT = 128


class DecisionKind(enum.Enum):
    """The planner's action vocabulary."""

    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    MIGRATE_FLOWS = "migrate_flows"


@dataclass(frozen=True)
class DeploymentDecision:
    """One action the planner recommends to the controller."""

    kind: DecisionKind
    instance_name: str
    detail: str = ""
    target_instance: str | None = None


def jaccard_similarity(set_a: set, set_b: set) -> float:
    """Similarity of two chains' middlebox sets (1.0 = identical)."""
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def group_chains_by_similarity(
    chain_map: dict, max_groups: int, min_similarity: float = 0.0
) -> list[list]:
    """Greedy agglomerative grouping of policy chains.

    ``chain_map`` maps chain id -> iterable of middlebox ids.  Starting from
    one group per chain, the two groups whose middlebox sets are most
    similar merge, until *max_groups* remain or the best similarity drops
    below *min_similarity*.  Returns a list of chain-id lists.
    """
    if max_groups < 1:
        raise ValueError(f"max_groups must be >= 1, got {max_groups}")
    groups = [
        {"chains": [chain_id], "middleboxes": set(middleboxes)}
        for chain_id, middleboxes in sorted(chain_map.items())
    ]
    while len(groups) > max_groups:
        best = None
        best_similarity = -1.0
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                similarity = jaccard_similarity(
                    groups[i]["middleboxes"], groups[j]["middleboxes"]
                )
                if similarity > best_similarity:
                    best_similarity = similarity
                    best = (i, j)
        if best is None or best_similarity < min_similarity:
            break
        i, j = best
        groups[i]["chains"].extend(groups[j]["chains"])
        groups[i]["middleboxes"] |= groups[j]["middleboxes"]
        del groups[j]
    return [sorted(group["chains"]) for group in groups]


def group_chains_by_traffic_class(chain_classes: dict) -> dict:
    """Group chain ids by their traffic class label (e.g. "http", "ftp").

    ``chain_classes`` maps chain id -> class label; returns
    ``{label: [chain ids]}``.
    """
    groups: dict = {}
    for chain_id, label in sorted(chain_classes.items()):
        groups.setdefault(label, []).append(chain_id)
    return groups


@dataclass
class LoadSample:
    """One instance's load over an observation window."""

    instance_name: str
    bytes_scanned: int
    scan_seconds: float
    window_seconds: float

    @property
    def utilization(self) -> float:
        """Fraction of the window spent scanning (1.0 = saturated)."""
        if self.window_seconds <= 0:
            return 0.0
        return self.scan_seconds / self.window_seconds

    @property
    def ns_per_byte(self) -> float:
        """Per-byte scan cost over the window (0.0 with no traffic)."""
        if self.bytes_scanned <= 0:
            return 0.0
        return self.scan_seconds * 1e9 / self.bytes_scanned


@dataclass
class DeploymentPlanner:
    """Turns load samples into scale/migrate decisions.

    ``high_watermark`` / ``low_watermark`` bound the target utilization
    band; an instance above the high mark triggers a scale-out (or a flow
    migration when a peer has headroom), one below the low mark becomes a
    scale-in candidate — but the last instance of a group is never removed.
    """

    high_watermark: float = 0.8
    low_watermark: float = 0.2
    #: Recent sample windows, newest last, capped at PLAN_HISTORY_LIMIT.
    history: deque = field(
        default_factory=lambda: deque(maxlen=PLAN_HISTORY_LIMIT)
    )

    def plan(self, samples: list) -> list:
        """Compute decisions for one observation window."""
        decisions: list[DeploymentDecision] = []
        if not samples:
            return decisions
        self.history.append(list(samples))
        overloaded = [s for s in samples if s.utilization > self.high_watermark]
        underloaded = [s for s in samples if s.utilization < self.low_watermark]
        spare = sorted(underloaded, key=lambda s: s.utilization)
        for sample in sorted(
            overloaded, key=lambda s: s.utilization, reverse=True
        ):
            if spare:
                target = spare.pop(0)
                decisions.append(
                    DeploymentDecision(
                        kind=DecisionKind.MIGRATE_FLOWS,
                        instance_name=sample.instance_name,
                        target_instance=target.instance_name,
                        detail=(
                            f"utilization {sample.utilization:.2f} -> "
                            f"{target.instance_name} at {target.utilization:.2f}"
                        ),
                    )
                )
            else:
                decisions.append(
                    DeploymentDecision(
                        kind=DecisionKind.SCALE_OUT,
                        instance_name=sample.instance_name,
                        detail=f"utilization {sample.utilization:.2f}",
                    )
                )
        # Scale in only instances that were not just used as migration
        # targets, and never below one instance total.
        migration_targets = {
            d.target_instance for d in decisions if d.target_instance
        }
        removable = [
            s
            for s in underloaded
            if s.instance_name not in migration_targets
        ]
        for sample in removable:
            if len(samples) - sum(
                1 for d in decisions if d.kind is DecisionKind.SCALE_IN
            ) <= 1:
                break
            decisions.append(
                DeploymentDecision(
                    kind=DecisionKind.SCALE_IN,
                    instance_name=sample.instance_name,
                    detail=f"utilization {sample.utilization:.2f}",
                )
            )
        return decisions
