"""Regular-expression handling via anchor pre-filtering (paper Section 5.3).

Each regex registered by a middlebox is decomposed:

* its anchors (required literal substrings, length >= 4) become internal
  literal patterns fed to the combined string matcher, with pattern ids in a
  reserved range so they are never reported to middleboxes directly;
* if **all** anchors of an expression are seen in a packet, the full regex
  engine (Python ``re``, standing in for PCRE) is invoked on that packet for
  that expression only;
* an expression with no usable anchors goes on the *fallback* list and is
  scanned by the regex engine on every packet, in parallel to string
  matching — the paper's escape hatch for anchor-less expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.anchors import MIN_ANCHOR_LENGTH, extract_anchors
from repro.core.patterns import Pattern, PatternKind

#: Anchor pattern ids live at and above this value; real middlebox pattern
#: ids must stay below it.  Reports never carry ids from this range.
ANCHOR_ID_BASE = 1 << 20


@dataclass
class _RegexEntry:
    pattern_id: int
    source: bytes
    compiled: "re.Pattern"
    anchor_ids: frozenset


@dataclass
class PreFilterStats:
    """Counters for the ablation benchmarks."""

    regexes: int = 0
    fallback_regexes: int = 0
    anchor_patterns: int = 0
    confirmations_invoked: int = 0
    confirmations_matched: int = 0
    fallback_scans: int = 0


class RegexPreFilter:
    """Per-middlebox regex bookkeeping for a DPI service instance.

    ``fallback_engine`` selects the matcher for anchor-less expressions:
    ``"re"`` (the stdlib engine, standing in for PCRE) or ``"nfa"`` (the
    from-scratch Thompson NFA of :mod:`repro.core.nfa` — the paper's
    run-in-parallel NFA path).  Expressions the NFA subset cannot express
    (lookarounds, backreferences, anchors) fall back to ``re``.
    """

    FALLBACK_ENGINES = ("re", "nfa")

    def __init__(
        self,
        min_anchor_length: int = MIN_ANCHOR_LENGTH,
        fallback_engine: str = "re",
    ) -> None:
        if fallback_engine not in self.FALLBACK_ENGINES:
            raise ValueError(
                f"unknown fallback engine {fallback_engine!r}; expected one "
                f"of {self.FALLBACK_ENGINES}"
            )
        self.fallback_engine = fallback_engine
        self.min_anchor_length = min_anchor_length
        # middlebox id -> {pattern id -> _RegexEntry}
        self._anchored: dict[int, dict[int, _RegexEntry]] = {}
        # middlebox id -> {pattern id -> compiled regex} (anchor-less)
        self._fallback: dict[int, dict[int, "re.Pattern"]] = {}
        # middlebox id -> {anchor bytes -> anchor pattern id}
        self._anchor_ids: dict[int, dict[bytes, int]] = {}
        self._next_anchor_id: dict[int, int] = {}
        self.stats = PreFilterStats()

    # --- registration ---------------------------------------------------------

    def add_regex(self, middlebox_id: int, pattern: Pattern) -> list[Pattern]:
        """Register a REGEX pattern; returns the internal anchor literal
        patterns that must be added to the middlebox's string set."""
        if pattern.kind is not PatternKind.REGEX:
            raise ValueError("add_regex requires a REGEX pattern")
        if pattern.pattern_id >= ANCHOR_ID_BASE:
            raise ValueError(
                f"pattern id {pattern.pattern_id} collides with the reserved "
                f"anchor id range (>= {ANCHOR_ID_BASE})"
            )
        compiled = re.compile(pattern.data, re.DOTALL)
        anchors = extract_anchors(pattern.data, self.min_anchor_length)
        self.stats.regexes += 1
        if not anchors:
            matcher = self._compile_fallback(pattern.data, compiled)
            self._fallback.setdefault(middlebox_id, {})[pattern.pattern_id] = matcher
            self.stats.fallback_regexes += 1
            return []
        new_literals: list[Pattern] = []
        anchor_ids = []
        per_middlebox = self._anchor_ids.setdefault(middlebox_id, {})
        for anchor in anchors:
            anchor_id = per_middlebox.get(anchor)
            if anchor_id is None:
                anchor_id = self._next_anchor_id.get(middlebox_id, ANCHOR_ID_BASE)
                self._next_anchor_id[middlebox_id] = anchor_id + 1
                per_middlebox[anchor] = anchor_id
                new_literals.append(Pattern(pattern_id=anchor_id, data=anchor))
                self.stats.anchor_patterns += 1
            anchor_ids.append(anchor_id)
        entry = _RegexEntry(
            pattern_id=pattern.pattern_id,
            source=pattern.data,
            compiled=compiled,
            anchor_ids=frozenset(anchor_ids),
        )
        self._anchored.setdefault(middlebox_id, {})[pattern.pattern_id] = entry
        return new_literals

    def remove_regex(self, middlebox_id: int, pattern_id: int) -> list[int]:
        """Unregister a regex; returns anchor ids no longer needed by any
        remaining regex of this middlebox (to drop from the string set)."""
        fallback = self._fallback.get(middlebox_id, {})
        if pattern_id in fallback:
            del fallback[pattern_id]
            return []
        anchored = self._anchored.get(middlebox_id, {})
        entry = anchored.pop(pattern_id, None)
        if entry is None:
            raise KeyError(
                f"middlebox {middlebox_id} has no regex with id {pattern_id}"
            )
        still_used = set()
        for other in anchored.values():
            still_used |= other.anchor_ids
        obsolete = sorted(entry.anchor_ids - still_used)
        per_middlebox = self._anchor_ids.get(middlebox_id, {})
        for anchor, anchor_id in list(per_middlebox.items()):
            if anchor_id in obsolete:
                del per_middlebox[anchor]
        return obsolete

    def has_regexes(self, middlebox_id: int) -> bool:
        """True if the middlebox registered any regular expression."""
        return bool(
            self._anchored.get(middlebox_id) or self._fallback.get(middlebox_id)
        )

    def anchored_regexes(self, middlebox_id: int) -> list[int]:
        """Pattern ids of the anchor-pre-filtered expressions."""
        return sorted(self._anchored.get(middlebox_id, {}))

    def fallback_regexes(self, middlebox_id: int) -> list[int]:
        """Pattern ids of the anchor-less (always-scanned) expressions."""
        return sorted(self._fallback.get(middlebox_id, {}))

    # --- per-packet evaluation ---------------------------------------------------

    def confirm(
        self, middlebox_id: int, payload: bytes, matched_anchor_ids
    ) -> list[tuple[int, int]]:
        """Run the full engine for every regex whose anchors all appeared.

        Returns ``(pattern id, end offset)`` pairs, one per regex match
        occurrence in *payload*.
        """
        anchored = self._anchored.get(middlebox_id)
        if not anchored:
            return []
        matched = (
            matched_anchor_ids
            if isinstance(matched_anchor_ids, (set, frozenset))
            else set(matched_anchor_ids)
        )
        results: list[tuple[int, int]] = []
        for entry in anchored.values():
            if not entry.anchor_ids <= matched:
                continue
            self.stats.confirmations_invoked += 1
            found = False
            for match in entry.compiled.finditer(payload):
                results.append((entry.pattern_id, match.end()))
                found = True
            if found:
                self.stats.confirmations_matched += 1
        return results

    def _compile_fallback(self, source: bytes, compiled):
        """The matcher object for one anchor-less expression."""
        if self.fallback_engine == "nfa":
            from repro.core.nfa import RegexNFA, RegexSyntaxError

            try:
                return RegexNFA(source)
            except RegexSyntaxError:
                # Constructs outside the NFA subset use the stdlib engine.
                return compiled
        return compiled

    @staticmethod
    def _fallback_ends(matcher, payload: bytes):
        """End offsets of a fallback matcher, engine-agnostic."""
        if hasattr(matcher, "iter_match_ends"):
            return matcher.iter_match_ends(payload)
        return (match.end() for match in matcher.finditer(payload))

    def scan_fallback(self, middlebox_id: int, payload: bytes) -> list[tuple[int, int]]:
        """Scan anchor-less regexes — run on every packet."""
        fallback = self._fallback.get(middlebox_id)
        if not fallback:
            return []
        self.stats.fallback_scans += 1
        results: list[tuple[int, int]] = []
        for pattern_id, matcher in fallback.items():
            for end in self._fallback_ends(matcher, payload):
                results.append((pattern_id, end))
        return results


def split_matches(matches: list) -> tuple[list, set]:
    """Split a middlebox's raw match list into reportable literal matches
    and the set of matched internal anchor ids."""
    reportable = []
    anchor_ids = set()
    for pattern_id, position in matches:
        if pattern_id >= ANCHOR_ID_BASE:
            anchor_ids.add(pattern_id)
        else:
            reportable.append((pattern_id, position))
    return reportable, anchor_ids
