"""The service orchestrator: the DPI controller's network-wide control loop.

Section 4.3 of the paper: "the DPI controller should collect performance
metrics from the working DPI instances and may decide to allocate more
instances, to remove service instances, or to migrate flows between
instances", collaborating with the TSA to realize the changes.

:class:`ServiceOrchestrator` closes that loop:

* each :meth:`tick` collects per-instance load samples over the window;
* the :class:`~repro.core.deployment.DeploymentPlanner` turns them into
  decisions;
* decisions are executed — ``SCALE_OUT`` spawns an instance on a host from
  the spare pool and registers it with the TSA; ``MIGRATE_FLOWS`` moves the
  hottest flows' scan state between instances and repins their steering;
  ``SCALE_IN`` releases an idle instance's host back to the pool.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.deployment import (
    PLAN_HISTORY_LIMIT,
    DecisionKind,
    DeploymentPlanner,
)


@dataclass
class ExecutedAction:
    """What one decision turned into."""

    kind: DecisionKind
    instance_name: str
    detail: str = ""
    new_instance: str | None = None
    migrated_flows: tuple = ()


class ServiceOrchestrator:
    """Drives instance lifecycle and flow placement from telemetry."""

    def __init__(
        self,
        dpi_controller,
        tsa,
        planner: DeploymentPlanner | None = None,
        spare_hosts=None,
        dpi_service_type: str = "dpi",
        flows_per_migration: int = 3,
    ) -> None:
        self.dpi_controller = dpi_controller
        self.tsa = tsa
        self.planner = planner if planner is not None else DeploymentPlanner()
        self.spare_hosts = list(spare_hosts or [])
        self.dpi_service_type = dpi_service_type
        self.flows_per_migration = flows_per_migration
        # instance name -> host name serving it
        self.instance_hosts: dict[str, str] = {}
        # Per-tick executed actions, newest last, capped like the planner's.
        self.history: deque = deque(maxlen=PLAN_HISTORY_LIMIT)
        #: Called with (host name, instance) when a new instance needs its
        #: data-plane function installed on the host.
        self.on_instance_spawned = None

    def register_instance(self, instance_name: str, host_name: str) -> None:
        """Record where an already-running instance lives."""
        self.instance_hosts[instance_name] = host_name

    # --- the control loop ---------------------------------------------------

    def tick(self, window_seconds: float) -> list:
        """One observation window: sample, plan, execute."""
        samples = self.dpi_controller.load_samples(window_seconds)
        decisions = self.planner.plan(samples)
        executed = [self._execute(decision) for decision in decisions]
        self.history.append(executed)
        return executed

    def _execute(self, decision) -> ExecutedAction:
        if decision.kind is DecisionKind.SCALE_OUT:
            return self._scale_out(decision)
        if decision.kind is DecisionKind.MIGRATE_FLOWS:
            return self._migrate(decision)
        if decision.kind is DecisionKind.SCALE_IN:
            return self._scale_in(decision)
        raise ValueError(f"unknown decision kind: {decision.kind}")

    def _scale_out(self, decision) -> ExecutedAction:
        if not self.spare_hosts:
            return ExecutedAction(
                kind=decision.kind,
                instance_name=decision.instance_name,
                detail="no spare hosts available",
            )
        host_name = self.spare_hosts.pop(0)
        name = f"dpi-auto-{len(self.instance_hosts) + 1}"
        chain_filter = self.dpi_controller.instances.chain_filter_of(
            decision.instance_name
        )
        instance = self.dpi_controller.instances.provision(
            name, chain_ids=chain_filter
        )
        self.instance_hosts[name] = host_name
        # Future chain resolutions may pick the new instance's host.
        self.tsa.register_middlebox_instance(self.dpi_service_type, host_name)
        if self.on_instance_spawned is not None:
            self.on_instance_spawned(host_name, instance)
        return ExecutedAction(
            kind=decision.kind,
            instance_name=decision.instance_name,
            new_instance=name,
            detail=f"spawned on {host_name}",
        )

    def _migrate(self, decision) -> ExecutedAction:
        source = self.dpi_controller.instances[decision.instance_name]
        target_name = decision.target_instance
        source_host = self.instance_hosts.get(decision.instance_name)
        target_host = self.instance_hosts.get(target_name)
        migrated = []
        for flow_key, _work in source.heavy_flows(top=self.flows_per_migration):
            if not self.dpi_controller.migrate_flow(
                flow_key, decision.instance_name, target_name
            ):
                continue
            migrated.append(flow_key)
            if source_host and target_host:
                self._repin(flow_key, source_host, target_host)
        return ExecutedAction(
            kind=decision.kind,
            instance_name=decision.instance_name,
            new_instance=target_name,
            migrated_flows=tuple(migrated),
        )

    def _repin(self, flow_key, source_host: str, target_host: str) -> None:
        """Re-steer one flow's chain through the target instance's host."""
        src_host = self._host_of_ip(flow_key.src_ip)
        if src_host is None:
            return
        for chain_name, realized in self.tsa.realized.items():
            if source_host not in realized.hop_hosts:
                continue
            try:
                self.tsa.pin_flow(
                    chain_name,
                    src_host,
                    flow_key,
                    {source_host: target_host},
                )
                return
            except KeyError:
                continue

    def _host_of_ip(self, ip):
        host = self.tsa.topology.host_of_ip(ip)
        return host.name if host is not None else None

    def _scale_in(self, decision) -> ExecutedAction:
        name = decision.instance_name
        host_name = self.instance_hosts.pop(name, None)
        self.dpi_controller.instances.decommission(name)
        if host_name is not None:
            self.spare_hosts.append(host_name)
        return ExecutedAction(
            kind=decision.kind,
            instance_name=name,
            detail=f"released {host_name}" if host_name else "",
        )
