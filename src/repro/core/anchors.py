"""Anchor extraction from regular expressions (paper Section 5.3).

An *anchor* is a literal substring that **must** occur in any match of the
regular expression.  The DPI service registers the anchors with its string
matcher as a pre-filter, and invokes the full regex engine only when every
anchor of an expression was seen.  Strings shorter than
``MIN_ANCHOR_LENGTH`` (4, per the paper) are not extracted.

The extractor is deliberately conservative: whenever a construct makes a
literal run uncertain (alternation, character class, optional quantifier),
the run is cut or dropped.  An expression for which no anchor of sufficient
length survives is handled by the fallback path (a full scan with the regex
engine, run in parallel to string matching — see
:class:`repro.core.regex.RegexPreFilter`).

The paper's example — ``regular\\s*expression\\s*\\d+`` yields anchors
``regular`` and ``expression`` — is reproduced by the test suite.
"""

from __future__ import annotations

MIN_ANCHOR_LENGTH = 4

# Regex metacharacters that, when escaped, stand for themselves.
_ESCAPED_LITERALS = set(b"\\^$.|?*+()[]{}/-~ #&%@!\"',:;<>=_`")
# Escape letters denoting character classes or assertions (never literal).
_CLASS_ESCAPES = set(b"dDsSwWbBAZ")


class _Parser:
    """Recursive-descent walk that accumulates required literal runs."""

    def __init__(self, source: bytes, min_length: int) -> None:
        self.source = source
        self.position = 0
        self.min_length = min_length
        self.anchors: list[bytes] = []

    # --- character feed ---------------------------------------------------

    def peek(self) -> int | None:
        """The next byte, or None at the end of input."""
        if self.position >= len(self.source):
            return None
        return self.source[self.position]

    def advance(self) -> int:
        """Consume and return the next byte."""
        byte = self.source[self.position]
        self.position += 1
        return byte

    # --- run management ---------------------------------------------------

    def flush(self, run: bytearray) -> None:
        """Finish a literal run, keeping it if long enough."""
        if len(run) >= self.min_length:
            self.anchors.append(bytes(run))
        run.clear()

    # --- grammar ------------------------------------------------------------

    def parse_alternatives(self, depth: int) -> bool:
        """Parse a ``branch (| branch)*`` group body.

        Returns True if the group consists of a *single* branch — only then
        are the anchors found inside guaranteed to be required.  For multi-
        branch groups the anchors discovered inside each branch are discarded
        (a match may come from the other branch).
        """
        saved_anchors = len(self.anchors)
        branches = 1
        self.parse_branch(depth)
        while self.peek() == ord("|"):
            self.advance()
            branches += 1
            self.parse_branch(depth)
        if branches > 1:
            del self.anchors[saved_anchors:]
            return False
        return True

    def parse_branch(self, depth: int) -> None:
        """One alternation branch: a sequence of (atom, quantifier) pairs."""
        run = bytearray()
        while True:
            byte = self.peek()
            if byte is None or byte == ord("|"):
                break
            if byte == ord(")") and depth > 0:
                break
            self.parse_atom(run, depth)
        self.flush(run)

    def parse_atom(self, run: bytearray, depth: int) -> None:
        """One literal, class, wildcard, escape or group."""
        byte = self.advance()
        if byte == ord("("):
            self.flush(run)
            self._parse_group(depth)
            return
        if byte == ord("["):
            self._skip_class()
            consumed_literal = False
        elif byte == ord("\\"):
            consumed_literal = self._parse_escape(run)
        elif byte in b".^$":
            consumed_literal = False
        else:
            run.append(byte)
            consumed_literal = True

        quantifier = self._parse_quantifier()
        if quantifier is None:
            if not consumed_literal and byte not in b"^$":
                # A wildcard/class with no quantifier still consumes one
                # unknown byte: it cuts the literal run.
                self.flush(run)
            return
        min_repeats, exact_one = quantifier
        if consumed_literal:
            if min_repeats == 0:
                # Optional atom: it may be absent, so it cannot extend a
                # required run, and the run so far stays intact only up to
                # the previous byte.
                run.pop()
                self.flush(run)
            elif exact_one:
                # {1} — effectively no quantifier.
                pass
            else:
                # b+ / b{2,5}: at least one occurrence required, but the
                # repetition makes anything *after* it non-contiguous.
                self.flush(run)
        else:
            self.flush(run)

    def _parse_group(self, depth: int) -> None:
        """A ``( ... )`` group; contents contribute anchors only when the
        group is single-branch and required at least once."""
        # Skip (?: (?= (?! (?P<name> prefixes — they do not change whether
        # the body is required, except lookarounds, which we treat as
        # contributing nothing (their content may not be consumed).
        lookaround = False
        if self.peek() == ord("?"):
            self.advance()
            nxt = self.peek()
            if nxt in (ord("="), ord("!"), ord("<")):
                lookaround = True
                self.advance()
                if self.source[self.position - 1 : self.position] == b"<" and self.peek() in (
                    ord("="),
                    ord("!"),
                ):
                    self.advance()
            elif nxt == ord(":"):
                self.advance()
            elif nxt == ord("P"):
                self.advance()
                while self.peek() is not None and self.peek() != ord(">"):
                    self.advance()
                if self.peek() == ord(">"):
                    self.advance()
        saved_anchors = len(self.anchors)
        self.parse_alternatives(depth + 1)
        if self.peek() == ord(")"):
            self.advance()
        quantifier = self._parse_quantifier()
        optional = quantifier is not None and quantifier[0] == 0
        if lookaround or optional:
            del self.anchors[saved_anchors:]

    def _parse_escape(self, run: bytearray) -> bool:
        """Handle ``\\x``; returns True if a literal byte was appended."""
        byte = self.peek()
        if byte is None:
            return False
        self.advance()
        if byte in _CLASS_ESCAPES:
            return False
        if byte == ord("x"):
            digits = self.source[self.position : self.position + 2]
            self.position += 2
            try:
                run.append(int(digits, 16))
                return True
            except ValueError:
                return False
        if byte == ord("n"):
            run.append(0x0A)
            return True
        if byte == ord("r"):
            run.append(0x0D)
            return True
        if byte == ord("t"):
            run.append(0x09)
            return True
        if byte == ord("0"):
            run.append(0x00)
            return True
        if byte in _ESCAPED_LITERALS or not bytes([byte]).isalnum():
            run.append(byte)
            return True
        if bytes([byte]).isdigit():
            # Backreference: unknown content.
            return False
        run.append(byte)
        return True

    def _skip_class(self) -> None:
        """Skip a ``[...]`` character class."""
        if self.peek() == ord("^"):
            self.advance()
        if self.peek() == ord("]"):
            self.advance()
        while True:
            byte = self.peek()
            if byte is None:
                return
            self.advance()
            if byte == ord("\\"):
                if self.peek() is not None:
                    self.advance()
            elif byte == ord("]"):
                return

    def _parse_quantifier(self) -> tuple[int, bool] | None:
        """Consume ``? * + {m,n}`` if present.

        Returns ``(minimum repeats, exactly_one)`` or None when the next
        token is not a quantifier.
        """
        byte = self.peek()
        if byte is None:
            return None
        if byte == ord("?"):
            self.advance()
            self._maybe_lazy()
            return (0, False)
        if byte == ord("*"):
            self.advance()
            self._maybe_lazy()
            return (0, False)
        if byte == ord("+"):
            self.advance()
            self._maybe_lazy()
            return (1, False)
        if byte == ord("{"):
            end = self.source.find(b"}", self.position)
            if end == -1:
                return None
            body = self.source[self.position + 1 : end]
            parts = body.split(b",")
            try:
                minimum = int(parts[0]) if parts[0] else 0
            except ValueError:
                return None
            self.position = end + 1
            self._maybe_lazy()
            exactly_one = minimum == 1 and len(parts) == 1
            return (minimum, exactly_one)
        return None

    def _maybe_lazy(self) -> None:
        if self.peek() == ord("?"):
            self.advance()


def extract_anchors(
    regex: bytes, min_length: int = MIN_ANCHOR_LENGTH
) -> list[bytes]:
    """Required literal substrings of *regex*, each at least *min_length*
    bytes long.  Deduplicated, order of first appearance preserved."""
    if isinstance(regex, str):
        regex = regex.encode()
    parser = _Parser(regex, min_length)
    parser.parse_alternatives(depth=0)
    seen = set()
    unique: list[bytes] = []
    for anchor in parser.anchors:
        if anchor not in seen:
            seen.add(anchor)
            unique.append(anchor)
    return unique
