"""Zero-copy shared-memory execution backend for the sharded scan pool.

The ``process`` backend (:mod:`repro.core.workers`) pays one pickle of the
*entire payload batch per shard task*: a K-shard batch crosses the pool
boundary K times, and BENCH_sharding.json records the honest loss — at one
CPU the pool scans at roughly half the serial fan-out's throughput because
IPC serialization eats the shard win.  High-rate packet engines never copy
per packet: they pre-allocate buffers and pass descriptors.  This module is
that idiom in Python:

* **Payload arena** — one ``multiprocessing.shared_memory`` segment into
  which a batch's payloads are written exactly once.  Workers map the same
  physical pages, so a payload's bytes exist once regardless of how many
  shards scan it.
* **Persistent workers** — long-lived processes (not a ``Pool``) that build
  every shard automaton once at startup, attach to the arena, and then pull
  compact ``(shard, offset, length, bitmap, state, limit)`` descriptors in
  bursts over per-worker queues.  Only raw match tuples travel back.
* **Double buffering** — :meth:`ZeroCopyBackend.scan_chunked_batches`
  splits the arena into two regions and overlaps the steering/preprocess
  (writing chunk N+1's payloads) with the scanning of chunk N.

Teardown follows a close/join + unlink protocol: workers get a sentinel,
are joined (terminated only if wedged), queues are closed, and the arena
segment is unlinked by the parent — a ``weakref.finalize`` guard repeats
the protocol at interpreter exit so no ``/dev/shm`` segment survives an
unclean shutdown.  Worker death mid-flight raises
:class:`ShardPoolBrokenError`, which the sharded kernel treats exactly like
a pool failure: drain (this module's ``shutdown``) and fall back to serial.
"""

from __future__ import annotations

import itertools
import os
import queue as queue_module
import weakref
from multiprocessing import shared_memory
from typing import Any

from repro.core.workers import automaton_from_spec, get_mp_context

__all__ = [
    "ARENA_NAME_PREFIX",
    "DEFAULT_ARENA_BYTES",
    "ShardPoolBrokenError",
    "ZeroCopyBackend",
]

#: Shared-memory segments are named with this prefix so leak checks (and
#: operators inspecting /dev/shm) can attribute them.
ARENA_NAME_PREFIX = "repro_zc"

#: Initial arena capacity; the arena grows geometrically when a batch
#: needs more (growth only happens with no descriptors in flight).
DEFAULT_ARENA_BYTES = 1 << 20

#: Seconds a worker gets to exit after the shutdown sentinel before it is
#: terminated, and the poll interval while awaiting results.
_JOIN_TIMEOUT = 5.0
_POLL_SECONDS = 0.05

_ARENA_COUNTER = itertools.count()


class ShardPoolBrokenError(RuntimeError):
    """A zero-copy worker died (or errored) with descriptors in flight.

    The sharded kernel catches this like any backend failure: it drains
    the backend and permanently falls back to serial execution, so a scan
    never fails because a worker did.
    """


def _arena_name() -> str:
    """A fresh, attributable segment name (pid + process-local counter)."""
    return f"{ARENA_NAME_PREFIX}_{os.getpid()}_{next(_ARENA_COUNTER)}"


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a named segment, retrying on (unlikely) name collisions."""
    while True:
        try:
            return shared_memory.SharedMemory(
                name=_arena_name(), create=True, size=nbytes
            )
        except FileExistsError:  # pragma: no cover - needs a stale segment
            continue


# --- worker-process side -----------------------------------------------------


def _scan_descriptors(automata, view, descriptors) -> "list[tuple]":
    """Run one descriptor burst against an attached arena view.

    Split out of the worker loop so the in-process unit tests can exercise
    the exact scan path pool children run.  Payloads are handed to the
    shard kernels as memoryview slices of the arena — no copy is made on
    the worker side either (the regex kernel materializes bytes itself
    when it needs C-level scanning).
    """
    out = []
    for shard, offset, length, active_bitmap, state, limit in descriptors:
        result = automata[shard].scan(
            view[offset : offset + length], active_bitmap, state, limit
        )
        out.append((result.raw_matches, result.end_state, result.bytes_scanned))
    return out


def _zerocopy_worker(specs, arena_name, task_queue, result_queue) -> None:
    """Worker main loop: attach once, scan descriptor bursts until told
    to stop.

    Messages: ``("scan", task_id, arena, descriptors)`` runs a burst and
    replies ``(task_id, "ok", raw_results)``; ``("retire", arena)`` closes
    a cached attachment (the parent grew the arena); ``None`` exits.
    Exceptions are reported per task instead of killing the worker.
    """
    automata = [automaton_from_spec(spec) for spec in specs]
    segments: "dict[str, shared_memory.SharedMemory]" = {}

    def attach(name: str):
        segment = segments.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            segments[name] = segment
        return segment.buf

    try:
        try:
            # Warm-up only: a slow-booting worker can lose the race with
            # arena growth, which unlinks the boot segment before our
            # first task arrives.  The scan path re-attaches by name.
            attach(arena_name)
        except FileNotFoundError:
            pass
        while True:
            message = task_queue.get()
            if message is None:
                break
            if message[0] == "retire":
                segment = segments.pop(message[1], None)
                if segment is not None:
                    segment.close()
                continue
            _, task_id, name, descriptors = message
            try:
                out = _scan_descriptors(automata, attach(name), descriptors)
            except Exception as error:  # pragma: no cover - defensive
                result_queue.put((task_id, "error", repr(error)))
            else:
                result_queue.put((task_id, "ok", out))
    finally:
        for segment in segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views remain
                pass


# --- parent side --------------------------------------------------------------


class _PoolState:
    """Everything the teardown protocol must release.

    Kept on a separate object so the ``weakref.finalize`` guard can hold
    it without keeping the backend itself alive, and so arena growth can
    swap the segment without re-registering the finalizer.
    """

    def __init__(self) -> None:
        self.processes: "list[Any]" = []
        self.task_queues: "list[Any]" = []
        self.result_queue: "Any" = None
        self.segment: "shared_memory.SharedMemory | None" = None
        self.closed = False


def _teardown(state: _PoolState) -> None:
    """The close/join + unlink protocol (idempotent).

    Sentinel every worker, join (terminate only the wedged), close the
    queues, then close *and unlink* the arena segment.  Every step is
    individually guarded: a half-dead pool must still surrender the
    shared-memory segment.
    """
    if state.closed:
        return
    state.closed = True
    for task_queue in state.task_queues:
        try:
            task_queue.put(None)
        except Exception:  # pragma: no cover - queue already broken
            pass
    for process in state.processes:
        try:
            process.join(timeout=_JOIN_TIMEOUT)
        except (ValueError, AssertionError):
            # start() itself failed: there is no child to reap.
            continue
    for process in state.processes:
        if process.is_alive():  # pragma: no cover - wedged worker
            process.terminate()
            process.join(timeout=_JOIN_TIMEOUT)
    all_queues = list(state.task_queues)
    if state.result_queue is not None:
        all_queues.append(state.result_queue)
    for any_queue in all_queues:
        try:
            any_queue.cancel_join_thread()
            any_queue.close()
        except Exception:  # pragma: no cover - queue already broken
            pass
    segment = state.segment
    state.segment = None
    if segment is not None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views remain
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ZeroCopyBackend:
    """Shared-memory payload arena + persistent descriptor-pulling workers.

    Satisfies the :class:`~repro.core.workers.ShardBackend` Protocol
    (``scan_shards`` / ``scan_shard_batches`` / ``shutdown``) and — as the
    only ``supports_pipelined`` backend — the
    :class:`~repro.core.workers.PipelinedShardBackend` extension:
    :meth:`scan_chunked_batches`, the double-buffered pipeline the sharded
    kernel's ``pipelined`` mode drives.  Construction is cheap; workers
    and the arena are created lazily on first use.
    """

    name = "zerocopy"
    supports_pipelined = True

    def __init__(
        self,
        specs,
        workers: "int | None" = None,
        arena_bytes: int = DEFAULT_ARENA_BYTES,
    ) -> None:
        self._specs = tuple(specs)
        if workers is not None and workers <= 0:
            raise ValueError(f"worker count must be positive: {workers}")
        if arena_bytes <= 0:
            raise ValueError(f"arena capacity must be positive: {arena_bytes}")
        self._workers = workers
        self._arena_bytes = arena_bytes
        self._state: "_PoolState | None" = None
        self._finalizer = None
        self._sequence = 0
        self._stash: "dict[int, list[tuple]]" = {}
        self._in_flight = 0
        #: Bytes written into the arena by the most recent dispatch (the
        #: occupancy the telemetry gauge reports).
        self.occupied_bytes = 0
        #: Cumulative payload bytes that did NOT cross a pickle boundary:
        #: for every dispatch, (bytes the process backend would have
        #: serialized) minus (bytes written once into the arena).
        self.copy_bytes_avoided = 0
        #: Optional telemetry counter mirroring ``copy_bytes_avoided``
        #: (installed by ``ShardedAutomaton.bind_telemetry``).
        self.copy_counter = None

    # --- sizing ------------------------------------------------------------

    @property
    def workers(self) -> int:
        """The worker-process count the pool runs (or will run) with."""
        if self._workers is not None:
            return self._workers
        return max(1, min(len(self._specs), os.cpu_count() or 1))

    @property
    def arena_name(self) -> "str | None":
        """The live arena segment's name (None before first use)."""
        state = self._state
        if state is None or state.segment is None:
            return None
        return state.segment.name

    @property
    def arena_capacity(self) -> int:
        """The live arena's byte capacity (0 before first use)."""
        state = self._state
        if state is None or state.segment is None:
            return 0
        return state.segment.size

    def descriptor_queue_depth(self) -> int:
        """Descriptors bursts currently sitting in worker queues."""
        state = self._state
        if state is None:
            return 0
        depth = 0
        for task_queue in state.task_queues:
            try:
                depth += task_queue.qsize()
            except NotImplementedError:  # pragma: no cover - macOS only
                return 0
        return depth

    # --- lifecycle ---------------------------------------------------------

    def _ensure_started(self) -> _PoolState:
        state = self._state
        if state is not None and not state.closed:
            return state
        context = get_mp_context()
        state = _PoolState()
        state.segment = _create_segment(self._arena_bytes)
        # Everything between creating the segment and registering the
        # finalizer must tear down on failure: a queue or fork that
        # raises here would otherwise strand the /dev/shm arena and any
        # workers already started (RES001).
        try:
            state.result_queue = context.Queue()
            for _ in range(self.workers):
                state.task_queues.append(context.Queue())
            for task_queue in state.task_queues:
                process = context.Process(
                    target=_zerocopy_worker,
                    args=(
                        self._specs,
                        state.segment.name,
                        task_queue,
                        state.result_queue,
                    ),
                    daemon=True,
                )
                state.processes.append(process)
                process.start()
        except BaseException:
            _teardown(state)
            raise
        self._state = state
        self._finalizer = weakref.finalize(self, _teardown, state)
        return state

    def _ensure_capacity(self, state: _PoolState, nbytes: int) -> None:
        """Grow the arena to at least *nbytes* (no descriptors in flight).

        Workers are told to retire their attachment to the old segment;
        the parent closes and unlinks it immediately — POSIX keeps the
        pages alive until the last close, so a worker that has not yet
        processed its retire message is unaffected.
        """
        segment = state.segment
        assert segment is not None
        if nbytes <= segment.size:
            return
        if self._in_flight:  # pragma: no cover - call sites prevent this
            raise RuntimeError("cannot grow the arena with tasks in flight")
        new_size = max(nbytes, segment.size * 2)
        replacement = _create_segment(new_size)
        # Until the swap lands the replacement has no owner: if telling
        # the workers (or retiring the old segment) raises, release it
        # rather than stranding a second arena in /dev/shm (RES001).
        try:
            for task_queue in state.task_queues:
                task_queue.put(("retire", segment.name))
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        except BaseException:
            replacement.close()
            try:
                replacement.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
            raise
        state.segment = replacement

    def shutdown(self) -> None:
        """Run the close/join + unlink protocol (idempotent)."""
        finalizer = self._finalizer
        self._finalizer = None
        self._state = None
        self._stash.clear()
        self._in_flight = 0
        self.occupied_bytes = 0
        if finalizer is not None:
            finalizer()

    # --- dispatch ----------------------------------------------------------

    def _write_payloads(self, state, payload_lists, base: int) -> dict:
        """Write every distinct payload tuple once, from arena offset
        *base*; returns ``id(payloads) -> [(offset, length), ...]``.

        Distinctness is by object identity: the sharded kernel hands the
        same batch tuple to every shard task, which is exactly the
        sharing this backend exists to exploit.
        """
        segment = state.segment
        buffer = segment.buf
        cursor = base
        descriptors_by_id: "dict[int, list[tuple[int, int]]]" = {}
        for payloads in payload_lists:
            if id(payloads) in descriptors_by_id:
                continue
            spans = []
            for payload in payloads:
                length = len(payload)
                buffer[cursor : cursor + length] = payload
                spans.append((cursor, length))
                cursor += length
            descriptors_by_id[id(payloads)] = spans
        self.occupied_bytes = cursor - base
        return descriptors_by_id

    def _dispatch(self, state, assignments) -> "list[int]":
        """Send one scan message per (worker, descriptors) pair; returns
        the task ids in submission order."""
        arena = state.segment.name
        ids = []
        for worker_index, descriptors in assignments:
            task_id = self._sequence
            self._sequence += 1
            state.task_queues[worker_index % len(state.task_queues)].put(
                ("scan", task_id, arena, descriptors)
            )
            ids.append(task_id)
        self._in_flight += len(ids)
        return ids

    def _await(self, state, ids) -> "list[list[tuple]]":
        """Collect the results for *ids*, in id order.

        Results from other in-flight tasks (the pipelined path overlaps
        two chunks) are stashed.  A dead worker, a worker-reported scan
        error, or a corrupted result pipe raises
        :class:`ShardPoolBrokenError`.
        """
        stash = self._stash
        wanted = set(ids)
        while wanted - stash.keys():
            try:
                task_id, status, payload = state.result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_module.Empty:
                for process in state.processes:
                    if not process.is_alive():
                        raise ShardPoolBrokenError(
                            f"zerocopy worker pid={process.pid} died with "
                            f"descriptors in flight"
                        ) from None
                continue
            except ShardPoolBrokenError:  # pragma: no cover - re-raise
                raise
            except Exception as error:
                raise ShardPoolBrokenError(
                    f"zerocopy result channel broke: {error!r}"
                ) from error
            if status != "ok":
                raise ShardPoolBrokenError(
                    f"zerocopy worker task {task_id} failed: {payload}"
                )
            stash[task_id] = payload
        out = [stash.pop(task_id) for task_id in ids]
        self._in_flight -= len(ids)
        return out

    def _account_avoided(self, written: int, shipped: int) -> None:
        """Record payload bytes that skipped the pickle boundary."""
        avoided = shipped - written
        if avoided <= 0:
            return
        self.copy_bytes_avoided += avoided
        counter = self.copy_counter
        if counter is not None:
            counter.inc(avoided)

    # --- the backend contract ----------------------------------------------

    def scan_shards(self, tasks) -> "list[tuple]":
        """One raw result tuple per ``(shard, data, bitmap, state, limit)``
        task, in task order; each distinct payload is written once."""
        tasks = list(tasks)
        if not tasks:
            return []
        state = self._ensure_started()
        # The sharded kernel hands the *same* payload object to every
        # shard task; write each distinct payload once and fan the
        # (offset, length) extent out across the descriptors.
        distinct: "dict[int, tuple]" = {}
        for task in tasks:
            distinct.setdefault(id(task[1]), (task[1],))
        written = sum(len(single[0]) for single in distinct.values())
        shipped = sum(len(task[1]) for task in tasks)
        self._ensure_capacity(state, written)
        descriptors_by_id = self._write_payloads(
            state, list(distinct.values()), 0
        )
        extent_by_data = {
            data_id: descriptors_by_id[id(single)][0]
            for data_id, single in distinct.items()
        }
        assignments = []
        for index, (shard, data, active_bitmap, start, limit) in enumerate(tasks):
            offset, length = extent_by_data[id(data)]
            assignments.append(
                (index, [(shard, offset, length, active_bitmap, start, limit)])
            )
        results = self._await(state, self._dispatch(state, assignments))
        self._account_avoided(written, shipped)
        return [out[0] for out in results]

    def scan_shard_batches(self, tasks) -> "list[list[tuple]]":
        """One list of raw result tuples per batch task, in task order.

        The batch's payloads are written into the arena exactly once; the
        per-shard tasks ship only descriptor bursts, so a K-shard batch
        crosses the worker boundary as K compact messages instead of K
        pickled copies of every payload.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        state = self._ensure_started()
        batches = [task[1] for task in tasks]
        distinct: "dict[int, Any]" = {}
        for batch in batches:
            distinct.setdefault(id(batch), batch)
        written_bytes = sum(
            len(payload)
            for batch in distinct.values()
            for payload in batch
        )
        shipped_bytes = sum(
            len(payload) for batch in batches for payload in batch
        )
        self._ensure_capacity(state, written_bytes)
        descriptors_by_id = self._write_payloads(state, batches, 0)
        assignments = []
        for index, (shard, batch, active_bitmap, start, limit) in enumerate(tasks):
            burst = [
                (shard, offset, length, active_bitmap, start, limit)
                for offset, length in descriptors_by_id[id(batch)]
            ]
            assignments.append((index, burst))
        results = self._await(state, self._dispatch(state, assignments))
        self._account_avoided(self.occupied_bytes, shipped_bytes)
        return results

    def scan_chunked_batches(self, chunks) -> "list[list[list[tuple]]]":
        """The double-buffered pipeline: scan chunk N while writing N+1.

        *chunks* is a sequence of ``scan_shard_batches`` task lists, each
        covering a contiguous slice of one payload batch.  The arena is
        split into two regions; chunk N's descriptors are dispatched out
        of region ``N % 2`` and, while the workers scan them, the parent
        writes chunk N+1's payloads into the other region.  Returns one
        ``scan_shard_batches``-shaped result list per chunk, in order.
        """
        chunks = [list(chunk) for chunk in chunks]
        if not chunks:
            return []
        state = self._ensure_started()
        chunk_bytes = []
        for chunk in chunks:
            distinct: "dict[int, Any]" = {}
            for task in chunk:
                distinct.setdefault(id(task[1]), task[1])
            chunk_bytes.append(
                sum(
                    len(payload)
                    for batch in distinct.values()
                    for payload in batch
                )
            )
        # Capacity is settled up front, while nothing is in flight: both
        # regions must hold the largest chunk.
        self._ensure_capacity(state, 2 * max(chunk_bytes))
        region_size = state.segment.size // 2
        shipped_total = 0
        written_total = 0
        pending: "list[int] | None" = None
        results: "list[list[list[tuple]]]" = []
        for index, chunk in enumerate(chunks):
            base = (index % 2) * region_size
            descriptors_by_id = self._write_payloads(
                state, [task[1] for task in chunk], base
            )
            written_total += self.occupied_bytes
            assignments = []
            for task_index, (shard, batch, active_bitmap, start, limit) in (
                enumerate(chunk)
            ):
                burst = [
                    (shard, offset, length, active_bitmap, start, limit)
                    for offset, length in descriptors_by_id[id(batch)]
                ]
                assignments.append((task_index, burst))
                shipped_total += sum(length for _, _, length, _, _, _ in burst)
            ids = self._dispatch(state, assignments)
            if pending is not None:
                results.append(self._await(state, pending))
            pending = ids
        if pending is not None:
            results.append(self._await(state, pending))
        self._account_avoided(written_total, shipped_total)
        return results
