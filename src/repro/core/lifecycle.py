"""The unified instance-lifecycle API (the controller's ``instances`` facade).

Historically the controller grew five separate lifecycle entry points
(``build_instance_config``, ``create_instance``, ``deploy_grouped``,
``remove_instance``, ``refresh_instances``).  They are now consolidated
behind one object: ``controller.instances`` is an :class:`InstanceManager`
— a read-only mapping of ``name -> DPIServiceInstance`` that also owns
every lifecycle verb:

* :meth:`InstanceManager.provision` — build a validated configuration and
  spawn an instance (optionally specialized to a chain group or flagged as
  a *dedicated* MCA² engine);
* :meth:`InstanceManager.decommission` — tear an instance down and drop
  its registry metrics;
* :meth:`InstanceManager.plan_groups` — group similar policy chains and
  provision one specialized instance per group (Section 4.3);
* :meth:`InstanceManager.refresh` — push updated configurations after
  pattern or chain changes;
* :meth:`InstanceManager.build_config` — the configuration alone, without
  spawning anything.

All verbs are keyword-only past the instance name, so call sites read as
declarations.  The old controller methods survive as thin shims that emit
:class:`DeprecationWarning`; in-repo use of the shims is flagged by lint
rule API002.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import TYPE_CHECKING, Sequence

from repro.analysis.validators import raise_on_errors, validate_instance_config
from repro.core.instance import DPIServiceInstance, InstanceConfig

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.controller import DPIController


class InstanceManager(Mapping[str, DPIServiceInstance]):
    """Owns the controller's DPI service instances and their lifecycle.

    The mapping interface is read-only (``manager["dpi-1"]``, ``len``,
    ``in``, iteration in insertion order); every mutation goes through a
    lifecycle verb so the controller can keep chain filters, telemetry
    labels and dedicated-engine bookkeeping consistent.
    """

    def __init__(self, controller: "DPIController") -> None:
        self._controller = controller
        self._by_name: dict[str, DPIServiceInstance] = {}
        self._chain_filter: dict[str, tuple | None] = {}
        self._dedicated: dict[str, bool] = {}

    # --- mapping interface ------------------------------------------------

    def __getitem__(self, name: str) -> DPIServiceInstance:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no instance named {name}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        # Kept dict-comparable so callers that treated the old attribute as
        # a plain dict (`controller.instances == {}`) keep working.
        if isinstance(other, InstanceManager):
            return self._by_name == other._by_name
        if isinstance(other, Mapping):
            return self._by_name == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"<InstanceManager {sorted(self._by_name)}>"

    # --- configuration ----------------------------------------------------

    def build_config(
        self,
        *,
        chain_ids: "Sequence[int] | None" = None,
        layout: str = "sparse",
        kernel: str = "flat",
        scan_cache_size: int = 0,
        shards: int = 0,
        shard_backend: str = "serial",
        shard_kernel: str = "flat",
        shard_workers: int = 0,
        shard_pipelined: bool = False,
    ) -> InstanceConfig:
        """The configuration for an instance serving *chain_ids* (None =
        every chain).  Only middleboxes on the selected chains are included
        (Section 4.3: instances specialized per chain group)."""
        controller = self._controller
        chain_map = controller.chain_map(chain_ids)
        needed: set[int] = set()
        for middlebox_ids in chain_map.values():
            needed.update(middlebox_ids)
        if chain_ids is None and not chain_map:
            # No chains known yet: serve every registered middlebox through
            # an implicit chain per middlebox (useful for direct API use).
            needed = set(controller.middlebox_ids)
        pattern_sets = {
            middlebox_id: list(controller.pattern_set_of(middlebox_id))
            for middlebox_id in sorted(needed)
        }
        profiles = {
            middlebox_id: controller.profile_of(middlebox_id)
            for middlebox_id in sorted(needed)
        }
        return InstanceConfig(
            pattern_sets=pattern_sets,
            profiles=profiles,
            chain_map=chain_map,
            layout=layout,
            kernel=kernel,
            scan_cache_size=scan_cache_size,
            shards=shards,
            shard_backend=shard_backend,
            shard_kernel=shard_kernel,
            shard_workers=shard_workers,
            shard_pipelined=shard_pipelined,
        )

    # --- lifecycle verbs ----------------------------------------------------

    def provision(
        self,
        name: str,
        *,
        chain_ids: "Sequence[int] | None" = None,
        layout: str = "sparse",
        kernel: str = "flat",
        scan_cache_size: int = 0,
        shards: int = 0,
        shard_backend: str = "serial",
        shard_kernel: str = "flat",
        shard_workers: int = 0,
        shard_pipelined: bool = False,
        validate: bool = True,
        dedicated: bool = False,
    ) -> DPIServiceInstance:
        """Spawn a DPI service instance from the current configuration.

        With ``validate=True`` (the default) the built configuration is
        statically checked
        (:func:`repro.analysis.validators.validate_instance_config`) and
        error-grade issues raise
        :class:`~repro.analysis.validators.ValidationError` before the
        instance exists.  ``dedicated=True`` marks the instance as an MCA²
        dedicated engine: the stress monitor skips it during observation
        and failover never selects it for decommissioning.
        """
        if name in self._by_name:
            raise ValueError(f"duplicate instance name: {name}")
        config = self.build_config(
            chain_ids=chain_ids,
            layout=layout,
            kernel=kernel,
            scan_cache_size=scan_cache_size,
            shards=shards,
            shard_backend=shard_backend,
            shard_kernel=shard_kernel,
            shard_workers=shard_workers,
            shard_pipelined=shard_pipelined,
        )
        if validate:
            raise_on_errors(validate_instance_config(config))
        instance = DPIServiceInstance(
            config, name=name, telemetry=self._controller.telemetry
        )
        self._by_name[name] = instance
        self._chain_filter[name] = (
            tuple(chain_ids) if chain_ids is not None else None
        )
        self._dedicated[name] = dedicated
        return instance

    def decommission(
        self, name: str, *, missing_ok: bool = False
    ) -> "DPIServiceInstance | None":
        """Tear down an instance and drop its registry metrics.

        The instance's scan engine is shut down so external resources
        (shared-memory arenas, worker pools) are released immediately
        rather than at garbage collection — churn must not leak.

        Raises ``KeyError(f"no instance named {name}")`` for an unknown
        name unless ``missing_ok=True`` (then returns None) — the same
        contract :meth:`DPIController.migrate_flow` follows for missing
        endpoints.
        """
        instance = self._by_name.pop(name, None)
        if instance is None:
            if missing_ok:
                return None
            raise KeyError(f"no instance named {name}")
        self._chain_filter.pop(name, None)
        self._dedicated.pop(name, None)
        # Shut the engine down before touching telemetry: the instance is
        # already popped from the registry, so if the metric drop raised
        # first there would be no owner left to release the engine's
        # arenas and worker pools.
        automaton = getattr(instance, "automaton", None)
        if automaton is not None and hasattr(automaton, "shutdown"):
            automaton.shutdown()
        self._controller.telemetry.registry.drop(instance=name)
        return instance

    def plan_groups(
        self,
        *,
        max_groups: int,
        layout: str = "sparse",
        kernel: str = "flat",
        name_prefix: str = "dpi-group",
    ) -> dict[str, list[int]]:
        """Provision one instance per group of similar policy chains.

        Chains are grouped by the similarity of their middlebox sets (the
        paper's "group together similar policy chains" deployment choice),
        and each group gets a specialized instance carrying only its own
        pattern sets.  Returns ``{instance name: [chain ids]}``.
        """
        from repro.core.deployment import group_chains_by_similarity

        chain_map = self._controller.chain_map()
        populated = {
            chain_id: middleboxes
            for chain_id, middleboxes in chain_map.items()
            if middleboxes
        }
        if not populated:
            raise ValueError("no policy chains with registered middleboxes")
        groups = group_chains_by_similarity(populated, max_groups=max_groups)
        deployed = {}
        for index, chain_ids in enumerate(groups, start=1):
            name = f"{name_prefix}-{index}"
            self.provision(
                name, chain_ids=chain_ids, layout=layout, kernel=kernel
            )
            deployed[name] = list(chain_ids)
        return deployed

    def refresh(self) -> None:
        """Push updated configurations after pattern or chain changes."""
        for name, instance in self._by_name.items():
            instance.reconfigure(
                self.build_config(
                    chain_ids=self._chain_filter.get(name),
                    layout=instance.config.layout,
                    kernel=instance.config.kernel,
                    scan_cache_size=instance.config.scan_cache_size,
                    shards=instance.config.shards,
                    shard_backend=instance.config.shard_backend,
                    shard_kernel=instance.config.shard_kernel,
                    shard_workers=instance.config.shard_workers,
                    shard_pipelined=instance.config.shard_pipelined,
                )
            )

    # --- metadata -----------------------------------------------------------

    def chain_filter_of(self, name: str) -> "tuple | None":
        """The chain-id filter an instance was provisioned with (None =
        serves every chain)."""
        if name not in self._by_name:
            raise KeyError(f"no instance named {name}")
        return self._chain_filter.get(name)

    def is_dedicated(self, name: str) -> bool:
        """True for MCA² dedicated engines (they must survive failover)."""
        return self._dedicated.get(name, False)

    def dedicated_names(self) -> list[str]:
        """Names of every dedicated instance, in provision order."""
        return [name for name, flag in self._dedicated.items() if flag]
