"""Pattern model and the controller's deduplicated global pattern registry.

A middlebox owns a :class:`PatternSet` of :class:`Pattern` objects — exact
byte strings or regular expressions.  The DPI controller merges the sets of
all registered middleboxes into a :class:`GlobalPatternRegistry`, which
assigns internal identifiers and reference-counts which middlebox rules refer
to which canonical pattern (paper Section 4.1): a pattern registered by two
middleboxes is stored once; it disappears only when its last referrer removes
it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class PatternKind(enum.Enum):
    """Exact byte-string patterns vs regular expressions."""

    LITERAL = "literal"
    REGEX = "regex"


@dataclass(frozen=True)
class Pattern:
    """One pattern within a middlebox's set.

    ``pattern_id`` is the identifier *within the owning middlebox* — it is
    what the DPI service echoes back in match reports so the middlebox can
    find the rule that referenced the pattern.  ``data`` holds the literal
    bytes for ``LITERAL`` patterns and the regex source (as ``bytes``) for
    ``REGEX`` patterns.
    """

    pattern_id: int
    data: bytes
    kind: PatternKind = PatternKind.LITERAL

    def __post_init__(self) -> None:
        if not isinstance(self.data, bytes):
            raise TypeError(f"pattern data must be bytes, got {type(self.data).__name__}")
        if not self.data:
            raise ValueError("empty pattern")
        if self.pattern_id < 0:
            raise ValueError(f"negative pattern id: {self.pattern_id}")

    @property
    def canonical_key(self) -> "tuple[PatternKind, bytes]":
        """Identity of the pattern *content*, ignoring the local id."""
        return (self.kind, self.data)

    def __len__(self) -> int:
        return len(self.data)


class PatternSet:
    """A named, ordered collection of patterns with unique local ids."""

    def __init__(self, name: str, patterns: "list[Pattern] | None" = None) -> None:
        self.name = name
        self._patterns: dict[int, Pattern] = {}
        for pattern in patterns or []:
            self.add(pattern)

    @classmethod
    def from_literals(cls, name: str, literals: "list[bytes]") -> "PatternSet":
        """Build a set of LITERAL patterns with sequential ids."""
        patterns = [
            Pattern(pattern_id=index, data=data)
            for index, data in enumerate(literals)
        ]
        return cls(name, patterns)

    def add(self, pattern: Pattern) -> None:
        """Add one entry; raises on duplicates."""
        if pattern.pattern_id in self._patterns:
            raise ValueError(
                f"{self.name}: duplicate pattern id {pattern.pattern_id}"
            )
        self._patterns[pattern.pattern_id] = pattern

    def remove(self, pattern_id: int) -> Pattern:
        """Remove one entry; raises KeyError if absent."""
        try:
            return self._patterns.pop(pattern_id)
        except KeyError:
            raise KeyError(f"{self.name}: no pattern with id {pattern_id}") from None

    def get(self, pattern_id: int) -> Pattern:
        """Look up one entry by id."""
        return self._patterns[pattern_id]

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> "Iterator[Pattern]":
        return iter(sorted(self._patterns.values(), key=lambda p: p.pattern_id))

    def __contains__(self, pattern_id: int) -> bool:
        return pattern_id in self._patterns

    @property
    def literals(self) -> "list[Pattern]":
        """The LITERAL patterns, ordered by id."""
        return [p for p in self if p.kind is PatternKind.LITERAL]

    @property
    def regexes(self) -> "list[Pattern]":
        """The REGEX patterns, ordered by id."""
        return [p for p in self if p.kind is PatternKind.REGEX]

    def total_bytes(self) -> int:
        """Size of the raw pattern data — the quantity the paper cites when
        arguing that shipping pattern sets to the controller is cheap."""
        return sum(len(p) for p in self)


@dataclass
class _RegistryEntry:
    """A canonical pattern plus every (middlebox, local id) that refers to it."""

    internal_id: int
    kind: PatternKind
    data: bytes
    #: ``{(middlebox_id, pattern_id)}`` pairs referring to this entry.
    referrers: set[tuple[int, int]] = field(default_factory=set)


class GlobalPatternRegistry:
    """The controller's deduplicated pattern store (Section 4.1).

    Internal ids are dense and stable for the lifetime of the entry; removing
    the last referrer frees the entry (the id is not reused, which keeps
    already-distributed instance configurations unambiguous).
    """

    def __init__(self) -> None:
        self._by_key: dict[tuple[PatternKind, bytes], _RegistryEntry] = {}
        self._by_id: dict[int, _RegistryEntry] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def add(self, middlebox_id: int, pattern: Pattern) -> int:
        """Register a referrer; returns the canonical internal id."""
        key = pattern.canonical_key
        entry = self._by_key.get(key)
        if entry is None:
            entry = _RegistryEntry(
                internal_id=self._next_id, kind=pattern.kind, data=pattern.data
            )
            self._next_id += 1
            self._by_key[key] = entry
            self._by_id[entry.internal_id] = entry
        entry.referrers.add((middlebox_id, pattern.pattern_id))
        return entry.internal_id

    def remove(self, middlebox_id: int, pattern: Pattern) -> bool:
        """Drop one referrer; returns True if the entry was freed entirely."""
        key = pattern.canonical_key
        entry = self._by_key.get(key)
        if entry is None:
            raise KeyError(f"pattern not registered: {pattern.data!r}")
        try:
            entry.referrers.remove((middlebox_id, pattern.pattern_id))
        except KeyError:
            raise KeyError(
                f"middlebox {middlebox_id} does not refer to pattern "
                f"{pattern.pattern_id}"
            ) from None
        if not entry.referrers:
            del self._by_key[key]
            del self._by_id[entry.internal_id]
            return True
        return False

    def remove_middlebox(self, middlebox_id: int) -> int:
        """Drop every referrer of *middlebox_id*; returns entries freed."""
        freed = 0
        for key in list(self._by_key):
            entry = self._by_key[key]
            entry.referrers = {  # rebuilds a set: order-independent
                ref for ref in entry.referrers if ref[0] != middlebox_id  # repro: noqa[DET002]
            }
            if not entry.referrers:
                del self._by_key[key]
                del self._by_id[entry.internal_id]
                freed += 1
        return freed

    def referrers_of(self, internal_id: int) -> "list[tuple[int, int]]":
        """Sorted (middlebox id, pattern id) pairs for one canonical pattern."""
        return sorted(self._by_id[internal_id].referrers)

    def entries(self) -> "list[_RegistryEntry]":
        """Every registry entry, ordered by internal id."""
        return [self._by_id[i] for i in sorted(self._by_id)]

    def pattern_sets_by_middlebox(self) -> "dict[int, PatternSet]":
        """Reconstruct each middlebox's current pattern set."""
        sets: dict[int, PatternSet] = {}
        for entry in self._by_id.values():
            # Sorted: referrers is a set, and the reconstruction order
            # decides both the returned dict's key order and which
            # duplicate-id collision would surface first.
            for middlebox_id, pattern_id in sorted(entry.referrers):
                target = sets.setdefault(
                    middlebox_id, PatternSet(name=f"middlebox-{middlebox_id}")
                )
                target.add(
                    Pattern(pattern_id=pattern_id, data=entry.data, kind=entry.kind)
                )
        return sets
