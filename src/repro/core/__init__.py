"""The paper's contribution: DPI as a service.

Public API:

* :class:`~repro.core.patterns.Pattern`, :class:`~repro.core.patterns.PatternSet`
  — pattern model shared by middleboxes, controller and instances.
* :class:`~repro.core.aho_corasick.AhoCorasick` — the classic multi-string
  matcher (Section 3).
* :class:`~repro.core.combined.CombinedAutomaton` — the virtual-DPI automaton
  that merges the pattern sets of many middleboxes (Section 5.1).
* :class:`~repro.core.scanner.VirtualScanner` — per-packet inspection with
  policy chains, stateful flows and stopping conditions (Section 5.2).
* :class:`~repro.core.regex.RegexPreFilter` — anchor-based regular-expression
  pre-filtering (Section 5.3).
* :class:`~repro.core.reports.MatchReport` — the wire encoding of scan
  results (Section 6.5).
* :class:`~repro.core.instance.DPIServiceInstance` and
  :class:`~repro.core.controller.DPIController` — the service data plane and
  its logically centralized control (Section 4).
* :class:`~repro.core.mca2.StressMonitor` — MCA^2-style robustness
  (Section 4.3.1).
"""

from repro.core.patterns import Pattern, PatternKind, PatternSet
from repro.core.aho_corasick import AhoCorasick
from repro.core.wu_manber import WuManber
from repro.core.nfa import RegexNFA, RegexSyntaxError
from repro.core.regex_dfa import RegexDFA, StateExplosionError
from repro.core.preprocess import PayloadPreprocessor, ScanView
from repro.core.combined import CombinedAutomaton
from repro.core.flow_table import FlowScanState, FlowTable
from repro.core.scanner import MiddleboxProfile, ScanResult, VirtualScanner
from repro.core.anchors import extract_anchors
from repro.core.regex import RegexPreFilter
from repro.core.reports import MatchRecord, MatchReport, RangeRecord
from repro.core.messages import (
    AddPatternsMessage,
    RegisterMiddleboxMessage,
    RemovePatternsMessage,
    UnregisterMiddleboxMessage,
)
from repro.core.controller import DPIController
from repro.core.instance import DPIServiceInstance
from repro.core.deployment import DeploymentPlanner
from repro.core.mca2 import StressMonitor
from repro.core.stream import StreamInspector
from repro.core.orchestrator import ServiceOrchestrator

__all__ = [
    "Pattern",
    "PatternKind",
    "PatternSet",
    "AhoCorasick",
    "WuManber",
    "RegexNFA",
    "RegexSyntaxError",
    "RegexDFA",
    "StateExplosionError",
    "PayloadPreprocessor",
    "ScanView",
    "CombinedAutomaton",
    "FlowScanState",
    "FlowTable",
    "MiddleboxProfile",
    "ScanResult",
    "VirtualScanner",
    "extract_anchors",
    "RegexPreFilter",
    "MatchRecord",
    "RangeRecord",
    "MatchReport",
    "RegisterMiddleboxMessage",
    "UnregisterMiddleboxMessage",
    "AddPatternsMessage",
    "RemovePatternsMessage",
    "DPIController",
    "DPIServiceInstance",
    "DeploymentPlanner",
    "StressMonitor",
    "StreamInspector",
    "ServiceOrchestrator",
]
