"""Session reconstruction as a service (the paper's Section 7 outlook).

:class:`StreamInspector` bundles the three per-packet steps the paper wants
performed once, at the service, instead of once per middlebox:

1. **reassembly** — TCP segments become in-order stream bytes
   (:mod:`repro.net.reassembly`);
2. **decompression** — gzip regions in the released bytes are inflated once
   (:mod:`repro.core.preprocess`);
3. **inspection** — every view is scanned by the DPI instance for all the
   middleboxes on the packet's policy chain.

Stream bytes feed the instance under the packet's flow key, so stateful
middleboxes see matches that straddle segment boundaries even when segments
arrive out of order; decompressed views get a derived flow key per region
so their (independent) scan state never mixes with the raw stream's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instance import DPIServiceInstance, InspectionOutput
from repro.core.preprocess import PayloadPreprocessor
from repro.net.packet import Packet
from repro.net.reassembly import TCPReassembler


@dataclass
class StreamInspectionResult:
    """Everything one packet triggered."""

    flow_key: object
    released_bytes: int
    outputs: list = field(default_factory=list)  # (view kind, InspectionOutput)

    @property
    def has_matches(self) -> bool:
        """True when at least one match was found."""
        return any(output.has_matches for _kind, output in self.outputs)

    def all_matches(self) -> dict:
        """Merged ``{middlebox id: [(pattern id, position)]}`` across views.

        Positions from decompressed views refer to the *decompressed*
        stream of their region; the view kind disambiguates.
        """
        merged: dict = {}
        for _kind, output in self.outputs:
            for middlebox_id, matches in output.matches.items():
                merged.setdefault(middlebox_id, []).extend(matches)
        return merged


class StreamInspector:
    """Reassemble, decompress once, scan once."""

    def __init__(
        self,
        instance: DPIServiceInstance,
        decompress: bool = True,
    ) -> None:
        self.instance = instance
        self.reassembler = TCPReassembler()
        self.preprocessor = PayloadPreprocessor() if decompress else None

    def process_packet(
        self, packet: Packet, chain_id: int, now: float = 0.0
    ) -> StreamInspectionResult:
        """Feed one packet; inspect whatever stream bytes it releases."""
        flow_key, released = self.reassembler.add_packet(packet)
        result = StreamInspectionResult(
            flow_key=flow_key, released_bytes=len(released)
        )
        if not released:
            return result
        views = (
            self.preprocessor.views(released)
            if self.preprocessor is not None
            else [None]
        )
        if self.preprocessor is None:
            result.outputs.append(
                (
                    "raw",
                    self.instance.inspect(
                        released, chain_id=chain_id, flow_key=flow_key, now=now
                    ),
                )
            )
            return result
        for view in views:
            if view.compressed:
                # Each compressed region is its own logical stream.
                kind = f"gzip@{view.source_offset}"
                scan_key = (flow_key, "gzip", view.source_offset)
            else:
                kind = "raw"
                scan_key = flow_key
            output = self.instance.inspect(
                view.data, chain_id=chain_id, flow_key=scan_key, now=now
            )
            result.outputs.append((kind, output))
        return result

    def close_flow(self, flow_key) -> None:
        """Drop reassembly and scan state of a finished flow."""
        self.reassembler.close_flow(flow_key)
        self.instance.drop_flow(flow_key)
