"""Per-packet inspection against the combined automaton (paper Section 5.2).

The :class:`VirtualScanner` ties together:

* the policy-chain tag -> active-middlebox mapping received from the DPI
  controller at initialization;
* per-middlebox properties (stateful vs stateless, stopping condition,
  read-only) — :class:`MiddleboxProfile`;
* the active-flow table for stateful scans;
* the post-scan pruning rules: stopping conditions for everyone, plus the
  stateless rule that a match whose pattern began in a previous packet (its
  length exceeds ``cnt``) must be discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter

from repro.core.combined import CombinedAutomaton
from repro.core.flow_table import FlowTable

#: Canonical per-middlebox match order: (position, pattern id).  Monolithic
#: kernels already emit this order (one accepting state per position, match
#: entries pattern-sorted within it), but a sharded automaton can split
#: same-position accepts across shards, whose raw merge cannot interleave
#: them — so the scanner canonicalizes after resolution.
_MATCH_ORDER = itemgetter(1, 0)


@dataclass(frozen=True)
class MiddleboxProfile:
    """The properties a middlebox declares at registration (Section 4.1).

    ``stopping_condition`` bounds how deep the scan must look: into the
    *flow* for stateful middleboxes, into each *packet* for stateless ones.
    ``None`` means unbounded.  ``read_only`` middleboxes need only the match
    results, not the packet itself (e.g. an IDS, as opposed to an IPS).
    """

    middlebox_id: int
    name: str = ""
    stateful: bool = False
    stopping_condition: int | None = None
    read_only: bool = False

    def __post_init__(self) -> None:
        if self.middlebox_id < 0:
            raise ValueError(f"negative middlebox id: {self.middlebox_id}")
        if self.stopping_condition is not None and self.stopping_condition <= 0:
            raise ValueError(
                f"stopping condition must be positive: {self.stopping_condition}"
            )


@dataclass
class ScanResult:
    """Per-middlebox match lists for one packet.

    ``matches`` maps middlebox id to ``(pattern id, position)`` pairs, where
    position is the end offset of the match — within the packet for stateless
    middleboxes (``cnt``) and within the flow for stateful ones
    (``cnt + offset``), exactly as the paper specifies for what is sent along
    with the pattern identifier.
    """

    matches: dict = field(default_factory=dict)
    bytes_scanned: int = 0
    flow_offset_before: int = 0
    started_from_root: bool = True

    @property
    def has_matches(self) -> bool:
        """True when any middlebox got a match."""
        return any(self.matches.values())

    def matches_for(self, middlebox_id: int) -> list:
        """The ``(pattern id, position)`` pairs for one middlebox."""
        return self.matches.get(middlebox_id, [])

    def total_matches(self) -> int:
        """Total number of matches across all middleboxes."""
        return sum(len(entries) for entries in self.matches.values())


class VirtualScanner:
    """Scans packets once for all middleboxes on their policy chain."""

    def __init__(
        self,
        automaton: CombinedAutomaton,
        profiles: dict,
        chain_map: dict,
    ) -> None:
        """``profiles`` maps middlebox id -> :class:`MiddleboxProfile`;
        ``chain_map`` maps policy-chain id -> tuple of middlebox ids."""
        self.automaton = automaton
        self.profiles = dict(profiles)
        self.chain_map = {
            chain_id: tuple(middleboxes)
            for chain_id, middleboxes in chain_map.items()
        }
        for chain_id, middleboxes in self.chain_map.items():
            for middlebox_id in middleboxes:
                if middlebox_id not in self.profiles:
                    raise KeyError(
                        f"chain {chain_id} references middlebox {middlebox_id} "
                        "with no profile"
                    )
        self.flow_table = FlowTable(initial_state=automaton.root)
        self._chain_bitmaps: dict = {}
        self._chain_profiles: dict = {}
        self._chain_any_stateful: dict = {}
        # Telemetry (optional): per-chain (packets, bytes) counter pairs.
        self._registry = None
        self._instance_label = ""
        self._chain_metrics: dict = {}
        for chain_id, middleboxes in self.chain_map.items():
            self._install_chain(chain_id, middleboxes)

    def _install_chain(self, chain_id: int, middlebox_ids) -> None:
        """Precompute everything ``scan_packet`` needs per chain."""
        bitmap = 0
        for middlebox_id in middlebox_ids:
            bitmap |= 1 << middlebox_id
        profiles = tuple(self.profiles[m] for m in middlebox_ids)
        self._chain_bitmaps[chain_id] = bitmap
        self._chain_profiles[chain_id] = profiles
        self._chain_any_stateful[chain_id] = any(p.stateful for p in profiles)
        if self._registry is not None:
            self._bind_chain_metrics(chain_id)

    # --- telemetry --------------------------------------------------------

    def bind_metrics(self, registry, instance_name: str) -> None:
        """Publish per-chain scan counters into *registry*, labeled with
        the owning instance's name."""
        self._registry = registry
        self._instance_label = instance_name
        for chain_id in self.chain_map:
            self._bind_chain_metrics(chain_id)

    def _bind_chain_metrics(self, chain_id: int) -> None:
        registry = self._registry
        labels = {"instance": self._instance_label, "chain": chain_id}
        self._chain_metrics[chain_id] = (
            registry.counter("dpi_chain_packets_total", **labels),
            registry.counter("dpi_chain_bytes_total", **labels),
        )

    # --- configuration updates --------------------------------------------

    def set_chain(self, chain_id: int, middlebox_ids) -> None:
        """Install or replace a policy chain's middlebox list."""
        for middlebox_id in middlebox_ids:
            if middlebox_id not in self.profiles:
                raise KeyError(f"no profile for middlebox {middlebox_id}")
        self.chain_map[chain_id] = tuple(middlebox_ids)
        self._install_chain(chain_id, self.chain_map[chain_id])

    def remove_chain(self, chain_id: int) -> None:
        """Forget a policy chain (packets for it will raise)."""
        self.chain_map.pop(chain_id, None)
        self._chain_bitmaps.pop(chain_id, None)
        self._chain_profiles.pop(chain_id, None)
        self._chain_any_stateful.pop(chain_id, None)

    # --- scanning ------------------------------------------------------------

    def select_kernel(self, kernel: str) -> None:
        """Switch the automaton's scan kernel (see :mod:`repro.core.kernels`)."""
        self.automaton.select_kernel(kernel)

    def scan_limit(self, active_profiles, flow_offset: int) -> int | None:
        """The most conservative stopping condition (paper Section 5.2):
        scan as deep as the *deepest* interested middlebox requires."""
        limit = 0
        for profile in active_profiles:
            if profile.stopping_condition is None:
                return None
            if profile.stateful:
                remaining = profile.stopping_condition - flow_offset
            else:
                remaining = profile.stopping_condition
            limit = max(limit, remaining)
        return max(limit, 0)

    def scan_packet(
        self,
        payload: bytes,
        chain_id: int,
        flow_key=None,
        now: float = 0.0,
    ) -> ScanResult:
        """Inspect one packet payload for every middlebox on its chain."""
        try:
            active_ids = self.chain_map[chain_id]
        except KeyError:
            raise KeyError(f"unknown policy chain id: {chain_id}") from None
        active_profiles = self._chain_profiles[chain_id]
        active_bitmap = self._chain_bitmaps[chain_id]
        any_stateful = self._chain_any_stateful[chain_id]

        # Restore per-flow state when a stateful middlebox is on the chain.
        start_state = self.automaton.root
        offset = 0
        if any_stateful and flow_key is not None:
            flow_state = self.flow_table.lookup(flow_key)
            if flow_state is not None:
                start_state = flow_state.state
                offset = flow_state.offset

        limit = self.scan_limit(active_profiles, offset)
        scan = self.automaton.scan(
            payload, active_bitmap=active_bitmap, state=start_state, limit=limit
        )

        started_from_root = start_state == self.automaton.root
        result = ScanResult(
            matches={middlebox_id: [] for middlebox_id in active_ids},
            bytes_scanned=scan.bytes_scanned,
            flow_offset_before=offset,
            started_from_root=started_from_root,
        )
        profiles = self.profiles
        for accept_state, cnt in scan.raw_matches:
            for (middlebox_id, pattern_id), length in self.automaton.resolve(
                accept_state, active_bitmap
            ):
                profile = profiles[middlebox_id]
                if profile.stateful:
                    position = cnt + offset
                    if (
                        profile.stopping_condition is not None
                        and position > profile.stopping_condition
                    ):
                        continue
                else:
                    # Stateless: discard matches that began in a previous
                    # packet (the scan only started mid-DFA because some
                    # *other* middlebox on the chain is stateful).
                    if not started_from_root and length > cnt:
                        continue
                    if (
                        profile.stopping_condition is not None
                        and cnt > profile.stopping_condition
                    ):
                        continue
                    position = cnt
                result.matches[middlebox_id].append((pattern_id, position))
        for match_list in result.matches.values():
            match_list.sort(key=_MATCH_ORDER)

        if any_stateful and flow_key is not None:
            self.flow_table.update(
                flow_key, scan.end_state, offset + scan.bytes_scanned, now
            )
        if self._registry is not None:
            pair = self._chain_metrics.get(chain_id)
            if pair is not None:
                pair[0].inc()
                pair[1].inc(scan.bytes_scanned)
        return result

    def scan_flow(
        self, packets, chain_id: int, flow_key, now: float = 0.0
    ) -> list:
        """Scan a sequence of packet payloads of one flow, in order."""
        return [
            self.scan_packet(payload, chain_id, flow_key=flow_key, now=now)
            for payload in packets
        ]
