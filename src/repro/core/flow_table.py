"""The active-flow table of a DPI service instance.

For stateful middleboxes the scan must continue across packet boundaries, so
the instance keeps, per flow, the DFA state at the end of the last scanned
packet and the byte offset within the flow (paper Sections 5.1-5.2).  The
paper notes this is *all* the per-flow state a DPI instance holds — which is
what makes instance migration cheap compared to migrating a middlebox.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, TypedDict


class ExportedFlow(TypedDict):
    """Wire form of one flow's scan state (Section 4.3 flow migration)."""

    state: int
    offset: int
    last_seen: float
    packets: int


@dataclass
class FlowScanState:
    """Scan state carried between packets of one flow."""

    state: int
    offset: int
    last_seen: float = 0.0
    packets: int = 0


class FlowTable:
    """Flow-keyed store of :class:`FlowScanState` with idle eviction."""

    def __init__(self, initial_state: int = 0) -> None:
        self._initial_state = initial_state
        self._flows: dict[Hashable, FlowScanState] = {}

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_key) -> bool:
        return flow_key in self._flows

    def lookup(self, flow_key) -> FlowScanState | None:
        """The stored state for *flow_key*, or None for a new flow."""
        return self._flows.get(flow_key)

    def lookup_or_create(self, flow_key, now: float = 0.0) -> FlowScanState:
        """The flow's state, creating a fresh entry when new."""
        state = self._flows.get(flow_key)
        if state is None:
            state = FlowScanState(
                state=self._initial_state, offset=0, last_seen=now
            )
            self._flows[flow_key] = state
        return state

    def update(
        self, flow_key, state: int, offset: int, now: float = 0.0
    ) -> FlowScanState:
        """Store a flow's state after scanning one packet."""
        entry = self.lookup_or_create(flow_key, now)
        entry.state = state
        entry.offset = offset
        entry.last_seen = now
        entry.packets += 1
        return entry

    def remove(self, flow_key) -> FlowScanState | None:
        """Remove one entry; raises KeyError if absent."""
        return self._flows.pop(flow_key, None)

    def evict_idle(self, now: float, max_idle: float) -> int:
        """Drop flows idle for longer than *max_idle*; returns evictions."""
        stale = [
            key
            for key, entry in self._flows.items()
            if now - entry.last_seen > max_idle
        ]
        for key in stale:
            del self._flows[key]
        return len(stale)

    def export_flow(self, flow_key) -> ExportedFlow | None:
        """Serialize one flow's state for migration to another instance."""
        entry = self._flows.get(flow_key)
        if entry is None:
            return None
        return {
            "state": entry.state,
            "offset": entry.offset,
            "last_seen": entry.last_seen,
            "packets": entry.packets,
        }

    def import_flow(self, flow_key, exported: ExportedFlow) -> None:
        """Install state exported from another instance."""
        self._flows[flow_key] = FlowScanState(
            state=exported["state"],
            offset=exported["offset"],
            last_seen=exported["last_seen"],
            packets=exported["packets"],
        )

    def flow_keys(self) -> list[Hashable]:
        """Keys of every tracked flow."""
        return list(self._flows)
