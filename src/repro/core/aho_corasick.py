"""The Aho-Corasick multi-string matcher (paper Section 3).

Two interchangeable layouts are provided, matching the two classic
implementations the paper discusses:

* ``"sparse"`` — trie transitions in hash maps plus failure links, walked at
  scan time.  Memory is proportional to the number of trie edges, which makes
  ClamAV-scale sets (tens of thousands of long patterns) practical.
* ``"full"`` — the full-table DFA ("full-table AC" in the paper): every state
  stores all 256 next-state entries, so scanning is a single table lookup per
  byte.  Memory is ``states * 256`` entries; this is the layout whose size
  the paper reports in Table 2.

Match positions are reported as *end offsets*: the number of bytes consumed
when the accepting state was reached (the paper's ``cnt``).  A match of
pattern ``p`` at end offset ``e`` spans ``data[e - len(p):e]``.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Sequence

ROOT = 0

_LAYOUTS = ("sparse", "full")


@dataclass(frozen=True)
class AutomatonStats:
    """Size figures for an automaton (Table 2's "Space" column)."""

    num_patterns: int
    num_states: int
    num_accepting_states: int
    num_trie_edges: int
    layout: str
    memory_bytes: int

    @property
    def memory_megabytes(self) -> float:
        """Memory estimate in MiB."""
        return self.memory_bytes / (1024 * 1024)


class AhoCorasick:
    """An Aho-Corasick automaton over a list of byte-string patterns.

    Pattern *indices* (positions in the input list) identify matches; callers
    that need richer identities (middlebox id, pattern id) layer them on top,
    as :class:`~repro.core.combined.CombinedAutomaton` does.
    """

    # Cost model for :attr:`stats` (bytes per stored entry).
    _FULL_ENTRY_BYTES = 4  # one 32-bit next-state entry
    _SPARSE_EDGE_BYTES = 8  # key+value of one hash-map transition
    _STATE_OVERHEAD_BYTES = 4  # failure link / bookkeeping per state

    def __init__(self, patterns: Sequence[bytes], layout: str = "sparse") -> None:
        if layout not in _LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}; expected one of {_LAYOUTS}")
        self._patterns = [bytes(p) for p in patterns]
        for pattern in self._patterns:
            if not pattern:
                raise ValueError("empty patterns are not allowed")
        self.layout = layout
        # Trie construction (phase 1: forward transitions).
        self._goto: list[dict[int, int]] = [{}]
        self._depth: list[int] = [0]
        ends_here: list[list[int]] = [[]]
        for index, pattern in enumerate(self._patterns):
            state = ROOT
            for byte in pattern:
                nxt = self._goto[state].get(byte)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto[state][byte] = nxt
                    self._goto.append({})
                    self._depth.append(self._depth[state] + 1)
                    ends_here.append([])
                state = nxt
            ends_here[state].append(index)
        # Phase 2: failure links and suffix-closed output sets.
        self._fail = array("l", [ROOT] * len(self._goto))
        self._output: list[tuple[int, ...]] = [()] * len(self._goto)
        queue: deque[int] = deque()
        for state in self._goto[ROOT].values():
            queue.append(state)
        order: list[int] = []
        while queue:
            state = queue.popleft()
            order.append(state)
            for byte, child in self._goto[state].items():
                queue.append(child)
                fallback = self._fail[state]
                while byte not in self._goto[fallback] and fallback != ROOT:
                    fallback = self._fail[fallback]
                self._fail[child] = self._goto[fallback].get(byte, ROOT)
                if self._fail[child] == child:
                    self._fail[child] = ROOT
        self._output[ROOT] = tuple(ends_here[ROOT])
        for state in order:
            self._output[state] = tuple(
                ends_here[state]
            ) + self._output[self._fail[state]]
        self._delta: list[array] | None = None
        if layout == "full":
            self._build_full_table()

    # --- construction helpers ------------------------------------------------

    def _build_full_table(self) -> None:
        """Materialize the dense next-state table from goto + failure links."""
        num_states = len(self._goto)
        delta: list[array] = [array("l", [ROOT]) * 256 for _ in range(num_states)]
        root_row = delta[ROOT]
        for byte in range(256):
            root_row[byte] = self._goto[ROOT].get(byte, ROOT)
        queue: deque[int] = deque(self._goto[ROOT].values())
        while queue:
            state = queue.popleft()
            fail_row = delta[self._fail[state]]
            row = delta[state]
            for byte in range(256):
                row[byte] = fail_row[byte]
            for byte, child in self._goto[state].items():
                row[byte] = child
                queue.append(child)
        self._delta = delta

    # --- introspection ---------------------------------------------------------

    @property
    def patterns(self) -> list[bytes]:
        """The pattern list (a copy)."""
        return list(self._patterns)

    @property
    def num_states(self) -> int:
        """Number of automaton states."""
        return len(self._goto)

    @property
    def num_trie_edges(self) -> int:
        """Number of forward (trie) transitions."""
        return sum(len(edges) for edges in self._goto)

    def depth_of(self, state: int) -> int:
        """Length of the label of *state*."""
        return self._depth[state]

    def output_of(self, state: int) -> tuple[int, ...]:
        """Indices of all patterns ending at *state* (suffix-closed)."""
        return self._output[state]

    def is_accepting(self, state: int) -> bool:
        """True if at least one pattern ends at *state*."""
        return bool(self._output[state])

    @property
    def accepting_states(self) -> list[int]:
        """All states with a non-empty output set."""
        return [s for s in range(self.num_states) if self._output[s]]

    @property
    def stats(self) -> AutomatonStats:
        """Size statistics (states, edges, memory)."""
        if self.layout == "full":
            memory = (
                self.num_states * 256 * self._FULL_ENTRY_BYTES
                + self.num_states * self._STATE_OVERHEAD_BYTES
            )
        else:
            memory = (
                self.num_trie_edges * self._SPARSE_EDGE_BYTES
                + self.num_states * self._STATE_OVERHEAD_BYTES
            )
        return AutomatonStats(
            num_patterns=len(self._patterns),
            num_states=self.num_states,
            num_accepting_states=len(self.accepting_states),
            num_trie_edges=self.num_trie_edges,
            layout=self.layout,
            memory_bytes=memory,
        )

    # --- scanning ---------------------------------------------------------------

    def next_state(self, state: int, byte: int) -> int:
        """Single DFA step (used by tests and by the combined automaton)."""
        if self._delta is not None:
            return self._delta[state][byte]
        goto = self._goto
        fail = self._fail
        while byte not in goto[state] and state != ROOT:
            state = fail[state]
        return goto[state].get(byte, ROOT)

    def scan(
        self, data: bytes, state: int = ROOT
    ) -> tuple[list[tuple[int, int]], int]:
        """Scan *data*, returning ``(matches, end_state)``.

        Matches are ``(end_offset, pattern_index)`` pairs in scan order.
        Passing the returned state back in resumes a stateful (cross-packet)
        scan.
        """
        matches = list(self.iter_matches(data, state))
        end_state = self.state_after(data, state)
        return matches, end_state

    def iter_matches(
        self, data: bytes, state: int = ROOT
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(end_offset, pattern_index)`` lazily."""
        output = self._output
        if self._delta is not None:
            delta = self._delta
            for position, byte in enumerate(data):
                state = delta[state][byte]
                if output[state]:
                    for pattern_index in output[state]:
                        yield (position + 1, pattern_index)
        else:
            goto = self._goto
            fail = self._fail
            for position, byte in enumerate(data):
                while byte not in goto[state] and state != ROOT:
                    state = fail[state]
                state = goto[state].get(byte, ROOT)
                if output[state]:
                    for pattern_index in output[state]:
                        yield (position + 1, pattern_index)

    def state_after(self, data: bytes, state: int = ROOT) -> int:
        """The DFA state after consuming *data* (no match collection)."""
        if self._delta is not None:
            delta = self._delta
            for byte in data:
                state = delta[state][byte]
            return state
        goto = self._goto
        fail = self._fail
        for byte in data:
            while byte not in goto[state] and state != ROOT:
                state = fail[state]
            state = goto[state].get(byte, ROOT)
        return state

    def count_matches(self, data: bytes, state: int = ROOT) -> int:
        """Number of matches in *data* — a cheap scan used by benchmarks."""
        return sum(1 for _ in self.iter_matches(data, state))

    def find_all(self, data: bytes) -> list[tuple[int, int]]:
        """All ``(start_offset, pattern_index)`` matches (start-based view)."""
        return [
            (end - len(self._patterns[index]), index)
            for end, index in self.iter_matches(data)
        ]
