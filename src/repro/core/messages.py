"""JSON control-plane messages between middleboxes and the DPI controller.

The paper (Section 4.1) specifies JSON messages over a direct channel for
registration and pattern-set management.  Every message serializes to a JSON
object with a ``type`` discriminator; pattern bytes travel base64-encoded.
"""

from __future__ import annotations

import base64
import json
from dataclasses import asdict, dataclass, field
from typing import Any, ClassVar, TypedDict, TypeVar

from repro.core.patterns import Pattern, PatternKind

_MESSAGE_TYPES: "dict[str, type[ControlMessage]]" = {}

_MessageT = TypeVar("_MessageT", bound="type[ControlMessage]")


class PatternPayload(TypedDict):
    """Wire form of one pattern: bytes travel base64-encoded."""

    pattern_id: int
    kind: str
    data: str


def _register_message(cls: _MessageT) -> _MessageT:
    _MESSAGE_TYPES[cls.TYPE] = cls
    return cls


def _encode_pattern(pattern: Pattern) -> PatternPayload:
    return {
        "pattern_id": pattern.pattern_id,
        "kind": pattern.kind.value,
        "data": base64.b64encode(pattern.data).decode("ascii"),
    }


def _decode_pattern(obj: PatternPayload) -> Pattern:
    return Pattern(
        pattern_id=obj["pattern_id"],
        data=base64.b64decode(obj["data"]),
        kind=PatternKind(obj["kind"]),
    )


@dataclass
class ControlMessage:
    """Base class: JSON round-trip through the ``type`` discriminator."""

    TYPE: ClassVar[str]

    def to_json(self) -> str:
        """Serialize the message to a JSON string."""
        payload = self._to_dict()
        payload["type"] = self.TYPE
        return json.dumps(payload, sort_keys=True)

    def _to_dict(self) -> "dict[str, Any]":
        return asdict(self)

    @staticmethod
    def from_json(text: str) -> "ControlMessage":
        """Parse a JSON string into the right message class."""
        payload = json.loads(text)
        try:
            message_type = payload.pop("type")
        except KeyError:
            raise ValueError("message has no 'type' field") from None
        cls = _MESSAGE_TYPES.get(message_type)
        if cls is None:
            raise ValueError(f"unknown message type: {message_type!r}")
        return cls._from_dict(payload)

    @classmethod
    def _from_dict(cls, payload: "dict[str, Any]") -> "ControlMessage":
        return cls(**payload)


@_register_message
@dataclass
class RegisterMiddleboxMessage(ControlMessage):
    """A middlebox announces itself to the DPI service (Section 4.1).

    ``inherit_from`` names an already-registered middlebox whose pattern set
    this one adopts.  ``read_only`` middleboxes only need match results, not
    the packets themselves.  ``stopping_condition`` bounds scan depth.
    """

    TYPE: ClassVar[str] = "register"

    middlebox_id: int
    name: str
    stateful: bool = False
    read_only: bool = False
    stopping_condition: int | None = None
    inherit_from: int | None = None


@_register_message
@dataclass
class UnregisterMiddleboxMessage(ControlMessage):
    """A middlebox leaves the service; its pattern referrals are released."""

    TYPE: ClassVar[str] = "unregister"

    middlebox_id: int


@_register_message
@dataclass
class AddPatternsMessage(ControlMessage):
    """Add patterns to a registered middlebox's set."""

    TYPE: ClassVar[str] = "add_patterns"

    middlebox_id: int
    patterns: list[Pattern] = field(default_factory=list)

    def _to_dict(self) -> "dict[str, Any]":
        return {
            "middlebox_id": self.middlebox_id,
            "patterns": [_encode_pattern(p) for p in self.patterns],
        }

    @classmethod
    def _from_dict(cls, payload: "dict[str, Any]") -> "AddPatternsMessage":
        return cls(
            middlebox_id=payload["middlebox_id"],
            patterns=[_decode_pattern(obj) for obj in payload["patterns"]],
        )


@_register_message
@dataclass
class RemovePatternsMessage(ControlMessage):
    """Remove patterns (by local id) from a middlebox's set."""

    TYPE: ClassVar[str] = "remove_patterns"

    middlebox_id: int
    pattern_ids: list[int] = field(default_factory=list)


@_register_message
@dataclass
class AckMessage(ControlMessage):
    """Controller reply: success/failure plus a human-readable detail."""

    TYPE: ClassVar[str] = "ack"

    ok: bool
    detail: str = ""
