"""The logically centralized DPI controller (paper Section 4.1).

Responsibilities implemented here:

* **Registration** — middleboxes register over JSON messages, optionally
  inheriting the pattern set of an already-registered middlebox; they
  declare statefulness, read-only mode and a stopping condition.
* **Pattern-set management** — add/remove messages feed the deduplicated
  :class:`~repro.core.patterns.GlobalPatternRegistry`; a pattern disappears
  only when its last referrer removes it.
* **Policy chains** — received from the traffic steering application; each
  chain id maps to the DPI-using middleboxes on it, which is what instances
  use to decide which pattern sets apply to a packet.
* **TSA negotiation** — rewriting chains to insert the DPI service before
  the first middlebox that needs scan results (Figure 1).
* **Instance lifecycle** — building instance configurations, spawning
  instances (optionally specialized to a subset of chains, Section 4.3) and
  pushing updated configurations after pattern changes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.lifecycle import InstanceManager
from repro.core.messages import (
    AckMessage,
    AddPatternsMessage,
    ControlMessage,
    RegisterMiddleboxMessage,
    RemovePatternsMessage,
    UnregisterMiddleboxMessage,
)
from repro.core.patterns import GlobalPatternRegistry, Pattern, PatternSet
from repro.core.scanner import MiddleboxProfile
from repro.telemetry import TelemetryHub


@dataclass
class MiddleboxRecord:
    """Controller-side state for one registered middlebox."""

    profile: MiddleboxProfile
    pattern_set: PatternSet


class DPIController:
    """Manages middlebox registrations, patterns, chains and instances."""

    def __init__(
        self, dpi_service_type: str = "dpi", telemetry: TelemetryHub | None = None
    ) -> None:
        self.dpi_service_type = dpi_service_type
        # Always-present hub: instances publish into its registry, so load
        # sampling and the stress monitor are purely registry-backed.  Pass
        # a simulator-clocked hub (TelemetryHub.for_simulator) to share one
        # timeline with the data plane; the default is wall-clocked and
        # trace-free.
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryHub(tracing=False)
        )
        self._load_window = self.telemetry.registry.window(
            ("dpi_bytes_scanned_total", "dpi_scan_seconds_total"),
            zero_baseline=True,
        )
        self.registry = GlobalPatternRegistry()
        self._middleboxes: dict[int, MiddleboxRecord] = {}
        # chain id -> tuple of middlebox type names (from the TSA)
        self._chains: dict[int, tuple] = {}
        self._chain_names: dict[int, str] = {}
        # Read-only optimization: chains whose middlebox ids are pinned here
        # keep their scanning config even after the TSA drops the (off-path)
        # middlebox types from the routing chain.
        self._chain_overrides: dict[int, tuple] = {}
        #: The unified instance-lifecycle facade: a read-only mapping of
        #: ``name -> DPIServiceInstance`` plus the lifecycle verbs
        #: (``provision`` / ``decommission`` / ``plan_groups`` / ``refresh``).
        self.instances = InstanceManager(self)
        self._tsa = None
        #: The attached MCA² stress monitor, if any (set by StressMonitor);
        #: its calibrated baselines ride along in telemetry snapshots.
        self.stress_monitor = None

    # --- middlebox registration -------------------------------------------

    def handle_message(self, message) -> AckMessage:
        """Process one control message (object or JSON text)."""
        if isinstance(message, str):
            message = ControlMessage.from_json(message)
        try:
            if isinstance(message, RegisterMiddleboxMessage):
                self._register(message)
            elif isinstance(message, UnregisterMiddleboxMessage):
                self._unregister(message.middlebox_id)
            elif isinstance(message, AddPatternsMessage):
                self.add_patterns(message.middlebox_id, message.patterns)
            elif isinstance(message, RemovePatternsMessage):
                self.remove_patterns(message.middlebox_id, message.pattern_ids)
            else:
                return AckMessage(
                    ok=False, detail=f"unsupported message: {type(message).__name__}"
                )
        except (KeyError, ValueError) as error:
            return AckMessage(ok=False, detail=str(error))
        return AckMessage(ok=True)

    def _register(self, message: RegisterMiddleboxMessage) -> None:
        middlebox_id = message.middlebox_id
        if middlebox_id in self._middleboxes:
            raise ValueError(f"middlebox id already registered: {middlebox_id}")
        profile = MiddleboxProfile(
            middlebox_id=middlebox_id,
            name=message.name,
            stateful=message.stateful,
            read_only=message.read_only,
            stopping_condition=message.stopping_condition,
        )
        record = MiddleboxRecord(
            profile=profile, pattern_set=PatternSet(name=message.name)
        )
        self._middleboxes[middlebox_id] = record
        if message.inherit_from is not None:
            parent = self._middleboxes.get(message.inherit_from)
            if parent is None:
                del self._middleboxes[middlebox_id]
                raise KeyError(
                    f"cannot inherit from unknown middlebox {message.inherit_from}"
                )
            self.add_patterns(middlebox_id, list(parent.pattern_set))

    def _unregister(self, middlebox_id: int) -> None:
        if middlebox_id not in self._middleboxes:
            raise KeyError(f"middlebox not registered: {middlebox_id}")
        self.registry.remove_middlebox(middlebox_id)
        del self._middleboxes[middlebox_id]

    @property
    def middlebox_ids(self) -> list[int]:
        """Ids of every registered middlebox, sorted."""
        return sorted(self._middleboxes)

    def profile_of(self, middlebox_id: int) -> MiddleboxProfile:
        """The registration profile of one middlebox."""
        return self._middleboxes[middlebox_id].profile

    def pattern_set_of(self, middlebox_id: int) -> PatternSet:
        """The current pattern set of one middlebox."""
        return self._middleboxes[middlebox_id].pattern_set

    def middlebox_ids_of_type(self, type_name: str) -> list[int]:
        """Ids of registered middleboxes with this type name."""
        return sorted(
            middlebox_id
            for middlebox_id, record in self._middleboxes.items()
            if record.profile.name == type_name
        )

    # --- pattern management -------------------------------------------------

    def add_patterns(self, middlebox_id: int, patterns: list) -> None:
        """Add patterns to a middlebox's set and the global registry."""
        record = self._middleboxes.get(middlebox_id)
        if record is None:
            raise KeyError(f"middlebox not registered: {middlebox_id}")
        for pattern in patterns:
            record.pattern_set.add(pattern)
            self.registry.add(middlebox_id, pattern)

    def remove_patterns(self, middlebox_id: int, pattern_ids: list) -> None:
        """Remove patterns by id; shared content stays until its last referrer leaves."""
        record = self._middleboxes.get(middlebox_id)
        if record is None:
            raise KeyError(f"middlebox not registered: {middlebox_id}")
        for pattern_id in pattern_ids:
            pattern = record.pattern_set.remove(pattern_id)
            self.registry.remove(middlebox_id, pattern)

    # --- policy chains and TSA negotiation ------------------------------------

    def policy_chains_changed(self, chains: dict) -> None:
        """TSA listener callback: chains is ``{name: PolicyChain}``.

        Chains are indexed by the tag a DPI instance actually observes on
        packets: the chain's base id plus the DPI service's hop position
        (the TSA's per-segment tagging; the base id itself for chains that
        do not route through the service).
        """
        self._chains = {}
        self._chain_names = {}
        for name, chain in chains.items():
            if chain.chain_id is None:
                continue
            tag = self._visible_tag(chain)
            self._chains[tag] = tuple(chain.middlebox_types)
            self._chain_names[tag] = name

    def _visible_tag(self, chain) -> int:
        """The VLAN tag packets of *chain* carry when the DPI scans them."""
        types = tuple(chain.middlebox_types)
        if self.dpi_service_type in types:
            return chain.chain_id + types.index(self.dpi_service_type)
        return chain.chain_id

    def attach_tsa(self, tsa) -> None:
        """Subscribe to the TSA's policy chains and negotiate DPI insertion."""
        self._tsa = tsa
        tsa.add_chain_listener(self)
        self.negotiate_chains()

    def negotiate_chains(self) -> list[str]:
        """Rewrite every chain that contains a DPI-using middlebox type so
        the DPI service is visited first (Figure 1(b)).  Returns the names
        of the chains that were rewritten."""
        if self._tsa is None:
            raise RuntimeError("no TSA attached")
        registered_types = {
            record.profile.name for record in self._middleboxes.values()
        }
        rewritten = []
        for name, chain in list(self._tsa.chains.items()):
            if self.dpi_service_type in chain.middlebox_types:
                continue
            dpi_users = [
                t for t in chain.middlebox_types if t in registered_types
            ]
            if not dpi_users:
                continue
            updated = chain.with_service_before(
                self.dpi_service_type, dpi_users[0]
            )
            self._tsa.rewrite_chain(name, updated.middlebox_types)
            rewritten.append(name)
        return rewritten

    def chain_name_of(self, chain_id: int) -> str | None:
        """The TSA chain name behind a (DPI-visible) chain tag."""
        return self._chain_names.get(chain_id)

    def chain_middlebox_ids(self, chain_id: int) -> tuple:
        """The registered (DPI-using) middlebox ids on a policy chain."""
        override = self._chain_overrides.get(chain_id)
        if override is not None:
            return override
        type_names = self._chains.get(chain_id, ())
        ids: list[int] = []
        for type_name in type_names:
            ids.extend(self.middlebox_ids_of_type(type_name))
        return tuple(ids)

    def optimize_read_only_chains(self) -> list[str]:
        """Apply the read-only optimization (Section 4.2, option 3).

        For every chain whose DPI-using middleboxes are *all* read-only,
        the middlebox types are removed from the TSA routing chain (the DPI
        service stays); their scanning configuration is pinned via a chain
        override, and result packets will be sent to the middlebox hosts
        directly.  Returns the names of the optimized chains.
        """
        if self._tsa is None:
            raise RuntimeError("no TSA attached")
        optimized = []
        for name, chain in list(self._tsa.chains.items()):
            if chain.chain_id is None:
                continue
            visible_tag = self._visible_tag(chain)
            middlebox_ids = self.chain_middlebox_ids(visible_tag)
            if not middlebox_ids:
                continue
            if not all(
                self._middleboxes[mb].profile.read_only for mb in middlebox_ids
            ):
                continue
            read_only_types = {
                self._middleboxes[mb].profile.name for mb in middlebox_ids
            }
            if not read_only_types & set(chain.middlebox_types):
                continue  # already off the routing path
            self._chain_overrides[visible_tag] = middlebox_ids
            updated = chain.without_types(read_only_types)
            self._tsa.rewrite_chain(name, updated.middlebox_types)
            optimized.append(name)
        return optimized

    def read_only_chain_ids(self) -> tuple:
        """Chain ids currently running in read-only (direct-result) mode."""
        return tuple(sorted(self._chain_overrides))

    def chain_map(self, chain_ids=None) -> dict:
        """``{chain id: (middlebox ids)}`` for instance configuration."""
        selected = self._chains if chain_ids is None else {
            chain_id: self._chains[chain_id] for chain_id in chain_ids
        }
        return {
            chain_id: self.chain_middlebox_ids(chain_id)
            for chain_id in selected
        }

    # --- instance lifecycle (deprecated shims) -----------------------------
    #
    # The lifecycle API lives on the ``instances`` facade
    # (:class:`~repro.core.lifecycle.InstanceManager`).  The methods below
    # are deprecation shims only; in-repo callers are flagged by lint rule
    # API002.

    @staticmethod
    def _deprecated(old: str, new: str) -> None:
        warnings.warn(
            f"DPIController.{old} is deprecated; use controller.{new}",
            DeprecationWarning,
            stacklevel=3,
        )

    def build_instance_config(
        self,
        chain_ids=None,
        layout: str = "sparse",
        kernel: str = "flat",
        scan_cache_size: int = 0,
    ) -> InstanceConfig:
        """Deprecated: use ``controller.instances.build_config(...)``."""
        self._deprecated("build_instance_config", "instances.build_config")
        return self.instances.build_config(
            chain_ids=chain_ids,
            layout=layout,
            kernel=kernel,
            scan_cache_size=scan_cache_size,
        )

    def create_instance(
        self,
        name: str,
        chain_ids=None,
        layout: str = "sparse",
        kernel: str = "flat",
        scan_cache_size: int = 0,
        validate: bool = True,
    ) -> DPIServiceInstance:
        """Deprecated: use ``controller.instances.provision(name, ...)``."""
        self._deprecated("create_instance", "instances.provision")
        return self.instances.provision(
            name,
            chain_ids=chain_ids,
            layout=layout,
            kernel=kernel,
            scan_cache_size=scan_cache_size,
            validate=validate,
        )

    def remove_instance(self, name: str) -> DPIServiceInstance:
        """Deprecated: use ``controller.instances.decommission(name)``."""
        self._deprecated("remove_instance", "instances.decommission")
        instance = self.instances.decommission(name)
        assert instance is not None  # missing_ok defaults to False
        return instance

    def refresh_instances(self) -> None:
        """Deprecated: use ``controller.instances.refresh()``."""
        self._deprecated("refresh_instances", "instances.refresh")
        self.instances.refresh()

    def deploy_grouped(
        self,
        max_groups: int,
        layout: str = "sparse",
        kernel: str = "flat",
        name_prefix: str = "dpi-group",
    ) -> dict:
        """Deprecated: use ``controller.instances.plan_groups(...)``."""
        self._deprecated("deploy_grouped", "instances.plan_groups")
        return self.instances.plan_groups(
            max_groups=max_groups,
            layout=layout,
            kernel=kernel,
            name_prefix=name_prefix,
        )

    def load_samples(self, window_seconds: float) -> list:
        """Per-instance :class:`~repro.core.deployment.LoadSample` objects
        for the registry counters accumulated since the previous call."""
        from repro.core.deployment import LoadSample

        if window_seconds <= 0:
            raise ValueError(f"window must be positive: {window_seconds}")
        delta = self._load_window.delta()
        return [
            LoadSample(
                instance_name=name,
                bytes_scanned=delta.value(
                    "dpi_bytes_scanned_total", instance=name
                ),
                scan_seconds=delta.value(
                    "dpi_scan_seconds_total", instance=name
                ),
                window_seconds=window_seconds,
            )
            for name in self.instances
        ]

    # --- telemetry and migration ---------------------------------------------

    def telemetry_snapshot(self):
        """The unified, typed telemetry snapshot
        (:class:`~repro.telemetry.snapshot.TelemetrySnapshot`): per-instance
        counters, stress-monitor baselines, the full registry dump and every
        recorded fault event, timestamped by the hub clock."""
        from repro.telemetry.snapshot import build_snapshot

        return build_snapshot(self)

    def collect_telemetry(self) -> dict:
        """Deprecated: use ``controller.telemetry_snapshot().instances``."""
        self._deprecated("collect_telemetry", "telemetry_snapshot().instances")
        return dict(self.telemetry_snapshot().instances)

    def migrate_flow(self, flow_key, source_name: str, target_name: str) -> bool:
        """Move one flow's scan state between instances (Section 4.3).

        Returns False when the source holds no state for the flow (nothing
        to migrate — the target will simply start it fresh).  A missing
        source or target raises ``KeyError(f"no instance named {name}")``
        (the same contract as ``instances.decommission``); a crashed source
        or target raises
        :class:`~repro.core.instance.InstanceUnavailableError` so callers
        can distinguish "gone" from "down".  Both instances must share the
        same configuration for DFA states to be meaningful, which holds for
        instances built from the same config.
        """
        source = self.instances[source_name]
        target = self.instances[target_name]
        exported = source.export_flow(flow_key)
        if exported is None:
            return False
        target.import_flow(flow_key, exported)
        source.drop_flow(flow_key)
        return True
