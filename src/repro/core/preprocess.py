"""Payload preprocessing: decompression before inspection.

The paper argues that when DPI is a service, heavy preprocessing such as
decompression or decryption runs **once** per packet instead of once per
middlebox (Section 1).  This module implements the decompression half:

* :func:`decompress_gzip_regions` — finds gzip streams embedded in a
  payload (magic ``1f 8b``) and inflates them, bounded by an expansion
  limit so a decompression bomb cannot exhaust the service;
* :class:`PayloadPreprocessor` — produces the *scan views* of a payload:
  the raw bytes plus one view per successfully decompressed region, each
  tagged with the region's offset so match positions can be attributed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

GZIP_MAGIC = b"\x1f\x8b"

#: Default cap on decompressed output per region (bomb protection).
MAX_INFLATED_BYTES = 1 << 20


@dataclass(frozen=True)
class ScanView:
    """One byte sequence to scan, with provenance.

    ``source_offset`` is where the view's origin lies in the raw payload;
    ``compressed`` distinguishes inflated views (whose match positions are
    positions in the *decompressed* stream) from the raw view.
    """

    data: bytes
    source_offset: int = 0
    compressed: bool = False


@dataclass
class PreprocessStats:
    """Plain counters container."""
    payloads: int = 0
    gzip_regions_found: int = 0
    gzip_regions_inflated: int = 0
    inflate_failures: int = 0
    bombs_stopped: int = 0
    bytes_inflated: int = 0


def find_gzip_offsets(payload: bytes) -> list:
    """Offsets of plausible gzip stream starts (magic + deflate method)."""
    offsets = []
    start = 0
    while True:
        index = payload.find(GZIP_MAGIC, start)
        if index == -1:
            return offsets
        # Third byte must be 8 (deflate) for a real gzip member.
        if index + 2 < len(payload) and payload[index + 2] == 8:
            offsets.append(index)
        start = index + 1


def decompress_gzip_regions(
    payload: bytes, max_inflated: int = MAX_INFLATED_BYTES
) -> list:
    """Inflate every gzip region found in *payload*.

    Returns ``(offset, inflated bytes)`` pairs; regions that fail to
    inflate are skipped, and regions whose output exceeds *max_inflated*
    are truncated there (the decompression-bomb guard).
    """
    regions = []
    for offset in find_gzip_offsets(payload):
        decompressor = zlib.decompressobj(wbits=zlib.MAX_WBITS | 16)
        try:
            inflated = decompressor.decompress(payload[offset:], max_inflated)
        except zlib.error:
            continue
        if inflated:
            regions.append((offset, inflated))
    return regions


class PayloadPreprocessor:
    """Produces the scan views of a payload (raw + decompressed regions)."""

    def __init__(self, max_inflated: int = MAX_INFLATED_BYTES) -> None:
        if max_inflated < 1:
            raise ValueError(f"max_inflated must be positive: {max_inflated}")
        self.max_inflated = max_inflated
        self.stats = PreprocessStats()

    def views(self, payload: bytes) -> list:
        """The raw view plus one view per inflatable gzip region."""
        self.stats.payloads += 1
        result = [ScanView(data=payload)]
        for offset in find_gzip_offsets(payload):
            self.stats.gzip_regions_found += 1
            decompressor = zlib.decompressobj(wbits=zlib.MAX_WBITS | 16)
            try:
                inflated = decompressor.decompress(
                    payload[offset:], self.max_inflated
                )
            except zlib.error:
                self.stats.inflate_failures += 1
                continue
            if not inflated:
                self.stats.inflate_failures += 1
                continue
            if decompressor.unconsumed_tail:
                # More output was available than the cap allows.
                self.stats.bombs_stopped += 1
            self.stats.gzip_regions_inflated += 1
            self.stats.bytes_inflated += len(inflated)
            result.append(
                ScanView(data=inflated, source_offset=offset, compressed=True)
            )
        return result
