"""Match-report wire encoding (paper Section 6.5).

The experiments in the paper encode every match with a uniform 6-byte record
"to allow faster encoding and decoding of both regular and range reports":

* a **single match** — pattern id and end position;
* a **range of matches** — the repeated-character case where one pattern
  matches at a run of consecutive positions; the record carries the first
  end position and the run length.

Layout of the 6-byte record (big endian)::

    u16 pattern_id | u24 end_position | u8 run_length

``run_length == 1`` denotes a single match; longer runs cover matches at
``end_position, end_position + 1, ..., end_position + run_length - 1``.
Runs longer than 255 are split into several records.

A *report* aggregates the records of every middlebox interested in one
packet::

    u8 version | u8 flags | u16 block_count
    block: u16 middlebox_id | u16 record_count | record*

A compact 4-byte single-match record (``u16 pattern_id | u16 end_position``)
is provided for the encoding ablation; it cannot express ranges or positions
beyond 64 KiB.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

RECORD_LENGTH = 6
COMPACT_RECORD_LENGTH = 4
HEADER_LENGTH = 4
BLOCK_HEADER_LENGTH = 4
REPORT_VERSION = 1

MAX_PATTERN_ID = 0xFFFF
MAX_POSITION = 0xFFFFFF
MAX_RUN_LENGTH = 0xFF

_HEADER = struct.Struct(">BBH")
_BLOCK_HEADER = struct.Struct(">HH")


@dataclass(frozen=True)
class MatchRecord:
    """One pattern match: ``position`` is the match's end offset."""

    pattern_id: int
    position: int

    def __post_init__(self) -> None:
        _check_record_fields(self.pattern_id, self.position, 1)

    def positions(self) -> list[int]:
        """All end positions this record covers."""
        return [self.position]


@dataclass(frozen=True)
class RangeRecord:
    """A run of matches of one pattern at consecutive end positions."""

    pattern_id: int
    start_position: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ValueError(f"range records need count >= 2, got {self.count}")
        _check_record_fields(self.pattern_id, self.start_position, self.count)

    def positions(self) -> list[int]:
        """All end positions this record covers."""
        return list(
            range(self.start_position, self.start_position + self.count)
        )


def _check_record_fields(pattern_id: int, position: int, count: int) -> None:
    if not 0 <= pattern_id <= MAX_PATTERN_ID:
        raise ValueError(f"pattern id out of range: {pattern_id}")
    if not 0 <= position <= MAX_POSITION:
        raise ValueError(f"position out of range: {position}")
    if not 1 <= count <= MAX_RUN_LENGTH:
        raise ValueError(f"run length out of range: {count}")


def _encode_record(pattern_id: int, position: int, run_length: int) -> bytes:
    return struct.pack(
        ">HBHB",
        pattern_id,
        (position >> 16) & 0xFF,
        position & 0xFFFF,
        run_length,
    )


def _decode_record(data: bytes):
    pattern_id, pos_high, pos_low, run_length = struct.unpack(">HBHB", data)
    position = (pos_high << 16) | pos_low
    if run_length == 1:
        return MatchRecord(pattern_id=pattern_id, position=position)
    return RangeRecord(
        pattern_id=pattern_id, start_position=position, count=run_length
    )


def compress_matches(matches) -> list:
    """Turn ``(pattern id, position)`` pairs into records, folding runs of
    consecutive positions of the same pattern into range records."""
    records: list = []
    ordered = sorted(matches, key=lambda m: (m[0], m[1]))
    index = 0
    while index < len(ordered):
        pattern_id, position = ordered[index]
        run = 1
        while (
            index + run < len(ordered)
            and ordered[index + run][0] == pattern_id
            and ordered[index + run][1] == position + run
            and run < MAX_RUN_LENGTH
        ):
            run += 1
        if run == 1:
            records.append(MatchRecord(pattern_id=pattern_id, position=position))
        else:
            records.append(
                RangeRecord(
                    pattern_id=pattern_id, start_position=position, count=run
                )
            )
        index += run
    return records


@dataclass
class MatchReport:
    """All match records for one packet, grouped per middlebox."""

    blocks: dict = field(default_factory=dict)  # middlebox id -> [records]

    @classmethod
    def from_matches(cls, per_middlebox_matches: dict) -> "MatchReport":
        """Build a report from ``{middlebox id: [(pattern id, position)]}``,
        compressing consecutive runs (empty lists are omitted)."""
        blocks = {}
        for middlebox_id, matches in sorted(per_middlebox_matches.items()):
            if not matches:
                continue
            blocks[middlebox_id] = compress_matches(matches)
        return cls(blocks=blocks)

    @property
    def is_empty(self) -> bool:
        """True when no middlebox has any match records."""
        return not self.blocks

    def records_for(self, middlebox_id: int) -> list:
        """The records of one middlebox (a copy)."""
        return list(self.blocks.get(middlebox_id, []))

    def matches_for(self, middlebox_id: int) -> list:
        """Expand records back to ``(pattern id, position)`` pairs."""
        pairs = []
        for record in self.blocks.get(middlebox_id, []):
            for position in record.positions():
                pairs.append((record.pattern_id, position))
        return pairs

    def total_records(self) -> int:
        """Number of records across all blocks."""
        return sum(len(records) for records in self.blocks.values())

    def size_bytes(self) -> int:
        """Encoded size — the quantity Figure 11 plots."""
        size = HEADER_LENGTH
        for records in self.blocks.values():
            size += BLOCK_HEADER_LENGTH + RECORD_LENGTH * len(records)
        return size

    # --- wire encoding -----------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the wire format."""
        pieces = [_HEADER.pack(REPORT_VERSION, 0, len(self.blocks))]
        for middlebox_id in sorted(self.blocks):
            records = self.blocks[middlebox_id]
            if not 0 <= middlebox_id <= 0xFFFF:
                raise ValueError(f"middlebox id out of range: {middlebox_id}")
            if len(records) > 0xFFFF:
                raise ValueError(f"too many records: {len(records)}")
            pieces.append(_BLOCK_HEADER.pack(middlebox_id, len(records)))
            for record in records:
                if isinstance(record, MatchRecord):
                    pieces.append(
                        _encode_record(record.pattern_id, record.position, 1)
                    )
                else:
                    pieces.append(
                        _encode_record(
                            record.pattern_id, record.start_position, record.count
                        )
                    )
        return b"".join(pieces)

    @classmethod
    def decode(cls, data: bytes) -> "MatchReport":
        """Parse the wire format; raises ValueError on malformed input."""
        if len(data) < HEADER_LENGTH:
            raise ValueError("truncated report header")
        version, _flags, block_count = _HEADER.unpack_from(data, 0)
        if version != REPORT_VERSION:
            raise ValueError(f"unsupported report version: {version}")
        offset = HEADER_LENGTH
        blocks = {}
        for _ in range(block_count):
            if offset + BLOCK_HEADER_LENGTH > len(data):
                raise ValueError("truncated block header")
            middlebox_id, record_count = _BLOCK_HEADER.unpack_from(data, offset)
            offset += BLOCK_HEADER_LENGTH
            records = []
            for _ in range(record_count):
                if offset + RECORD_LENGTH > len(data):
                    raise ValueError("truncated record")
                records.append(_decode_record(data[offset : offset + RECORD_LENGTH]))
                offset += RECORD_LENGTH
            blocks[middlebox_id] = records
        if offset != len(data):
            raise ValueError(f"{len(data) - offset} trailing bytes in report")
        return cls(blocks=blocks)

    # --- compact (4-byte) ablation encoding ---------------------------------

    def encode_compact(self) -> bytes:
        """4-byte single-match records; ranges are expanded.  Used only by
        the encoding ablation benchmark."""
        pieces = [_HEADER.pack(REPORT_VERSION, 1, len(self.blocks))]
        for middlebox_id in sorted(self.blocks):
            pairs = self.matches_for(middlebox_id)
            pieces.append(_BLOCK_HEADER.pack(middlebox_id, len(pairs)))
            for pattern_id, position in pairs:
                if position > 0xFFFF:
                    raise ValueError(
                        f"position {position} does not fit the compact encoding"
                    )
                pieces.append(struct.pack(">HH", pattern_id, position))
        return b"".join(pieces)
