"""Trace file I/O.

Traces are stored in a small self-describing binary format (``.rtrc``) so
generated workloads can be saved once and replayed across benchmark runs —
the same role the paper's pcap files play:

==========  ==========================================================
section     layout (big endian)
==========  ==========================================================
header      magic ``RTRC`` | u8 version | u8 flags | u32 packet count
per packet  u32 flow id (``0xFFFFFFFF`` = none) | u32 length | payload
footer      u32 adler32 of every payload, chained
==========  ==========================================================
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

from repro.workloads.traffic import Trace

MAGIC = b"RTRC"
VERSION = 1
NO_FLOW = 0xFFFFFFFF

_HEADER = struct.Struct(">4sBBI")
_PACKET_HEADER = struct.Struct(">II")
_FOOTER = struct.Struct(">I")


class TraceFormatError(ValueError):
    """Raised for malformed trace files."""


def save_trace(trace: Trace, path) -> int:
    """Write *trace* to *path*; returns the bytes written."""
    path = Path(path)
    flags = 1 if trace.flow_ids is not None else 0
    pieces = [_HEADER.pack(MAGIC, VERSION, flags, len(trace.payloads))]
    checksum = 1  # adler32 seed
    for index, payload in enumerate(trace.payloads):
        flow_id = NO_FLOW
        if trace.flow_ids is not None:
            flow_id = trace.flow_ids[index]
            if not 0 <= flow_id < NO_FLOW:
                raise ValueError(f"flow id out of range: {flow_id}")
        pieces.append(_PACKET_HEADER.pack(flow_id, len(payload)))
        pieces.append(payload)
        checksum = zlib.adler32(payload, checksum)
    pieces.append(_FOOTER.pack(checksum & 0xFFFFFFFF))
    blob = b"".join(pieces)
    path.write_bytes(blob)
    return len(blob)


def load_trace(path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    blob = Path(path).read_bytes()
    if len(blob) < _HEADER.size + _FOOTER.size:
        raise TraceFormatError("file too short for a trace")
    magic, version, flags, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic: {magic!r}")
    if version != VERSION:
        raise TraceFormatError(f"unsupported trace version: {version}")
    has_flows = bool(flags & 1)
    offset = _HEADER.size
    payloads = []
    flow_ids = [] if has_flows else None
    checksum = 1
    for _ in range(count):
        if offset + _PACKET_HEADER.size > len(blob) - _FOOTER.size:
            raise TraceFormatError("truncated packet header")
        flow_id, length = _PACKET_HEADER.unpack_from(blob, offset)
        offset += _PACKET_HEADER.size
        if offset + length > len(blob) - _FOOTER.size:
            raise TraceFormatError("truncated packet payload")
        payload = blob[offset : offset + length]
        offset += length
        payloads.append(payload)
        checksum = zlib.adler32(payload, checksum)
        if has_flows:
            flow_ids.append(flow_id)
        elif flow_id != NO_FLOW:
            raise TraceFormatError("flow id present in a flowless trace")
    if offset + _FOOTER.size != len(blob):
        raise TraceFormatError("trailing bytes after the footer")
    (stored_checksum,) = _FOOTER.unpack_from(blob, offset)
    if stored_checksum != checksum & 0xFFFFFFFF:
        raise TraceFormatError("payload checksum mismatch")
    return Trace(
        payloads=payloads,
        flow_ids=flow_ids,
        description=f"loaded from {path}",
    )
