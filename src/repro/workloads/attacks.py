"""Complexity-attack traffic against DPI engines (for the MCA^2 part).

Two classic "heavy packet" shapes are generated:

* :func:`near_miss_payload` — pattern prefixes that each miss on their last
  byte, driving the automaton deep along forward transitions and forcing
  failure-link walks on sparse layouts (the textbook AC complexity attack);
* :func:`match_flood_payload` — patterns packed back to back, so that the
  engine's *match handling* path (accept checks, match-table resolution,
  report construction) fires every few bytes.  On this implementation the
  match path dominates per-byte cost, making the flood the strongest
  stressor — matching the MCA^2 observation that heavy packets are the ones
  exercising the engine's expensive paths, whichever those are.

:func:`heavy_payload` combines both.
"""

from __future__ import annotations

import random


def near_miss_payload(
    patterns: list, length: int, seed: int = 11, miss_byte: int | None = None
) -> bytes:
    """A payload of pattern prefixes that each miss on their last byte.

    Every prefix drives the automaton deep along forward transitions; the
    final, wrong byte then triggers a failure-link walk back.
    """
    if not patterns:
        raise ValueError("need at least one pattern to attack")
    if length < 1:
        raise ValueError(f"length must be positive: {length}")
    rng = random.Random(("near-miss", seed).__repr__())
    deep = sorted(patterns, key=len, reverse=True)[: max(1, len(patterns) // 10)]
    chunks: list[bytes] = []
    total = 0
    while total < length:
        pattern = rng.choice(deep)
        prefix = pattern[:-1]
        last = pattern[-1]
        wrong = miss_byte if miss_byte is not None else (last + 1) % 256
        chunk = prefix + bytes([wrong])
        chunks.append(chunk)
        total += len(chunk)
    return b"".join(chunks)[:length]


def match_flood_payload(patterns: list, length: int, seed: int = 12) -> bytes:
    """Patterns packed back to back: a match fires every few bytes.

    The payload ends mid-pattern when *length* does not divide evenly; the
    truncated tail simply produces no final match.
    """
    if not patterns:
        raise ValueError("need at least one pattern to attack")
    if length < 1:
        raise ValueError(f"length must be positive: {length}")
    rng = random.Random(("flood", seed).__repr__())
    # Prefer short patterns: more matches per byte.
    short = sorted(patterns, key=len)[: max(1, len(patterns) // 5)]
    chunks: list[bytes] = []
    total = 0
    while total < length:
        pattern = rng.choice(short)
        chunks.append(pattern)
        total += len(pattern)
    return b"".join(chunks)[:length]


def heavy_payload(patterns: list, length: int, seed: int = 13) -> bytes:
    """A mixed heavy payload: match floods interleaved with near-misses.

    Stresses both the traversal path (deep walks + failure chains) and the
    match-handling path (resolution + report construction).
    """
    rng = random.Random(("heavy", seed).__repr__())
    chunks: list[bytes] = []
    total = 0
    while total < length:
        span = rng.randrange(100, 400)
        if rng.random() < 0.7:
            chunk = match_flood_payload(patterns, span, seed=rng.randrange(1 << 30))
        else:
            chunk = near_miss_payload(patterns, span, seed=rng.randrange(1 << 30))
        chunks.append(chunk)
        total += len(chunk)
    return b"".join(chunks)[:length]
