"""Traffic traces with a controlled match profile.

Stands in for the paper's two traces — a 9 GB campus wireless capture and a
17 MB HTTP crawl of popular websites — reproducing the properties the
results depend on:

* payloads look like web content (HTML/JS/text mixtures) or mixed campus
  traffic;
* **more than 90 % of packets contain no pattern match** (measured in the
  paper for both traces);
* matched packets usually carry few matches, with a small tail of
  match-heavy packets, and occasional repeated-character runs that produce
  *range* reports (Section 6.5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_HTML_SNIPPETS = [
    b"<!DOCTYPE html><html><head><title>", b"</title></head><body>",
    b"<div class=\"container\">", b"<script type=\"text/javascript\">",
    b"function onload() { return document.getElementById(", b"</script>",
    b"<a href=\"https://example.com/", b"<img src=\"/static/images/",
    b"<p>Lorem ipsum dolor sit amet, consectetur adipiscing elit. ",
    b"var config = {\"endpoint\": \"/api/v2/\", \"timeout\": 3000};",
    b"<link rel=\"stylesheet\" href=\"/css/main.css\">",
    b"Cache-Control: max-age=3600\r\nContent-Type: text/html\r\n\r\n",
]
_CAMPUS_SNIPPETS = _HTML_SNIPPETS + [
    b"SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.1\r\n",
    b"\x16\x03\x01\x02\x00\x01\x00\x01\xfc\x03\x03",  # TLS client hello-ish
    b"BitTorrent protocol", b"220 smtp.example.org ESMTP Postfix",
    b"RTSP/1.0 200 OK\r\nCSeq: 2\r\n", b"\x00\x00\x00\x1c\x0a\x0f\x08",
]


@dataclass
class Trace:
    """A sequence of packet payloads, optionally grouped into flows."""

    payloads: list = field(default_factory=list)
    #: parallel list: flow id of each payload (or None for flowless traces)
    flow_ids: list | None = None
    description: str = ""

    def __len__(self) -> int:
        return len(self.payloads)

    def __iter__(self):
        return iter(self.payloads)

    @property
    def total_bytes(self) -> int:
        """Sum of payload lengths."""
        return sum(len(p) for p in self.payloads)

    def by_flow(self) -> dict:
        """Payloads grouped per flow id, in arrival order."""
        if self.flow_ids is None:
            raise ValueError("trace has no flow information")
        flows: dict = {}
        for flow_id, payload in zip(self.flow_ids, self.payloads):
            flows.setdefault(flow_id, []).append(payload)
        return flows


def packetize(stream: bytes, mtu: int = 1460) -> list[bytes]:
    """Split a byte stream into MTU-sized packet payloads."""
    if mtu < 1:
        raise ValueError(f"mtu must be positive: {mtu}")
    return [stream[offset : offset + mtu] for offset in range(0, len(stream), mtu)]


class TrafficGenerator:
    """Seeded generator of web-like and campus-like traces."""

    def __init__(self, seed: int = 7, style: str = "http") -> None:
        if style not in ("http", "campus"):
            raise ValueError(f"unknown style {style!r}; use 'http' or 'campus'")
        self.style = style
        self._rng = random.Random(("traffic", style, seed).__repr__())
        self._snippets = _HTML_SNIPPETS if style == "http" else _CAMPUS_SNIPPETS

    # --- payload building blocks --------------------------------------------

    def benign_payload(self, size: int) -> bytes:
        """A payload of roughly *size* bytes of realistic filler."""
        rng = self._rng
        chunks: list[bytes] = []
        length = 0
        while length < size:
            if rng.random() < 0.8:
                chunk = rng.choice(self._snippets)
            else:
                chunk = bytes(
                    rng.randrange(32, 127) for _ in range(rng.randrange(8, 40))
                )
            chunks.append(chunk)
            length += len(chunk)
        return b"".join(chunks)[:size]

    def _inject(
        self, payload: bytes, patterns: list, match_profile_rng: random.Random
    ) -> bytes:
        """Embed one or more patterns at random offsets."""
        rng = match_profile_rng
        mutable = bytearray(payload)
        # Usually 1-2 matches; a small tail of match-heavy packets.
        draws = 1
        roll = rng.random()
        if roll > 0.98:
            draws = rng.randrange(6, 14)
        elif roll > 0.85:
            draws = rng.randrange(2, 5)
        for _ in range(draws):
            pattern = rng.choice(patterns)
            if rng.random() < 0.05 and len(set(pattern)) == 1:
                # Repeated-character run: multiple overlapping matches,
                # producing the range reports of Section 6.5.
                pattern = pattern * rng.randrange(2, 5)
            if len(pattern) >= len(mutable):
                mutable = bytearray(pattern)
                continue
            offset = rng.randrange(0, len(mutable) - len(pattern))
            mutable[offset : offset + len(pattern)] = pattern
        return bytes(mutable)

    # --- traces --------------------------------------------------------------

    def trace(
        self,
        num_packets: int,
        patterns: list | None = None,
        match_rate: float = 0.08,
        mean_payload: int = 900,
        num_flows: int | None = None,
    ) -> Trace:
        """A trace of *num_packets* payloads.

        ``match_rate`` is the probability a packet gets patterns injected
        (the paper's traces are >90 % matchless, hence the 0.08 default).
        Injection does not guarantee zero matches elsewhere — benign filler
        may coincidentally contain a pattern, as in real traffic.
        """
        if not 0.0 <= match_rate <= 1.0:
            raise ValueError(f"match rate out of range: {match_rate}")
        rng = self._rng
        payloads: list[bytes] = []
        flow_ids: list | None = None
        if num_flows is not None:
            if num_flows < 1:
                raise ValueError(f"num_flows must be >= 1: {num_flows}")
            flow_ids = []
        for _ in range(num_packets):
            size = max(64, min(1460, int(rng.gauss(mean_payload, 350))))
            payload = self.benign_payload(size)
            if patterns and rng.random() < match_rate:
                payload = self._inject(payload, patterns, rng)
            payloads.append(payload)
            if flow_ids is not None:
                flow_ids.append(rng.randrange(num_flows))
        return Trace(
            payloads=payloads,
            flow_ids=flow_ids,
            description=f"{self.style} trace ({num_packets} packets)",
        )

    def flow(
        self,
        num_packets: int,
        patterns: list | None = None,
        match_rate: float = 0.08,
        mtu: int = 1460,
        straddle_boundaries: bool = False,
    ) -> list[bytes]:
        """One flow as an ordered list of packet payloads.

        With ``straddle_boundaries`` the stream is built first and then
        packetized, so injected patterns may cross packet boundaries — the
        case stateful scanning exists for.
        """
        if not straddle_boundaries:
            return list(self.trace(num_packets, patterns, match_rate).payloads)
        rng = self._rng
        stream_parts: list[bytes] = []
        for _ in range(num_packets):
            part = self.benign_payload(mtu)
            if patterns and rng.random() < match_rate:
                part = self._inject(part, patterns, rng)
            stream_parts.append(part)
        return packetize(b"".join(stream_parts), mtu=mtu)
