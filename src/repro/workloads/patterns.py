"""Synthetic pattern sets reproducing the paper's inputs.

The paper uses the exact-match patterns (length >= 8) of Snort — up to 4,356
patterns — and ClamAV — 31,827 patterns.  The generators here reproduce:

* the published set sizes (:data:`SNORT_PATTERN_COUNT`,
  :data:`CLAMAV_PATTERN_COUNT`);
* the character of each corpus — Snort content strings are short, ASCII,
  protocol-flavored, with heavily shared prefixes (URI stems, command
  names); ClamAV signatures are longer, high-entropy binary strings;
* cross-set sharing: a configurable fraction of patterns is common to both
  halves of a split, which exercises the combined automaton's
  shared-accepting-state machinery.

All generation is seeded and deterministic.
"""

from __future__ import annotations

import random

from repro.core.patterns import Pattern, PatternSet

SNORT_PATTERN_COUNT = 4356
CLAMAV_PATTERN_COUNT = 31827
MIN_PATTERN_LENGTH = 8

# Protocol-ish vocabulary for Snort-like content strings.
_TOKENS = [
    b"GET /", b"POST /", b"HEAD /", b"HTTP/1.", b"Host: ", b"User-Agent:",
    b"Content-", b"cgi-bin/", b"admin", b"login", b"passwd", b"shell",
    b"cmd.exe", b"root", b"exec", b"select", b"union", b"script", b"eval(",
    b"iframe", b"src=", b"href=", b"download", b"update", b"config",
    b"wp-content", b"php?", b".asp", b".jsp", b"%00", b"%2e%2e", b"setup",
    b"overflow", b"0wned", b"backdoor", b"trojan", b"botnet", b"payload",
    b"xmas", b"probe", b"scan", b"flood", b"inject", b"bind", b"proxy",
]
_SUFFIX_ALPHABET = (
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./"
)


def _snort_like_pattern(rng: random.Random) -> bytes:
    """One Snort-flavored content string (>= 8 bytes).

    A random suffix of at least 4 bytes is always appended so that no
    pattern is a bare protocol token — bare tokens (``Content-``,
    ``HTTP/1.``) occur in perfectly benign traffic, and the paper's traces
    are >90 % matchless.
    """
    parts = [rng.choice(_TOKENS)]
    # Occasionally chain a second token (shared-prefix structure).
    if rng.random() < 0.35:
        parts.append(rng.choice(_TOKENS))
    pattern = b"".join(parts)
    target_length = max(MIN_PATTERN_LENGTH, len(pattern) + 4, int(rng.gauss(15, 5)))
    while len(pattern) < target_length:
        pattern += bytes([rng.choice(_SUFFIX_ALPHABET)])
    return pattern


def _clamav_like_pattern(rng: random.Random) -> bytes:
    """One ClamAV-flavored binary signature (longer, high entropy)."""
    length = max(12, int(rng.gauss(20, 6)))
    return bytes(rng.randrange(256) for _ in range(length))


def _generate_unique(count: int, make, rng: random.Random) -> list[bytes]:
    patterns: list[bytes] = []
    seen: set[bytes] = set()
    attempts = 0
    while len(patterns) < count:
        pattern = make(rng)
        attempts += 1
        if pattern in seen:
            if attempts > count * 50:
                raise RuntimeError(
                    "pattern generation stalled; vocabulary too small for "
                    f"{count} unique patterns"
                )
            continue
        seen.add(pattern)
        patterns.append(pattern)
    return patterns


def generate_snort_like(
    count: int = SNORT_PATTERN_COUNT, seed: int = 1
) -> list[bytes]:
    """A Snort-like exact-match pattern corpus."""
    if count < 1:
        raise ValueError(f"count must be positive: {count}")
    rng = random.Random(("snort", seed, count).__repr__())
    return _generate_unique(count, _snort_like_pattern, rng)


def generate_clamav_like(
    count: int = CLAMAV_PATTERN_COUNT, seed: int = 2
) -> list[bytes]:
    """A ClamAV-like virus-signature corpus."""
    if count < 1:
        raise ValueError(f"count must be positive: {count}")
    rng = random.Random(("clamav", seed, count).__repr__())
    return _generate_unique(count, _clamav_like_pattern, rng)


def random_split(
    patterns: list[bytes],
    parts: int = 2,
    seed: int = 3,
    shared_fraction: float = 0.0,
) -> list[list[bytes]]:
    """Randomly split a corpus into *parts* sets (the paper's Snort1/Snort2).

    ``shared_fraction`` of the patterns is replicated into *every* part —
    modeling middleboxes whose rule sets overlap, the case the controller's
    deduplication exists for.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1: {parts}")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError(f"shared fraction out of range: {shared_fraction}")
    rng = random.Random(("split", seed, parts).__repr__())
    shuffled = list(patterns)
    rng.shuffle(shuffled)
    shared_count = int(len(shuffled) * shared_fraction)
    shared, exclusive = shuffled[:shared_count], shuffled[shared_count:]
    split: list[list[bytes]] = [list(shared) for _ in range(parts)]
    for index, pattern in enumerate(exclusive):
        split[index % parts].append(pattern)
    return split


def to_pattern_list(literals: list[bytes]) -> list[Pattern]:
    """Wrap raw byte strings as :class:`Pattern` objects with sequential ids."""
    return [
        Pattern(pattern_id=index, data=data) for index, data in enumerate(literals)
    ]


def to_pattern_set(name: str, literals: list[bytes]) -> PatternSet:
    """Wrap raw byte strings as a named PatternSet."""
    return PatternSet.from_literals(name, literals)
