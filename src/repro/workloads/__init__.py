"""Synthetic workloads standing in for the paper's proprietary inputs.

* :mod:`repro.workloads.patterns` — Snort-like and ClamAV-like pattern-set
  generators reproducing the published set sizes and length profiles, plus
  the random Snort1/Snort2 split used by Table 2 and Figures 9-10.
* :mod:`repro.workloads.traffic` — HTTP-corpus and campus-like traces with
  a controlled match rate (the paper measures >90 % of packets matchless).
* :mod:`repro.workloads.attacks` — complexity-attack payloads that maximize
  per-byte scan work, for the MCA^2 experiments.
"""

from repro.workloads.patterns import (
    CLAMAV_PATTERN_COUNT,
    SNORT_PATTERN_COUNT,
    generate_clamav_like,
    generate_snort_like,
    random_split,
    to_pattern_list,
)
from repro.workloads.traffic import (
    Trace,
    TrafficGenerator,
    packetize,
)
from repro.workloads.attacks import (
    heavy_payload,
    match_flood_payload,
    near_miss_payload,
)

__all__ = [
    "SNORT_PATTERN_COUNT",
    "CLAMAV_PATTERN_COUNT",
    "generate_snort_like",
    "generate_clamav_like",
    "random_split",
    "to_pattern_list",
    "Trace",
    "TrafficGenerator",
    "packetize",
    "heavy_payload",
    "match_flood_payload",
    "near_miss_payload",
]
