"""Reproduction of "Deep Packet Inspection as a Service" (CoNEXT 2014).

Subpackages:

* :mod:`repro.core` — the paper's contribution: the combined virtual-DPI
  automaton, the per-packet scanner, the DPI controller and service
  instances, match reports, and MCA^2-style robustness.
* :mod:`repro.net` — the SDN substrate: a deterministic discrete-event
  simulator with OpenFlow-style switches, an SDN controller and a
  SIMPLE-style traffic steering application.
* :mod:`repro.middleboxes` — middleboxes that consume the DPI service
  (IDS, IPS, AV, L7 firewall, DLP, traffic shaper, load balancer,
  analytics) and the legacy embedded-DPI baseline.
* :mod:`repro.workloads` — synthetic Snort-/ClamAV-like pattern sets and
  HTTP/campus-like traffic generators.
* :mod:`repro.bench` — measurement harnesses used by the ``benchmarks/``
  suite to regenerate the paper's tables and figures.
"""

from repro.core import (
    AhoCorasick,
    CombinedAutomaton,
    DPIController,
    DPIServiceInstance,
    MatchReport,
    MiddleboxProfile,
    Pattern,
    PatternKind,
    PatternSet,
    RegexPreFilter,
    StressMonitor,
    VirtualScanner,
)

__version__ = "1.0.0"

__all__ = [
    "AhoCorasick",
    "CombinedAutomaton",
    "DPIController",
    "DPIServiceInstance",
    "MatchReport",
    "MiddleboxProfile",
    "Pattern",
    "PatternKind",
    "PatternSet",
    "RegexPreFilter",
    "StressMonitor",
    "VirtualScanner",
    "__version__",
]
