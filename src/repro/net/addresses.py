"""MAC and IPv4 address value types.

Both types are immutable, hashable, and order-comparable so they can be used
as dictionary keys in flow tables and ARP-like caches.  They parse from and
render to the conventional textual forms (``aa:bb:cc:dd:ee:ff`` and
``10.0.0.1``).
"""

from __future__ import annotations

import re
from functools import total_ordering

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")


@total_ordering
class MACAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    BROADCAST_VALUE = (1 << 48) - 1

    def __init__(self, value: "int | str | MACAddress"):
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC address out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError(f"malformed MAC address: {value!r}")
            self._value = int(value.replace(":", ""), 16)
        else:
            raise TypeError(f"cannot build MACAddress from {type(value).__name__}")

    @classmethod
    def broadcast(cls) -> "MACAddress":
        """The all-ones broadcast address ``ff:ff:ff:ff:ff:ff``."""
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def from_index(cls, index: int) -> "MACAddress":
        """A deterministic locally-administered unicast MAC for host *index*."""
        if not 0 <= index < (1 << 40):
            raise ValueError(f"host index out of range: {index}")
        # 0x02 in the first octet = locally administered, unicast.
        return cls((0x02 << 40) | index)

    @property
    def is_broadcast(self) -> bool:
        """True for the all-ones broadcast address."""
        return self._value == self.BROADCAST_VALUE

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        if isinstance(other, MACAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))


@total_ordering
class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | IPv4Address"):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 address out of range: {value:#x}")
            self._value = value
        elif isinstance(value, str):
            self._value = self._parse(value)
        else:
            raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"malformed IPv4 address: {text!r}")
            value = (value << 8) | octet
        return value

    @classmethod
    def from_index(cls, index: int, network: str = "10.0.0.0") -> "IPv4Address":
        """A deterministic host address ``network + index + 1``."""
        base = cls(network)
        return cls(int(base) + index + 1)

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """True if this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (int(network) & mask)

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 255}.{v >> 16 & 255}.{v >> 8 & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))
